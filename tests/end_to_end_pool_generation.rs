//! Cross-crate integration tests: the full Figure 1 pipeline from the DNS
//! wire format up to the generated pool, exercised through the simulated
//! DoH resolvers.

use secure_doh::core::{check_guarantee, PoolConfig, SecurePoolResolver};
use secure_doh::dns::{ClientExchanger, DnsClient, Do53Service, StubResolver};
use secure_doh::netsim::SimAddr;
use secure_doh::scenario::{
    ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER,
};
use secure_doh::wire::RrType;

#[test]
fn figure1_pipeline_produces_an_honest_pool() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 1001,
        resolvers: 3,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .unwrap()
        .generate(&mut exchanger, &scenario.pool_domain)
        .unwrap();

    assert_eq!(report.answered(), 3);
    assert_eq!(report.pool.len(), 24);
    assert_eq!(report.pool.unique_addresses().len(), 8);
    for info in &scenario.resolver_infos {
        assert_eq!(report.pool.slots_from(&info.name), 8);
    }
    let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
    assert!(check.holds);

    // Every DoH request travelled over the secure channel; the only plain
    // traffic is the resolvers' own iterative resolution.
    let metrics = scenario.net.metrics();
    assert_eq!(metrics.secure_requests, 3);
    assert!(metrics.plain_requests > 0);
    assert_eq!(metrics.forged_responses, 0);
}

#[test]
fn compromised_minority_never_reaches_half_the_pool() {
    for compromised in 0..=1usize {
        let scenario = Scenario::build(ScenarioConfig {
            seed: 2000 + compromised as u64,
            resolvers: 3,
            ntp_servers: 6,
            compromised: (0..compromised)
                .map(|i| (i, ResolverCompromise::ReplaceWithAttackerAddresses(6)))
                .collect(),
            ..ScenarioConfig::default()
        });
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let report = scenario
            .pool_generator(PoolConfig::algorithm1())
            .unwrap()
            .generate(&mut exchanger, &scenario.pool_domain)
            .unwrap();
        let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
        assert!(
            check.holds,
            "{compromised} compromised of 3 must keep the guarantee"
        );
        assert!(check.malicious_fraction <= compromised as f64 / 3.0 + 1e-9);
    }
}

#[test]
fn compromised_majority_defeats_the_guarantee_as_the_analysis_predicts() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 3000,
        resolvers: 3,
        ntp_servers: 6,
        compromised: vec![
            (0, ResolverCompromise::ReplaceWithAttackerAddresses(6)),
            (1, ResolverCompromise::ReplaceWithAttackerAddresses(6)),
        ],
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .unwrap()
        .generate(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
    assert!(!check.holds, "2 of 3 compromised resolvers exceed x = 1/2");
}

#[test]
fn plain_and_doh_paths_return_identical_answers_without_an_attacker() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 4000,
        resolvers: 3,
        ntp_servers: 5,
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);

    let mut plain = StubResolver::new(ISP_RESOLVER)
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    plain.sort();

    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .unwrap()
        .generate(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    let mut via_doh = report.pool.unique_addresses();
    via_doh.sort();

    assert_eq!(plain, via_doh, "backward compatibility: same answer set");
}

#[test]
fn majority_front_end_serves_unmodified_stub_resolvers() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 5000,
        resolvers: 3,
        ntp_servers: 6,
        compromised: vec![(2, ResolverCompromise::ReplaceWithAttackerAddresses(6))],
        ..ScenarioConfig::default()
    });
    let frontend = SimAddr::v4(10, 0, 0, 99, 53);
    let generator = scenario
        .pool_generator(PoolConfig::majority_resolver())
        .unwrap();
    scenario.net.register(
        frontend,
        Do53Service::new(SecurePoolResolver::new(generator)),
    );

    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let truth = scenario.ground_truth();

    // A completely standard DNS client gets only corroborated addresses.
    let response = DnsClient::new(frontend)
        .query(&mut exchanger, &scenario.pool_domain, RrType::A)
        .unwrap();
    let addresses = response.answer_addresses();
    assert_eq!(addresses.len(), 6);
    assert!(addresses.iter().all(|a| !truth.is_malicious(*a)));
}
