//! End-to-end secure time synchronization over the Figure 1 scenario: the
//! acceptance test for wiring DoH-consensus pools into the Chronos client.
//!
//! Under one identical adversary — a compromised DoH resolver plus an
//! off-path spoofer owning the plain Do53 leg — plain SNTP over a
//! single-resolver pool swallows the full attacker shift, while the
//! [`SecureTimeClient`] over the cached consensus front end keeps
//! `|offset_from_true| < 1 s`.

use std::time::Duration;

use secure_doh::core::{check_guarantee, CacheConfig, PoolConfig};
use secure_doh::netsim::{OffPathSpoofer, SpoofStrategy};
use secure_doh::ntp::{
    ChronosClient, ChronosConfig, LocalClock, NtpClient, NtpPoolSource, SingleResolverPool,
    TimeSyncError,
};
use secure_doh::scenario::{
    address_pool, NtpFleetConfig, ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR,
    ISP_RESOLVER,
};
use secure_doh::wire::{Message, MessageBuilder, Ttl};

const SHIFT: f64 = 1000.0;

/// Builds the headline adversary: resolver 0 compromised, spoofer winning
/// every race on the Do53 leg to the ISP resolver.
fn attacked_scenario(seed: u64) -> Scenario {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 16,
        attacker_time_shift: SHIFT,
        compromised: vec![(0, ResolverCompromise::ReplaceWithAttackerAddresses(16))],
        ..ScenarioConfig::default()
    });
    let forged: Vec<std::net::IpAddr> = scenario.attacker_ntp.iter().take(16).copied().collect();
    let spoofer = OffPathSpoofer::new(SpoofStrategy::FixedProbability(1.0), {
        move |query_bytes: &[u8], _rng: &mut secure_doh::netsim::SimRng| {
            let query = Message::decode(query_bytes).ok()?;
            let question = query.question()?;
            if !question.rtype.is_address() {
                return None;
            }
            let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
            for addr in &forged {
                builder = builder.answer_address(300, *addr);
            }
            builder.build().encode().ok()
        }
    })
    .with_targets(vec![ISP_RESOLVER]);
    scenario.net.set_adversary(spoofer);
    scenario
}

#[test]
fn same_attack_captures_sntp_but_not_the_secure_time_client() {
    // Baseline: plain SNTP over the spoofed single-resolver pool.
    let scenario = attacked_scenario(900);
    let mut exchanger = scenario.client_exchanger();
    let spoofed = SingleResolverPool::new(ISP_RESOLVER)
        .fetch_pool(&mut exchanger, &scenario.pool_domain)
        .expect("spoofed answer still parses");
    let check = check_guarantee(
        &address_pool(&spoofed.addresses, "isp"),
        &scenario.ground_truth(),
        0.5,
    );
    assert!(!check.holds, "the spoofed pool has no honest majority");
    let mut captured_clock = LocalClock::new(scenario.net.clock(), 0.0);
    NtpClient::new(CLIENT_ADDR.with_port(123))
        .synchronize_simple(&scenario.net, &mut captured_clock, &spoofed.addresses)
        .expect("the attacker's servers answer eagerly");
    assert!(
        captured_clock.offset_from_true() >= SHIFT * 0.9,
        "plain SNTP must be captured, got {}",
        captured_clock.offset_from_true()
    );

    // The proposal: SecureTimeClient over the cached consensus front end,
    // same scenario, same adversary.
    let scenario = attacked_scenario(901);
    let mut client = scenario
        .secure_time_client(
            PoolConfig::algorithm1(),
            CacheConfig::default(),
            ChronosClient::new(
                ChronosConfig::default(),
                NtpClient::new(CLIENT_ADDR.with_port(123)),
                901,
            )
            .unwrap(),
        )
        .unwrap();
    let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
    let mut exchanger = scenario.client_exchanger();
    let outcome = client
        .sync(&scenario.net, &mut exchanger, &mut clock)
        .expect("secure sync succeeds under the attack");
    let check = check_guarantee(
        &address_pool(client.pool(), "consensus"),
        &scenario.ground_truth(),
        0.5,
    );
    assert!(check.holds, "the consensus pool keeps its honest majority");
    assert_eq!(outcome.pool_size, 48);
    assert!(
        clock.offset_from_true().abs() < 1.0,
        "the secure pipeline keeps the clock: {}",
        clock.offset_from_true()
    );
}

#[test]
fn periodic_syncs_repull_per_ttl_window_and_tolerate_planted_servers() {
    // No DNS attack here; instead the published fleet itself contains a
    // bad minority plus unresponsive servers — the layer Chronos (and the
    // fixed trim guard) must absorb.
    let mut scenario = Scenario::build(ScenarioConfig {
        seed: 902,
        resolvers: 3,
        ntp_servers: 18,
        attacker_time_shift: SHIFT,
        ..ScenarioConfig::default()
    });
    scenario.install_ntp_fleet(NtpFleetConfig {
        malicious: 4,
        silent: 2,
        time_shift: Some(SHIFT),
    });
    let mut client = scenario
        .secure_time_client(
            PoolConfig::algorithm1(),
            CacheConfig::default().with_ttl(Ttl::from_secs(60)),
            ChronosClient::new(
                ChronosConfig::default(),
                NtpClient::new(CLIENT_ADDR.with_port(123)).timeout(Duration::from_millis(300)),
                902,
            )
            .unwrap(),
        )
        .unwrap();
    let mut clock = LocalClock::new(scenario.net.clock(), -20.0);
    let mut exchanger = scenario.client_exchanger();

    for round in 0..3 {
        let outcome = client
            .sync(&scenario.net, &mut exchanger, &mut clock)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(
            clock.offset_from_true().abs() < 1.0,
            "round {round}: clock off by {}",
            clock.offset_from_true()
        );
        let check = check_guarantee(
            &address_pool(client.pool(), "consensus"),
            &scenario.ground_truth(),
            0.5,
        );
        assert!(check.holds, "round {round}: {check:?}");
        if round == 0 {
            assert!(outcome.pool_refreshed);
        }
        // Step past the TTL window so the next sync re-pulls the pool.
        scenario.net.clock().advance(Duration::from_secs(90));
    }
    assert!(
        client.pool_refreshes() >= 2,
        "TTL expiry re-pulled the pool: {}",
        client.pool_refreshes()
    );
}

#[test]
fn empty_answer_compromise_is_a_time_sync_dos_not_a_capture() {
    // Every resolver answers the pool domain with an empty record set:
    // truncation reduces the pool to nothing, the sync fails, and the
    // clock is left untouched — footnote 2's DoS, surfaced end to end.
    let scenario = Scenario::build(ScenarioConfig {
        seed: 903,
        resolvers: 3,
        ntp_servers: 8,
        compromised: vec![(1, ResolverCompromise::EmptyAnswer)],
        ..ScenarioConfig::default()
    });
    let mut client = scenario
        .secure_time_client(
            PoolConfig::algorithm1(),
            CacheConfig::default(),
            ChronosClient::new(
                ChronosConfig::default(),
                NtpClient::new(CLIENT_ADDR.with_port(123)),
                903,
            )
            .unwrap(),
        )
        .unwrap();
    let mut clock = LocalClock::new(scenario.net.clock(), 3.0);
    let mut exchanger = scenario.client_exchanger();
    let err = client
        .sync(&scenario.net, &mut exchanger, &mut clock)
        .unwrap_err();
    assert!(
        matches!(err, TimeSyncError::EmptyPool | TimeSyncError::PoolFetch(_)),
        "unexpected error: {err:?}"
    );
    assert_eq!(clock.offset_from_true(), 3.0, "clock untouched by the DoS");
}
