//! Cross-crate integration tests for the attack experiments: off-path
//! spoofing, on-path rewriting, answer inflation and the Chronos end game.

use secure_doh::core::{attacker_controls_fraction, AddressPool, PoolConfig};
use secure_doh::dns::{ClientExchanger, StubResolver};
use secure_doh::netsim::{OnPathMitm, SimAddr};
use secure_doh::ntp::{ChronosClient, ChronosConfig, LocalClock, NtpClient};
use secure_doh::scenario::{
    ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER,
};
use secure_doh::wire::{Message, MessageBuilder};

fn forge_closure(
    attacker: Vec<std::net::IpAddr>,
) -> impl FnMut(&[u8], &mut secure_doh::netsim::SimRng) -> Option<Vec<u8>> {
    move |query_bytes, _rng| {
        let query = Message::decode(query_bytes).ok()?;
        let question = query.question()?;
        if !question.rtype.is_address() {
            return None;
        }
        let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
        for addr in &attacker {
            builder = builder.answer_address(300, *addr);
        }
        builder.build().encode().ok()
    }
}

#[test]
fn off_path_spoofer_poisons_plain_dns_but_not_doh() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 600,
        resolvers: 3,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    let truth = scenario.ground_truth();
    let attacker: Vec<std::net::IpAddr> = scenario.attacker_ntp.iter().take(8).copied().collect();
    scenario.net.set_adversary(
        secure_doh::netsim::OffPathSpoofer::new(
            secure_doh::netsim::SpoofStrategy::FixedProbability(1.0),
            forge_closure(attacker),
        )
        .with_targets(vec![ISP_RESOLVER]),
    );
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);

    // Plain path: fully captured.
    let plain = StubResolver::new(ISP_RESOLVER)
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    let mut plain_pool = AddressPool::new();
    for a in plain {
        plain_pool.push(a, "isp");
    }
    assert!(attacker_controls_fraction(&plain_pool, &truth, 0.5));

    // DoH path: untouched.
    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .unwrap()
        .generate(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    assert!(!attacker_controls_fraction(&report.pool, &truth, 0.5));
    assert!(scenario.net.metrics().forged_responses >= 1);
}

#[test]
fn on_path_mitm_rewrites_plain_dns_but_cannot_touch_doh() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 601,
        resolvers: 3,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    let truth = scenario.ground_truth();
    let attacker: Vec<std::net::IpAddr> = scenario.attacker_ntp.iter().take(8).copied().collect();
    let mut forge = forge_closure(attacker);
    scenario.net.set_adversary(
        OnPathMitm::controlling([ISP_RESOLVER.ip, CLIENT_ADDR.ip])
            .with_response_rewriter(move |request, _response, rng| forge(request, rng)),
    );
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);

    let plain = StubResolver::new(ISP_RESOLVER)
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    let mut plain_pool = AddressPool::new();
    for a in plain {
        plain_pool.push(a, "isp");
    }
    assert!(attacker_controls_fraction(&plain_pool, &truth, 0.5));

    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .unwrap()
        .generate(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    assert!(
        !attacker_controls_fraction(&report.pool, &truth, 0.5),
        "the MitM controls the client's access network but cannot rewrite \
         authenticated DoH traffic"
    );
    assert!(scenario.net.metrics().replaced_responses >= 1);
}

#[test]
fn answer_inflation_cannot_take_over_a_truncated_pool() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 602,
        resolvers: 5,
        ntp_servers: 6,
        compromised: vec![
            (0, ResolverCompromise::InflateWithAttackerAddresses(64)),
            (3, ResolverCompromise::InflateWithAttackerAddresses(64)),
        ],
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .unwrap()
        .generate(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    assert_eq!(report.pool.len(), 30, "5 resolvers x 6 truncated slots");
    assert!(!attacker_controls_fraction(
        &report.pool,
        &scenario.ground_truth(),
        0.5
    ));
}

#[test]
fn chronos_over_the_secure_pool_survives_a_poisoned_access_network() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 603,
        resolvers: 3,
        ntp_servers: 16,
        attacker_time_shift: 500.0,
        ..ScenarioConfig::default()
    });
    let attacker: Vec<std::net::IpAddr> = scenario.attacker_ntp.iter().take(16).copied().collect();
    scenario.net.set_adversary(
        secure_doh::netsim::OffPathSpoofer::new(
            secure_doh::netsim::SpoofStrategy::FixedProbability(1.0),
            forge_closure(attacker),
        )
        .with_targets(vec![ISP_RESOLVER]),
    );
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .unwrap()
        .generate(&mut exchanger, &scenario.pool_domain)
        .unwrap();

    let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
    let mut chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(CLIENT_ADDR.with_port(123)),
        603,
    )
    .unwrap();
    chronos
        .update(&scenario.net, &mut clock, &report.pool.addresses())
        .unwrap();
    assert!(
        clock.offset_from_true().abs() < 1.0,
        "clock stays within a second of true time, got {}",
        clock.offset_from_true()
    );
}

#[test]
fn secure_channel_rejects_impersonation_of_a_resolver() {
    use secure_doh::doh::{DohClient, ResolverDirectory};

    let scenario = Scenario::build(ScenarioConfig {
        seed: 604,
        resolvers: 1,
        ntp_servers: 4,
        ..ScenarioConfig::default()
    });
    // A different directory seed yields different pinned keys: this models a
    // client that pins the wrong key / an attacker without the private key.
    let wrong_keys = ResolverDirectory::well_known(9999);
    let impostor = wrong_keys.resolvers()[0].clone();
    let client = DohClient::new(impostor).timeout(std::time::Duration::from_millis(500));
    let mut exchanger = ClientExchanger::new(&scenario.net, SimAddr::v4(192, 0, 2, 77, 4000));
    let err = client
        .query(
            &mut exchanger,
            &scenario.pool_domain,
            secure_doh::wire::RrType::A,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        secure_doh::doh::DohError::Network(_) | secure_doh::doh::DohError::ChannelAuthentication(_)
    ));
}
