//! Acceptance tests for the sans-IO session redesign: pool generation
//! queries the N resolvers concurrently, so a lookup costs one resolver's
//! round trips — not N times that — while producing exactly the pool the
//! sequential driver produces.

use std::time::Duration;

use secure_doh::core::{drive, drive_sequential, Action, PoolConfig};
use secure_doh::dns::Exchanger;
use secure_doh::scenario::{Scenario, ScenarioConfig};

fn build(seed: u64, resolvers: usize) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        resolvers,
        ntp_servers: 8,
        link_latency: Duration::from_millis(10),
        ..ScenarioConfig::default()
    })
}

#[test]
fn three_resolver_lookup_costs_one_lookup_not_three() {
    // Reference cost: one resolver, one lookup.
    let (single_report, single_elapsed) = build(9001, 1)
        .generate_pool(PoolConfig::algorithm1())
        .unwrap();
    assert_eq!(single_report.answered(), 1);

    // Concurrent fan-out over three resolvers: the lookup completes in the
    // time of the *slowest* resolver. With uniform 10 ms links and +-2 ms
    // jitter that is within a small factor of the single-resolver lookup.
    let (concurrent_report, concurrent_elapsed) = build(9001, 3)
        .generate_pool(PoolConfig::algorithm1())
        .unwrap();
    assert_eq!(concurrent_report.answered(), 3);

    // Sequential baseline over the same three resolvers pays the sum.
    let (sequential_report, sequential_elapsed) = build(9001, 3)
        .generate_pool_sequential(PoolConfig::algorithm1())
        .unwrap();

    assert!(
        concurrent_elapsed < single_elapsed * 2,
        "3-resolver concurrent lookup ({concurrent_elapsed:?}) must cost O(one lookup) \
         ({single_elapsed:?}), not 3x"
    );
    assert!(
        sequential_elapsed > concurrent_elapsed * 2,
        "sequential ({sequential_elapsed:?}) must pay roughly 3x the concurrent \
         latency ({concurrent_elapsed:?})"
    );

    // Concurrency changes latency, never the pool.
    assert_eq!(concurrent_report.pool, sequential_report.pool);
    assert_eq!(concurrent_report.sources, sequential_report.sources);
}

#[test]
fn session_describes_the_full_fanout_before_any_io() {
    let scenario = build(9100, 3);
    let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();
    let mut session = generator.session(&scenario.pool_domain, 1).unwrap();

    // Sans-IO: the session hands out all three transmits up front; nothing
    // on the network has happened yet.
    let mut transmits = Vec::new();
    loop {
        match session.poll(scenario.net.now()) {
            Action::Transmit(t) => transmits.push(t),
            Action::WaitUntil(_) => break,
            other => panic!("unexpected action before responses: {other:?}"),
        }
    }
    assert_eq!(transmits.len(), 3);
    assert_eq!(session.in_flight(), 3);
    assert_eq!(scenario.net.metrics().requests, 0, "no I/O performed yet");

    // A driver performs the exchanges and feeds the outcomes back.
    let exchanger = scenario.client_exchanger();
    for t in transmits {
        let outcome = scenario.net.transact(
            secure_doh::scenario::CLIENT_ADDR,
            t.request.dst,
            t.request.channel,
            &t.request.payload,
            t.request.timeout,
        );
        session.handle_response(t.transaction, outcome).unwrap();
    }
    while let Action::Deliver(_) = session.poll(exchanger.now()) {}
    assert!(session.is_done());
    let report = session.finish().unwrap();
    assert_eq!(report.pool.len(), 24);
}

#[test]
fn ready_made_drivers_agree_on_the_report() {
    let scenario = build(9200, 3);
    let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();

    let mut exchanger = scenario.client_exchanger();
    let mut concurrent = generator.session(&scenario.pool_domain, 5).unwrap();
    drive(&mut concurrent, &mut exchanger).unwrap();
    let concurrent_report = concurrent.finish().unwrap();

    let sequential_scenario = build(9200, 3);
    let mut exchanger = sequential_scenario.client_exchanger();
    let mut sequential = generator
        .session(&sequential_scenario.pool_domain, 5)
        .unwrap();
    drive_sequential(&mut sequential, &mut exchanger).unwrap();
    let sequential_report = sequential.finish().unwrap();

    assert_eq!(concurrent_report, sequential_report);
}
