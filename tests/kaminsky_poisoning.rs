//! End-to-end off-path poisoning of the Do53 leg: the Kaminsky-style
//! birthday attacker versus the defense gradient of the recursive
//! resolver, through the full Figure 1 scenario.
//!
//! These are the integration-level regressions behind experiment E14: the
//! weak resolver is captured by a single well-timed forgery, identifier
//! randomization pushes the win rate to the analytical floor, and
//! bailiwick enforcement structurally blocks the referral hijack even
//! when the identifier race is lost.

use secure_doh::core::{check_guarantee, PoolConfig};
use secure_doh::dns::{HardeningConfig, ResolveError, StubResolver};
use secure_doh::scenario::{KaminskyPayload, Scenario, ScenarioConfig, ISP_RESOLVER};
use secure_doh::wire::Rcode;

fn scenario_with(isp_hardening: HardeningConfig, seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        isp_hardening,
        ..ScenarioConfig::default()
    })
}

#[test]
fn weak_resolver_is_hijacked_by_a_single_forged_referral() {
    let scenario = scenario_with(HardeningConfig::predictable_ids(), 33);
    scenario.install_kaminsky_authority();
    let adversary = scenario.kaminsky_adversary(1, KaminskyPayload::Referral);
    let stats = adversary.stats_handle();
    scenario.net.set_adversary(adversary);

    let stub = StubResolver::new(ISP_RESOLVER);
    let mut exchanger = scenario.client_exchanger();
    let addresses = stub
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .expect("the poisoned resolution still answers");
    let truth = scenario.ground_truth();
    assert!(!addresses.is_empty());
    assert!(
        addresses.iter().all(|a| truth.is_malicious(*a)),
        "blind glue hands the whole pool to the attacker: {addresses:?}"
    );

    let raced_before = {
        let snapshot = stats.borrow();
        assert!(snapshot.wins >= 1, "one predicted-identifier race suffices");
        assert_eq!(
            snapshot.min_entropy_bits(),
            Some(0),
            "sequential txid + fixed port leave nothing to guess"
        );
        snapshot.raced
    };

    // The poison is cached: a second lookup is served without the
    // attacker having to race again.
    let again = stub
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    assert_eq!(again, addresses);
    assert!(
        stats.borrow().raced <= raced_before + 1,
        "cached poison needs no new upstream race"
    );
}

#[test]
fn bailiwick_enforcement_blocks_the_referral_even_with_weak_identifiers() {
    // Identifiers stay predictable — the attacker wins every race — but
    // bailiwick enforcement discards the off-zone glue, so the hijack
    // degrades to (at worst) a failed lookup, never a poisoned cache.
    let scenario = scenario_with(
        HardeningConfig::predictable_ids().enforce_bailiwick(true),
        34,
    );
    scenario.install_kaminsky_authority();
    let adversary = scenario.kaminsky_adversary(1, KaminskyPayload::Referral);
    let stats = adversary.stats_handle();
    scenario.net.set_adversary(adversary);

    let stub = StubResolver::new(ISP_RESOLVER);
    let mut exchanger = scenario.client_exchanger();
    let truth = scenario.ground_truth();
    match stub.lookup_ipv4(&mut exchanger, &scenario.pool_domain) {
        Ok(addresses) => assert!(
            addresses.iter().all(|a| !truth.is_malicious(*a)),
            "no attacker address may be served: {addresses:?}"
        ),
        Err(ResolveError::ErrorResponse(rcode)) => {
            assert_eq!(
                rcode,
                Rcode::ServFail,
                "a lost lookup is a DoS, not a capture"
            )
        }
        Err(other) => panic!("unexpected error {other:?}"),
    }
    assert!(
        stats.borrow().wins >= 1,
        "the race was won — the defense is structural, not probabilistic"
    );
}

#[test]
fn hardened_resolver_survives_a_large_forgery_budget() {
    let scenario = scenario_with(HardeningConfig::full(), 35);
    scenario.install_kaminsky_authority();
    // 65536 forged packets per query: certain capture of a txid-only
    // victim, ~2^-28 per query against 44 bits of identifier entropy.
    let adversary = scenario.kaminsky_adversary(65_536, KaminskyPayload::DirectAnswer);
    let stats = adversary.stats_handle();
    scenario.net.set_adversary(adversary);

    let stub = StubResolver::new(ISP_RESOLVER);
    let mut exchanger = scenario.client_exchanger();
    let addresses = stub
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .expect("the hardened resolver answers normally");
    let truth = scenario.ground_truth();
    assert_eq!(addresses.len(), scenario.config.ntp_servers);
    assert!(addresses.iter().all(|a| !truth.is_malicious(*a)));

    {
        let stats = stats.borrow();
        assert!(stats.raced >= 3, "root, org and ntpns legs all raced");
        assert_eq!(stats.wins, 0);
        assert_eq!(
            stats.min_entropy_bits(),
            Some(44),
            "16 txid + 16 port + 12 case bits on every leg"
        );
    }

    // The DoH-consensus path rides over the same attacked network and
    // keeps its guarantee (its resolvers are hardened and the attacker
    // cannot reach into the authenticated DoH legs at all).
    let (report, _) = scenario.generate_pool(PoolConfig::algorithm1()).unwrap();
    let check = check_guarantee(&report.pool, &truth, 0.5);
    assert!(check.holds);
    assert!((check.benign_fraction - 1.0).abs() < 1e-12);
}

#[test]
fn direct_answer_forgery_needs_the_identifier_race() {
    // Random txid only (the first historical defense): 65536 forged
    // packets make the per-query win probability 1 - 1/e; poisoning is
    // likely but no longer certain. With one packet it is ~2^-16.
    let scenario = scenario_with(HardeningConfig::predictable_ids().randomize_txid(true), 36);
    let adversary = scenario.kaminsky_adversary(1, KaminskyPayload::DirectAnswer);
    let stats = adversary.stats_handle();
    scenario.net.set_adversary(adversary);

    let stub = StubResolver::new(ISP_RESOLVER);
    let mut exchanger = scenario.client_exchanger();
    let addresses = stub
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .unwrap();
    let truth = scenario.ground_truth();
    assert!(
        addresses.iter().all(|a| !truth.is_malicious(*a)),
        "a single guess against 16 bits practically never lands"
    );
    let stats = stats.borrow();
    assert_eq!(stats.wins, 0);
    // Port prediction locks on after the first observation; txid stays 16
    // bits — the attacker's own accounting shows the residual entropy.
    assert_eq!(stats.min_entropy_bits(), Some(16));
}
