//! Acceptance tests for the pool-serving subsystem: under a simulated
//! population of clients querying a handful of domains, the caching
//! resolver performs at most one generation per distinct `(domain, TTL
//! window)` — while the uncached baseline performs one per query — and
//! every served answer still satisfies the benign-fraction guarantee.

use std::time::Duration;

use secure_doh::core::{check_guarantee, AddressPool, CacheConfig, PoolConfig};
use secure_doh::netsim::{
    ChannelKind, ClientPopulation, ConcurrentRequest, LoadDriver, LoadStats, NetResult,
};
use secure_doh::scenario::{ResolverCompromise, Scenario, ScenarioConfig, FRONTEND_ADDR};
use secure_doh::wire::{Message, Rcode, RrType, Ttl};

const CLIENTS: usize = 120;
const DOMAINS: usize = 4;
const POOL_TTL: Ttl = Ttl::from_secs(30);
const STALE_WINDOW: Duration = Duration::from_secs(30);
const QUERY_TIMEOUT: Duration = Duration::from_secs(5);

fn build_scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 8,
        pool_domains: DOMAINS,
        // One compromised resolver out of three: truncation keeps the
        // malicious fraction at 1/3, so x = 1/2 must hold for every served
        // answer even under compromise.
        compromised: vec![(0, ResolverCompromise::ReplaceWithAttackerAddresses(8))],
        ..ScenarioConfig::default()
    })
}

fn cache_config() -> CacheConfig {
    CacheConfig::default()
        .with_ttl(POOL_TTL)
        .with_stale_window(STALE_WINDOW)
}

/// Runs `rounds` concurrent rounds of the population (client `i` queries
/// pool domain `i % DOMAINS`), checking the guarantee of every response,
/// and returns the load stats.
fn run_load(
    scenario: &Scenario,
    rounds: usize,
    think_time: Duration,
    mut between_rounds: impl FnMut(usize),
) -> LoadStats {
    let truth = scenario.ground_truth();
    let domains = scenario.pool_domains.clone();
    let mut next_id: u16 = 1;
    let mut make_request = |_round: usize, client: usize, _addr| {
        let domain = domains[client % DOMAINS].clone();
        let id = next_id;
        next_id = next_id.wrapping_add(1);
        let query = Message::query(id, domain, RrType::A);
        Some(ConcurrentRequest::new(
            FRONTEND_ADDR,
            ChannelKind::Plain,
            query.encode().expect("encodable query"),
            QUERY_TIMEOUT,
        ))
    };
    let mut on_response = |_round: usize, client: usize, result: &NetResult<Vec<u8>>| {
        let bytes = result.as_ref().expect("every query is answered");
        let response = Message::decode(bytes).expect("well-formed response");
        assert_eq!(response.header.rcode, Rcode::NoError, "client {client}");
        let addresses = response.answer_addresses();
        assert!(!addresses.is_empty(), "client {client} got an empty answer");
        let mut pool = AddressPool::new();
        for addr in addresses {
            pool.push(addr, "served");
        }
        let check = check_guarantee(&pool, &truth, 0.5);
        assert!(
            check.holds,
            "served answer for client {client} violates the benign-fraction \
             guarantee: {check:?}"
        );
    };
    LoadDriver::new(&scenario.net, ClientPopulation::spread(CLIENTS))
        .think_time(think_time)
        .run_with_hook(rounds, &mut make_request, &mut on_response, |round| {
            between_rounds(round)
        })
}

#[test]
fn caching_resolver_amortises_generation_across_the_population() {
    let scenario = build_scenario(1201);
    let resolver = scenario
        .install_caching_frontend(PoolConfig::algorithm1(), cache_config())
        .unwrap();

    // Phase A: three rounds inside one TTL window. Only the first query per
    // domain generates; everything else is served from the cache.
    let stats = run_load(&scenario, 3, Duration::from_secs(5), |_| {});
    assert_eq!(stats.requests as usize, CLIENTS * 3);
    assert_eq!(stats.failures, 0);
    {
        let metrics = resolver.lock().metrics();
        assert_eq!(metrics.queries as usize, CLIENTS * 3);
        assert_eq!(
            metrics.generations as usize, DOMAINS,
            "one generation per distinct domain in the first TTL window"
        );
        assert_eq!(metrics.misses as usize, DOMAINS);
        assert_eq!(metrics.hits as usize, CLIENTS * 3 - DOMAINS);
        assert_eq!(metrics.stale_serves, 0);
    }

    // Phase B: jump past the TTL into the stale window. A full round is
    // served stale — immediately, with zero generations on the query path —
    // and the between-rounds pump regenerates all domains in the
    // background.
    scenario.net.clock().advance(Duration::from_secs(25));
    let mut refreshed = 0;
    let stats = run_load(&scenario, 1, Duration::ZERO, |_| {
        let pending = resolver.lock().pending_refreshes();
        assert_eq!(
            pending, DOMAINS,
            "stale hits deduplicate to one refresh per domain"
        );
        let mut exchanger = scenario.client_exchanger();
        refreshed += resolver.lock().run_due_refreshes(&mut exchanger);
    });
    assert_eq!(stats.failures, 0);
    assert_eq!(refreshed, DOMAINS);
    {
        let metrics = resolver.lock().metrics();
        assert_eq!(metrics.stale_serves as usize, CLIENTS);
        assert_eq!(metrics.refreshes as usize, DOMAINS);
        assert_eq!(
            metrics.generations as usize,
            DOMAINS * 2,
            "two TTL windows, at most one generation per (domain, window)"
        );
    }

    // Phase C: the refreshed entries serve the next round fresh.
    let stats = run_load(&scenario, 1, Duration::ZERO, |_| {});
    assert_eq!(stats.failures, 0);
    let metrics = resolver.lock().metrics();
    assert_eq!(
        metrics.generations as usize,
        DOMAINS * 2,
        "no further fan-outs"
    );
    assert_eq!(
        metrics.hits as usize,
        CLIENTS * 3 - DOMAINS + CLIENTS,
        "phase C is all fresh hits"
    );
}

#[test]
fn uncached_baseline_pays_one_generation_per_query() {
    let scenario = build_scenario(1201);
    let resolver = scenario
        .install_uncached_frontend(PoolConfig::algorithm1())
        .unwrap();
    let stats = run_load(&scenario, 1, Duration::ZERO, |_| {});
    assert_eq!(stats.failures, 0);
    let metrics = resolver.lock().metrics();
    assert_eq!(metrics.queries as usize, CLIENTS);
    assert_eq!(
        metrics.served as usize, CLIENTS,
        "every query ran its own full generation"
    );
}

#[test]
fn cached_serving_is_cheaper_on_the_wire_and_faster_for_clients() {
    // Same population, same domains, same seed: compare the DoH traffic and
    // client latency of one round against the uncached baseline.
    let cached_scenario = build_scenario(1202);
    let cached = cached_scenario
        .install_caching_frontend(PoolConfig::algorithm1(), cache_config())
        .unwrap();
    // Warm the cache with one round, then measure a steady-state round.
    run_load(&cached_scenario, 1, Duration::ZERO, |_| {});
    cached_scenario.net.reset_metrics();
    let warm_stats = run_load(&cached_scenario, 1, Duration::ZERO, |_| {});
    let cached_doh_requests = cached_scenario.net.metrics().secure_requests;

    let uncached_scenario = build_scenario(1202);
    let uncached = uncached_scenario
        .install_uncached_frontend(PoolConfig::algorithm1())
        .unwrap();
    // Give the baseline the same warm-up treatment (the DoH resolvers'
    // recursive caches fill up), then measure.
    run_load(&uncached_scenario, 1, Duration::ZERO, |_| {});
    uncached_scenario.net.reset_metrics();
    let uncached_stats = run_load(&uncached_scenario, 1, Duration::ZERO, |_| {});
    let uncached_doh_requests = uncached_scenario.net.metrics().secure_requests;

    // A steady-state cached round performs no DoH fan-out at all; the
    // uncached baseline fans out for every one of the 120 queries.
    assert_eq!(cached_doh_requests, 0);
    assert!(
        uncached_doh_requests >= (CLIENTS * 3) as u64,
        "baseline fan-out: {uncached_doh_requests} DoH requests"
    );

    // And clients feel it: a cache hit costs one front-end round trip,
    // the uncached path adds the whole distributed lookup.
    assert!(
        warm_stats.mean_latency() * 2 < uncached_stats.mean_latency(),
        "cached {:?} vs uncached {:?}",
        warm_stats.mean_latency(),
        uncached_stats.mean_latency()
    );
    // Both serve every client.
    assert_eq!(warm_stats.responses as usize, CLIENTS);
    assert_eq!(uncached_stats.responses as usize, CLIENTS);
    drop(cached);
    drop(uncached);
}
