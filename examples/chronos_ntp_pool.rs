//! Chronos in tandem with secure pool generation (Sections I, IV and V).
//!
//! Compares the clock shift an attacker achieves in three configurations:
//!
//! 1. plain DNS pool generation + plain SNTP (fully hijacked),
//! 2. plain DNS pool generation + Chronos (hijacked via the poisoned pool),
//! 3. distributed DoH pool generation + Chronos (the paper's proposal).
//!
//! Run with: `cargo run --example chronos_ntp_pool`

use std::net::IpAddr;

use secure_doh::core::PoolConfig;
use secure_doh::dns::{ClientExchanger, StubResolver};
use secure_doh::netsim::{OffPathSpoofer, SpoofStrategy};
use secure_doh::ntp::{ChronosClient, ChronosConfig, LocalClock, NtpClient};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER};
use secure_doh::wire::{Message, MessageBuilder};

const ATTACKER_SHIFT: f64 = 1000.0;

fn build_attacked_scenario(seed: u64) -> Scenario {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 16,
        attacker_time_shift: ATTACKER_SHIFT,
        ..ScenarioConfig::default()
    });
    // The off-path attacker sits near the victim's access network and
    // poisons the plain DNS answers from the client's ISP resolver,
    // pointing the client at its own NTP servers. DoH channels to the
    // public resolvers are out of its reach.
    let forged: Vec<IpAddr> = scenario.attacker_ntp.iter().take(16).copied().collect();
    let spoofer = OffPathSpoofer::new(
        SpoofStrategy::FixedProbability(1.0),
        move |query_bytes, _rng| {
            let query = Message::decode(query_bytes).ok()?;
            let question = query.question()?;
            if !question.rtype.is_address() {
                return None;
            }
            let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
            for addr in &forged {
                builder = builder.answer_address(300, *addr);
            }
            builder.build().encode().ok()
        },
    )
    .with_targets(vec![ISP_RESOLVER]);
    scenario.net.set_adversary(spoofer);
    scenario
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Maximum clock shift achieved by the attacker ({ATTACKER_SHIFT} s time-shift servers) ==\n");

    // Configuration 1: plain DNS + plain SNTP.
    {
        let scenario = build_attacked_scenario(100);
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let pool =
            StubResolver::new(ISP_RESOLVER).lookup_ipv4(&mut exchanger, &scenario.pool_domain)?;
        let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
        let ntp = NtpClient::new(CLIENT_ADDR.with_port(123));
        ntp.synchronize_simple(&scenario.net, &mut clock, &pool)?;
        println!(
            "plain DNS + plain NTP      : clock shifted by {:+10.3} s",
            clock.offset_from_true()
        );
    }

    // Configuration 2: plain DNS + Chronos.
    {
        let scenario = build_attacked_scenario(200);
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let pool =
            StubResolver::new(ISP_RESOLVER).lookup_ipv4(&mut exchanger, &scenario.pool_domain)?;
        let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
        let mut chronos = ChronosClient::new(
            ChronosConfig::default(),
            NtpClient::new(CLIENT_ADDR.with_port(123)),
            200,
        )?;
        let outcome = chronos.update(&scenario.net, &mut clock, &pool);
        println!(
            "plain DNS + Chronos        : clock shifted by {:+10.3} s ({:?})",
            clock.offset_from_true(),
            outcome.map(|o| o.mode)
        );
    }

    // Configuration 3: distributed DoH + Chronos (the proposal).
    {
        let scenario = build_attacked_scenario(300);
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let report = scenario
            .pool_generator(PoolConfig::algorithm1())?
            .generate(&mut exchanger, &scenario.pool_domain)?;
        let pool = report.pool.addresses();
        let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
        let mut chronos = ChronosClient::new(
            ChronosConfig::default(),
            NtpClient::new(CLIENT_ADDR.with_port(123)),
            300,
        )?;
        let outcome = chronos.update(&scenario.net, &mut clock, &pool)?;
        println!(
            "distributed DoH + Chronos  : clock shifted by {:+10.3} s ({:?})",
            clock.offset_from_true(),
            outcome.mode
        );
    }

    println!("\nThe proposal keeps the clock within milliseconds while both plain-DNS configurations hand the attacker the full {ATTACKER_SHIFT} s shift.");
    Ok(())
}
