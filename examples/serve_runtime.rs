//! Real sockets, real threads: the secure pool-serving stack as an actual
//! Do53 server on loopback.
//!
//! Builds an in-process DoH resolver fleet (one of three resolvers
//! compromised), starts the threaded [`PoolRuntime`] with four shard
//! workers, hammers it with a handful of concurrent stub clients over
//! UDP, demonstrates the TC=1 truncated-answer retry over TCP against a
//! second small-UDP-limit runtime, and prints the aggregated per-shard
//! statistics before shutting down gracefully.
//!
//! Run with: `cargo run --example serve_runtime`

use std::time::{Duration, Instant};

use secure_doh::core::{check_guarantee, AddressPool, CacheConfig, PoolConfig};
use secure_doh::runtime::{
    LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig,
};
use secure_doh::wire::{Message, RrType};

const SHARDS: usize = 4;
const CLIENTS: usize = 6;
const QUERIES_PER_CLIENT: usize = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== secure pool serving over real sockets ==\n");

    // An in-process fleet: three full RFC 8484 DoH terminators over the
    // pool zone; resolver 0 replaces every answer with attacker addresses.
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: 4,
        addresses_per_domain: 8,
        compromised: vec![0],
        ..LoopbackConfig::default()
    });
    println!(
        "in-process DoH fleet: {} resolvers ({} compromised), {} pool domains",
        fleet.infos.len(),
        1,
        fleet.domains.len()
    );

    let shards = fleet.shards(SHARDS, PoolConfig::algorithm1(), CacheConfig::default())?;
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shards)?;
    println!(
        "runtime up: udp {} / tcp {} with {} shard workers\n",
        runtime.udp_addr(),
        runtime.tcp_addr().expect("tcp enabled"),
        runtime.shard_count()
    );

    // Concurrent client threads, each a plain blocking stub resolver.
    let udp = runtime.udp_addr();
    let tcp = runtime.tcp_addr();
    let domains = fleet.domains.clone();
    let truth = fleet.ground_truth();
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let domains = domains.clone();
            let truth = truth.clone();
            std::thread::spawn(move || {
                let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
                for i in 0..QUERIES_PER_CLIENT {
                    let id = (client * QUERIES_PER_CLIENT + i) as u16;
                    let domain = domains[(client + i) % domains.len()].clone();
                    let response = stub
                        .query(&Message::query(id, domain, RrType::A))
                        .expect("query answered");
                    let mut pool = AddressPool::new();
                    for addr in response.answer_addresses() {
                        pool.push(addr, "served");
                    }
                    let check = check_guarantee(&pool, &truth, 0.5);
                    assert!(check.holds, "served answer violates the guarantee");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    let elapsed = started.elapsed();
    let total_queries = (CLIENTS * QUERIES_PER_CLIENT) as f64;
    println!(
        "{CLIENTS} clients x {QUERIES_PER_CLIENT} queries in {:.0} ms \
         ({:.0} q/s), every answer guarantee-checked",
        elapsed.as_secs_f64() * 1000.0,
        total_queries / elapsed.as_secs_f64()
    );

    // The TC=1 → TCP retry path: a second runtime with a deliberately
    // tiny UDP payload limit truncates the ~700-byte answer, and the
    // client transparently retries the same query over TCP.
    let tiny = PoolRuntime::start(
        RuntimeConfig::default().with_udp_payload_limit(128),
        fleet.shards(1, PoolConfig::algorithm1(), CacheConfig::default())?,
    )?;
    let stub = RuntimeClient::connect(tiny.udp_addr(), tiny.tcp_addr())?
        .with_timeout(Duration::from_secs(5))?;
    let retried = stub.query(&Message::query(9999, domains[0].clone(), RrType::A))?;
    let tiny_stats = tiny.shutdown();
    println!(
        "tcp fallback: {} truncated UDP response(s), retried answer carried {} addresses\n",
        tiny_stats.truncated_responses,
        retried.answer_addresses().len()
    );

    let stats = runtime.shutdown();
    println!("final statistics (graceful shutdown):");
    println!(
        "  queries {} | generations {} | hits {} | hit ratio {:.1}% | truncated {}",
        stats.total.serve.queries,
        stats.total.serve.generations,
        stats.total.serve.hits,
        stats.total.serve.hit_ratio() * 100.0,
        stats.truncated_responses,
    );
    for (index, shard) in stats.per_shard.iter().enumerate() {
        match shard {
            Some(shard) => println!(
                "  shard {index}: {} queries, {} generations, {} cached entries",
                shard.serve.queries, shard.serve.generations, shard.entries
            ),
            None => println!("  shard {index}: unresponsive (snapshot timed out)"),
        }
    }
    println!(
        "  upstream DoH lookups: {} answered, {} failed",
        stats.total.serve.source_answers, stats.total.serve.source_failures
    );
    Ok(())
}
