//! Quickstart: the paper's Figure 1 end to end, driven through the sans-IO
//! session API.
//!
//! Builds the simulated Internet (root/org/ntpns.org DNS hierarchy, three
//! public DoH resolvers, eight NTP servers), plans one secure pool lookup
//! as a [`PoolSession`](secure_doh::core::PoolSession), performs the N
//! resolver exchanges **concurrently** (the lookup costs the slowest
//! resolver, not the sum), hands the generated pool to Chronos to
//! synchronise a clock that starts 30 seconds off, serves the pool to a
//! whole population of stub clients through the caching front end
//! ([`CachingPoolResolver`](secure_doh::core::CachingPoolResolver)) — one
//! generation, many answers — and closes by taking the very same stack
//! **out of the simulator**: a threaded real-socket runtime
//! ([`PoolRuntime`](secure_doh::runtime::PoolRuntime)) serving the pool
//! over an actual loopback UDP socket. A final seeded chaos campaign
//! ([`run_campaign`](sdoh_chaos::run_campaign)) throws the whole
//! mixed-adversary fault vocabulary at the hardened stack and asserts
//! zero invariant violations.
//!
//! Run with: `cargo run --example quickstart`

use secure_doh::core::{check_guarantee, Action, CacheConfig, PoolConfig, SessionEvent};
use secure_doh::dns::{ExchangeRequest, Exchanger, StubResolver};
use secure_doh::ntp::{ChronosClient, ChronosConfig, LocalClock, NtpClient};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR, FRONTEND_ADDR};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0: build the simulated Internet of Figure 1.
    let scenario = Scenario::build(ScenarioConfig {
        seed: 42,
        resolvers: 3,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    println!("== Secure Consensus Generation with Distributed DoH: quickstart ==\n");
    println!(
        "installed {} DoH resolvers: {}",
        scenario.resolver_infos.len(),
        scenario
            .resolver_infos
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Step 0.5: why the Do53 leg needs hardening. The ISP resolver ships
    // with the secure defaults (randomized transaction ids and source
    // ports, 0x20 mixed-case queries, bailiwick enforcement), so a
    // Kaminsky-style birthday attacker racing 65536 forged referrals
    // against every upstream query still resolves nothing: each race
    // faces ~44 bits of identifier entropy, and even a won race could
    // only hijack with off-zone glue that bailiwick enforcement discards.
    // `HardeningConfig::predictable_ids()` in `ScenarioConfig::isp_hardening`
    // reproduces the weak resolver the paper attacks (experiment E14).
    {
        use secure_doh::scenario::{KaminskyPayload, ISP_RESOLVER};
        scenario.install_kaminsky_authority();
        let adversary = scenario.kaminsky_adversary(65_536, KaminskyPayload::Referral);
        let attack_stats = adversary.stats_handle();
        scenario.net.set_adversary(adversary);
        let mut exchanger = scenario.client_exchanger();
        let served =
            StubResolver::new(ISP_RESOLVER).lookup_ipv4(&mut exchanger, &scenario.pool_domain)?;
        let truth = scenario.ground_truth();
        assert!(served.iter().all(|a| !truth.is_malicious(*a)));
        let stats = attack_stats.borrow();
        println!(
            "\nhardened Do53 leg: birthday attacker raced {} queries \
             ({} forged packets, >= {} identifier bits each) and won {}",
            stats.raced,
            stats.forged_packets,
            stats.min_entropy_bits().unwrap_or(0),
            stats.wins
        );
        drop(stats);
        scenario.net.clear_adversary();
    }

    // Steps 1-5: plan the lookup as a sans-IO session. The session hands
    // out every resolver exchange as a `Transmit` *before* asking to wait,
    // which is what lets the driver overlap them: one batch through
    // `exchange_all` costs the slowest resolver's round trips.
    let generator = scenario.pool_generator(PoolConfig::algorithm1())?;
    let mut exchanger = scenario.client_exchanger();
    let mut session = generator.session(&scenario.pool_domain, 42)?;
    let started = scenario.net.now();

    println!("\npool domain: {}", scenario.pool_domain);
    let mut ids: Vec<secure_doh::core::TransactionId> = Vec::new();
    let mut requests: Vec<ExchangeRequest> = Vec::new();
    let report = loop {
        match session.poll(exchanger.now()) {
            Action::Transmit(transmit) => {
                println!("  -> query {} over DoH", transmit.source);
                ids.push(transmit.transaction);
                requests.push(transmit.request);
            }
            Action::WaitUntil(_) => {
                // Everything is in flight: perform the whole batch
                // concurrently and feed the responses back in completion
                // order.
                let outcomes = exchanger.exchange_all(std::mem::take(&mut requests));
                let batch_ids = std::mem::take(&mut ids);
                for outcome in outcomes {
                    session.handle_response(batch_ids[outcome.index], outcome.result)?;
                }
            }
            Action::Deliver(SessionEvent::SourceAnswered {
                source, addresses, ..
            }) => println!("  <- {source} answered with {addresses} addresses"),
            Action::Deliver(SessionEvent::SourceFailed { source, error, .. }) => {
                println!("  <- {source} failed: {error}")
            }
            Action::Done => break session.finish()?,
        }
    };
    let elapsed = scenario.net.clock().elapsed_since(started);

    println!(
        "truncation length: {:?}, combined pool of {} slots",
        report.truncate_lengths,
        report.pool.len()
    );
    println!(
        "concurrent fan-out finished in {:.1} ms of virtual time \
         (one lookup's round trips, not {}x)",
        elapsed.as_secs_f64() * 1000.0,
        scenario.resolver_infos.len()
    );

    let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
    println!(
        "benign fraction {:.2} (required {:.2}) -> guarantee {}",
        check.benign_fraction,
        check.required_fraction,
        if check.holds { "HOLDS" } else { "VIOLATED" }
    );

    // Step 6: run Chronos over the generated pool.
    let pool = report.pool.addresses();
    let mut clock = LocalClock::new(scenario.net.clock(), -30.0);
    let mut chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(CLIENT_ADDR.with_port(123)),
        42,
    )?;
    println!(
        "\nlocal clock starts {:+.3} s from true time",
        clock.offset_from_true()
    );
    let outcome = chronos.update(&scenario.net, &mut clock, &pool)?;
    println!(
        "chronos update: mode {:?}, applied offset {:+.3} s over {} samples",
        outcome.mode, outcome.applied_offset, outcome.samples_used
    );
    println!(
        "local clock now {:+.6} s from true time",
        clock.offset_from_true()
    );

    // Step 7: serve the pool at scale. The caching front end answers a
    // whole population of unmodified stub clients from one generation per
    // TTL window instead of fanning out for every query.
    let resolver =
        scenario.install_caching_frontend(PoolConfig::algorithm1(), CacheConfig::default())?;
    let stub = StubResolver::new(FRONTEND_ADDR);
    for _ in 0..20 {
        let addrs = stub.lookup_ipv4(&mut exchanger, &scenario.pool_domain)?;
        assert_eq!(addrs.len(), report.pool.len());
    }
    let metrics = resolver.lock().metrics();
    println!(
        "\ncaching front end: {} queries served by {} generation(s) \
         ({} cache hits, hit ratio {:.0}%)",
        metrics.queries,
        metrics.generations,
        metrics.hits,
        metrics.hit_ratio() * 100.0
    );

    // Step 7.5: close the loop — the secure time-sync client. Instead of
    // hand-feeding Chronos a pool (step 6), `SecureTimeClient` owns the
    // pipeline: it pulls its pool through the very front end installed in
    // step 7 (re-pulling once per TTL window) and drives Chronos over it.
    use secure_doh::ntp::{ConsensusFrontEnd, SecureTimeClient};
    let mut time_client = SecureTimeClient::new(
        Box::new(ConsensusFrontEnd::new(resolver.clone())),
        scenario.pool_domain.clone(),
        ChronosClient::new(
            ChronosConfig::default(),
            NtpClient::new(CLIENT_ADDR.with_port(123)),
            43,
        )?,
    );
    let mut app_clock = LocalClock::new(scenario.net.clock(), -12.0);
    let sync = time_client.sync(&scenario.net, &mut exchanger, &mut app_clock)?;
    println!(
        "\nsecure time-sync client ({}): pool of {} ({}), clock {:+.3} s -> {:+.6} s",
        time_client.source_name(),
        sync.pool_size,
        if sync.pool_refreshed {
            "freshly pulled"
        } else {
            "within TTL window"
        },
        -12.0,
        app_clock.offset_from_true()
    );

    println!("\nnetwork metrics: {}", scenario.net.metrics());

    // Step 8: leave the simulator — the same serving stack over real
    // sockets. The threaded runtime binds a UDP socket on loopback,
    // shards the pool cache across worker threads and generates pools
    // through in-process DoH terminators; a real stub client queries it.
    use secure_doh::runtime::{
        LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig,
    };
    let fleet = LoopbackFleet::build(LoopbackConfig::default());
    let shards = fleet.shards(2, PoolConfig::algorithm1(), CacheConfig::default())?;
    let runtime = PoolRuntime::start(
        RuntimeConfig::default().with_stats_bind(Some("127.0.0.1:0".parse()?)),
        shards,
    )?;
    let stub = RuntimeClient::connect(runtime.udp_addr(), runtime.tcp_addr())?;
    for id in 0..10u16 {
        let response = stub.query(&secure_doh::wire::Message::query(
            id,
            fleet.domains[0].clone(),
            secure_doh::wire::RrType::A,
        ))?;
        assert_eq!(response.answer_addresses().len(), 24);
    }

    // Step 8.25: hot reconfiguration. The running runtime hands out a
    // control handle; applying a config delta validates and publishes the
    // next config epoch and fans it to every shard through the same work
    // queue its queries arrive on. Cached entries survive the switch —
    // the wider stale window below judges them from now on — and not a
    // single query stops flowing while it propagates.
    use secure_doh::runtime::ConfigDelta;
    let control = runtime.control();
    let receipt = control.apply(
        ConfigDelta::new().with_cache(
            CacheConfig::default()
                .with_ttl(secure_doh::wire::Ttl::from_secs(30))
                .with_stale_window(std::time::Duration::from_secs(300)),
        ),
    )?;
    control.wait_for_epoch(receipt.epoch, std::time::Duration::from_secs(5));
    println!(
        "\nhot reconfiguration: stale window flipped live to 300 s, \
         config epoch {} acked by {} shard(s), cache untouched",
        control.current_epoch(),
        control.acked_epochs().len()
    );

    // Step 8.5: the observability plane. The runtime exported everything
    // it just did on its stats listener — scrape it the way a fleet
    // aggregator (or Prometheus) would and read the counters and the
    // serving-latency percentiles back out of the text exposition.
    use secure_doh::metrics::scrape_fleet;
    let stats_addr = runtime.stats_addr().expect("stats listener bound");
    let rollup = scrape_fleet(&[stats_addr], std::time::Duration::from_secs(2));
    let served = rollup
        .counter_total("sdoh_serve_queries_total")
        .expect("runtime exports sdoh_serve_queries_total");
    let latency = rollup
        .histogram_merged("sdoh_serve_latency_seconds")
        .expect("runtime exports serve-latency histograms");
    let (p50, p99, _) = latency.percentiles().expect("non-empty histogram");
    println!(
        "\nobservability: /metrics reports {} queries served, \
         p50 <= {:?}, p99 <= {:?}; /healthz {}",
        served,
        p50,
        p99,
        if rollup.health[0].healthy == Some(true) {
            "ready"
        } else {
            "unready"
        }
    );
    assert_eq!(served, 10);

    let stats = runtime.shutdown();
    println!(
        "real-socket runtime ({} loopback shards): {} queries, {} generation(s), \
         hit ratio {:.0}%",
        stats.per_shard.len(),
        stats.total.serve.queries,
        stats.total.serve.generations,
        stats.total.serve.hit_ratio() * 100.0
    );

    // Step 9: prove the whole stack holds up under fire — a short seeded
    // chaos campaign. The fault scheduler throws degraded links,
    // partitions, resolver churn and compromise, clock trouble and a
    // persistent off-path spoofer at the hardened stack while an
    // invariant monitor re-checks the paper's guarantees every step; the
    // same seed always replays the identical campaign.
    use sdoh_chaos::{run_campaign, CampaignConfig};
    let campaign = CampaignConfig::hardened(42, 60).with_persistent_spoofer(64);
    let report = run_campaign(&campaign);
    println!(
        "\nchaos campaign (seed {}, {} steps, {} faults): {}/{} queries answered, \
         {} syncs, max |offset| {:.4} s -> {} violations ({})",
        report.seed,
        report.steps,
        report.faults_applied.values().sum::<u64>(),
        report.queries_answered,
        report.queries_issued,
        report.syncs,
        report.max_abs_offset_after_sync,
        report.total_violations,
        if report.ready { "READY" } else { "NOT READY" }
    );
    assert!(report.ready);
    Ok(())
}
