//! Quickstart: the paper's Figure 1 end to end.
//!
//! Builds the simulated Internet (root/org/ntpns.org DNS hierarchy, three
//! public DoH resolvers, eight NTP servers), runs Algorithm 1 to generate a
//! secure server pool, and hands the pool to Chronos to synchronise a clock
//! that starts 30 seconds off.
//!
//! Run with: `cargo run --example quickstart`

use secure_doh::core::{check_guarantee, PoolConfig};
use secure_doh::dns::ClientExchanger;
use secure_doh::ntp::{ChronosClient, ChronosConfig, LocalClock, NtpClient};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0: build the simulated Internet of Figure 1.
    let scenario = Scenario::build(ScenarioConfig {
        seed: 42,
        resolvers: 3,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    println!("== Secure Consensus Generation with Distributed DoH: quickstart ==\n");
    println!(
        "installed {} DoH resolvers: {}",
        scenario.resolver_infos.len(),
        scenario
            .resolver_infos
            .iter()
            .map(|r| r.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Steps 1-5: query the pool domain through every DoH resolver and
    // combine the answers with Algorithm 1.
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let generator = scenario.pool_generator(PoolConfig::algorithm1())?;
    let report = generator.generate(&mut exchanger, &scenario.pool_domain)?;

    println!("\npool domain: {}", scenario.pool_domain);
    for (name, outcome) in &report.sources {
        println!("  {name}: {outcome:?}");
    }
    println!(
        "truncation length: {:?}, combined pool of {} slots",
        report.truncate_lengths,
        report.pool.len()
    );

    let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
    println!(
        "benign fraction {:.2} (required {:.2}) -> guarantee {}",
        check.benign_fraction,
        check.required_fraction,
        if check.holds { "HOLDS" } else { "VIOLATED" }
    );

    // Step 6: run Chronos over the generated pool.
    let pool = report.pool.addresses();
    let mut clock = LocalClock::new(scenario.net.clock(), -30.0);
    let mut chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(CLIENT_ADDR.with_port(123)),
        42,
    )?;
    println!(
        "\nlocal clock starts {:+.3} s from true time",
        clock.offset_from_true()
    );
    let outcome = chronos.update(&scenario.net, &mut clock, &pool)?;
    println!(
        "chronos update: mode {:?}, applied offset {:+.3} s over {} samples",
        outcome.mode, outcome.applied_offset, outcome.samples_used
    );
    println!(
        "local clock now {:+.6} s from true time",
        clock.offset_from_true()
    );
    println!(
        "\nnetwork metrics: {}",
        scenario.net.metrics()
    );
    Ok(())
}
