//! The backward-compatible "majority DNS resolver" front end (Section II).
//!
//! Runs the majority-vote resolver as an ordinary DNS service on port 53 and
//! queries it with an unmodified stub resolver, with one of the three
//! upstream DoH resolvers compromised. The compromised resolver's fabricated
//! addresses never reach the client because no other resolver corroborates
//! them.
//!
//! Run with: `cargo run --example majority_resolver`

use secure_doh::core::{PoolConfig, SecurePoolResolver};
use secure_doh::dns::{ClientExchanger, Do53Service, StubResolver};
use secure_doh::netsim::SimAddr;
use secure_doh::scenario::{ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR};
use secure_doh::wire::Ttl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One of the three DoH resolvers replaces answers for the pool domain
    // with attacker addresses.
    let scenario = Scenario::build(ScenarioConfig {
        seed: 9,
        resolvers: 3,
        ntp_servers: 6,
        compromised: vec![(1, ResolverCompromise::ReplaceWithAttackerAddresses(6))],
        ..ScenarioConfig::default()
    });

    // Install the majority resolver as a plain DNS service the rest of the
    // host's software can point at (e.g. via /etc/resolv.conf).
    let frontend_addr = SimAddr::v4(10, 0, 0, 99, 53);
    let generator = scenario.pool_generator(PoolConfig::majority_resolver())?;
    scenario.net.register(
        frontend_addr,
        Do53Service::new(SecurePoolResolver::new(generator).answer_ttl(Ttl::from_secs(300))),
    );

    println!("== Majority DNS resolver front end ==\n");
    println!(
        "compromised upstream resolver: {}",
        scenario.resolver_infos[1].name
    );

    let stub = StubResolver::new(frontend_addr);
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let addresses = stub.lookup_ipv4(&mut exchanger, &scenario.pool_domain)?;

    let truth = scenario.ground_truth();
    println!(
        "\nstub resolver received {} addresses for {}:",
        addresses.len(),
        scenario.pool_domain
    );
    for addr in &addresses {
        println!(
            "  {addr}  [{}]",
            if truth.is_malicious(*addr) {
                "ATTACKER"
            } else {
                "benign"
            }
        );
    }
    let malicious = addresses.iter().filter(|a| truth.is_malicious(**a)).count();
    println!(
        "\n{malicious} attacker addresses passed the majority vote (expected 0); \
         {}/{} benign pool servers were corroborated by a majority of resolvers.",
        addresses.len() - malicious,
        scenario.benign_ntp.len()
    );
    Ok(())
}
