//! Off-path attack demonstration (the motivation of the paper).
//!
//! An off-path attacker races forged DNS responses against the genuine ones
//! (the attack of "The Impact of DNS Insecurity on Time", DSN 2020). The
//! plain-DNS baseline hands the attacker the whole NTP pool; the same
//! attacker achieves nothing against the DoH-based pool generation because
//! the channels are authenticated.
//!
//! Run with: `cargo run --example offpath_attack_demo`

use std::net::IpAddr;

use secure_doh::core::{check_guarantee, AddressPool, PoolConfig};
use secure_doh::dns::{ClientExchanger, StubResolver};
use secure_doh::netsim::{OffPathSpoofer, SpoofStrategy};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER};
use secure_doh::wire::{Message, MessageBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 7,
        resolvers: 3,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    let attacker_addresses: Vec<IpAddr> = scenario.attacker_ntp.iter().take(8).copied().collect();
    let truth = scenario.ground_truth();

    // Attach an off-path spoofer sitting near the victim's access network:
    // it races forged responses to the client's queries towards its ISP
    // resolver (the attack of [1]) and answers with attacker-controlled NTP
    // servers. It cannot touch the authenticated DoH channels.
    let forged_pool = attacker_addresses.clone();
    let spoofer = OffPathSpoofer::new(
        SpoofStrategy::FixedProbability(1.0),
        move |query_bytes, _rng| {
            let query = Message::decode(query_bytes).ok()?;
            let question = query.question()?;
            if !question.rtype.is_address() {
                return None;
            }
            let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
            for addr in &forged_pool {
                builder = builder.answer_address(300, *addr);
            }
            builder.build().encode().ok()
        },
    )
    .with_targets(vec![ISP_RESOLVER]);
    scenario.net.set_adversary(spoofer);

    println!("== Off-path attacker vs. pool generation ==\n");

    // Baseline: plain DNS through the ISP resolver.
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let stub = StubResolver::new(ISP_RESOLVER);
    let plain_addresses = stub.lookup_ipv4(&mut exchanger, &scenario.pool_domain)?;
    let mut plain_pool = AddressPool::new();
    for addr in &plain_addresses {
        plain_pool.push(*addr, "isp-resolver");
    }
    let plain_check = check_guarantee(&plain_pool, &truth, 0.5);
    println!(
        "plain DNS baseline : {} addresses, benign fraction {:.2} -> guarantee {}",
        plain_pool.len(),
        plain_check.benign_fraction,
        if plain_check.holds {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    // The proposal: Algorithm 1 over three DoH resolvers, same attacker.
    let generator = scenario.pool_generator(PoolConfig::algorithm1())?;
    let report = generator.generate(&mut exchanger, &scenario.pool_domain)?;
    let doh_check = check_guarantee(&report.pool, &truth, 0.5);
    println!(
        "distributed DoH    : {} addresses, benign fraction {:.2} -> guarantee {}",
        report.pool.len(),
        doh_check.benign_fraction,
        if doh_check.holds { "HOLDS" } else { "VIOLATED" }
    );

    let metrics = scenario.net.metrics();
    println!(
        "\nforged responses accepted on plain channels: {}",
        metrics.forged_responses
    );
    println!(
        "secure-channel requests (untouched by the attacker): {}",
        metrics.secure_requests
    );
    Ok(())
}
