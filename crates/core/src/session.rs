//! The sans-IO pool-generation session.
//!
//! [`PoolSession`] is a state machine describing one secure pool lookup: the
//! fan-out of DNS/DoH exchanges to the N configured resolvers, the
//! per-resolver outcome bookkeeping, and the final combination step
//! (Algorithm 1, the no-truncation ablation, or the majority vote). It
//! performs **no I/O itself** — a driver repeatedly calls
//! [`PoolSession::poll`] and acts on the returned [`Action`]:
//!
//! * [`Action::Transmit`] — put a request on the wire (the session hands out
//!   *all* transmits before asking to wait, so a capable driver can overlap
//!   every exchange: per-lookup latency is the slowest resolver's, not the
//!   sum — the paper's concurrent fan-out),
//! * [`Action::Deliver`] — a progress event (a resolver finished),
//! * [`Action::WaitUntil`] — every request is in flight; nothing to do
//!   before the given deadline unless a response arrives,
//! * [`Action::Done`] — call [`PoolSession::finish`] for the
//!   [`GenerationReport`].
//!
//! Responses are fed back with [`PoolSession::handle_response`] in **any
//! order** — the combined pool is identical for every delivery
//! interleaving, because answers are always assembled in configuration
//! order (a property the core test-suite checks over random permutations).
//!
//! Two ready-made drivers cover the common cases:
//! [`drive`] overlaps the exchanges through
//! [`Exchanger::exchange_all`] and [`drive_sequential`] performs them one at
//! a time (the pre-session behaviour, kept for comparison benchmarks).

use std::mem;
use std::net::IpAddr;

use sdoh_dns_server::{ExchangeRequest, Exchanger};
use sdoh_dns_wire::{Name, RrType};
use sdoh_netsim::{NetResult, SimInstant};

use crate::config::{CombinationMode, DualStackPolicy, FailurePolicy, PoolConfig};
use crate::error::{PoolError, PoolResult};
use crate::generator::{GenerationReport, SourceOutcome};
use crate::majority::majority_vote;
use crate::pool::AddressPool;
use crate::source::{AddressSource, FetchError, FetchStart, PendingFetch};

/// Identifies one in-flight exchange of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransactionId(usize);

impl TransactionId {
    /// Position of the transaction in the session's fan-out plan.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One request the driver must put on the wire.
#[derive(Debug)]
pub struct Transmit {
    /// Which transaction this request belongs to; echo it back to
    /// [`PoolSession::handle_response`] together with the outcome.
    pub transaction: TransactionId,
    /// Name of the source the exchange queries (for logging/metrics).
    pub source: String,
    /// Destination, channel, payload and timeout of the exchange.
    pub request: ExchangeRequest,
}

/// Progress events delivered by [`Action::Deliver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A resolver produced a usable answer list.
    SourceAnswered {
        /// Resolver name.
        source: String,
        /// Which query pass completed (0 except for
        /// [`DualStackPolicy::PerFamily`], where 1 is the AAAA pass).
        pass: usize,
        /// Number of addresses in the answer.
        addresses: usize,
    },
    /// A resolver failed.
    SourceFailed {
        /// Resolver name.
        source: String,
        /// Which query pass failed.
        pass: usize,
        /// Why.
        error: String,
    },
}

/// What the driver should do next.
#[derive(Debug)]
pub enum Action {
    /// Send this request; report the outcome via
    /// [`PoolSession::handle_response`].
    Transmit(Transmit),
    /// All requests are in flight; wait for a response, or until this
    /// deadline (the earliest in-flight timeout) to expire the remaining
    /// exchanges.
    WaitUntil(SimInstant),
    /// A source completed; informational.
    Deliver(SessionEvent),
    /// The lookup is complete; call [`PoolSession::finish`].
    Done,
}

enum TxState {
    Queued {
        request: ExchangeRequest,
        pending: PendingFetch,
    },
    InFlight {
        pending: PendingFetch,
        deadline: SimInstant,
    },
    Completed {
        result: Result<Vec<IpAddr>, FetchError>,
    },
    // Transient marker while ownership moves between states.
    Poisoned,
}

struct Transaction {
    source: usize,
    pass: usize,
    slot: usize,
    state: TxState,
}

/// Sans-IO state machine for one secure pool lookup.
///
/// See the module documentation for the driving protocol.
pub struct PoolSession<'a> {
    config: PoolConfig,
    sources: &'a [Box<dyn AddressSource>],
    passes: Vec<Vec<RrType>>,
    transactions: Vec<Transaction>,
    events: std::collections::VecDeque<SessionEvent>,
}

impl<'a> PoolSession<'a> {
    /// Plans the fan-out for `domain` over `sources` according to `config`.
    ///
    /// `seed` feeds the deterministic stream of DNS transaction ids handed
    /// to the sources; two sessions built with the same inputs describe
    /// byte-identical exchanges.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::NoResolvers`] for an empty source list and
    /// configuration validation errors.
    pub fn new(
        config: PoolConfig,
        sources: &'a [Box<dyn AddressSource>],
        domain: &Name,
        seed: u64,
    ) -> PoolResult<Self> {
        config.validate()?;
        if sources.is_empty() {
            return Err(PoolError::NoResolvers);
        }
        let passes: Vec<Vec<RrType>> = match config.dual_stack {
            DualStackPolicy::Ipv4Only => vec![vec![RrType::A]],
            DualStackPolicy::Ipv6Only => vec![vec![RrType::Aaaa]],
            DualStackPolicy::Union => vec![vec![RrType::A, RrType::Aaaa]],
            DualStackPolicy::PerFamily => vec![vec![RrType::A], vec![RrType::Aaaa]],
        };

        let mut ids = IdStream::new(seed);
        let mut session = PoolSession {
            config,
            sources,
            passes: passes.clone(),
            transactions: Vec::new(),
            events: std::collections::VecDeque::new(),
        };
        for (pass, rtypes) in passes.iter().enumerate() {
            for (source_index, source) in sources.iter().enumerate() {
                for (slot, &rtype) in rtypes.iter().enumerate() {
                    let state = match source.start_fetch(domain, rtype, ids.next_id()) {
                        FetchStart::Transmit { request, pending } => {
                            TxState::Queued { request, pending }
                        }
                        FetchStart::Immediate(result) => TxState::Completed { result },
                    };
                    session.transactions.push(Transaction {
                        source: source_index,
                        pass,
                        slot,
                        state,
                    });
                }
            }
        }
        // Sources that resolved without I/O (static answers, immediate
        // failures) complete before the first poll — and a slot that failed
        // immediately dooms its queued siblings just like a failed response
        // would, so they are never transmitted.
        for pass in 0..session.passes.len() {
            for source in 0..sources.len() {
                let already_failed = session.transactions.iter().any(|t| {
                    t.pass == pass
                        && t.source == source
                        && matches!(t.state, TxState::Completed { result: Err(_) })
                });
                if already_failed {
                    session.cancel_queued_siblings(pass, source);
                }
                session.emit_if_complete(pass, source);
            }
        }
        Ok(session)
    }

    /// Number of exchanges still awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.transactions
            .iter()
            .filter(|t| matches!(t.state, TxState::InFlight { .. }))
            .count()
    }

    /// Number of exchanges not yet handed to the driver.
    pub fn queued(&self) -> usize {
        self.transactions
            .iter()
            .filter(|t| matches!(t.state, TxState::Queued { .. }))
            .count()
    }

    /// `true` once every exchange completed and every event was delivered.
    pub fn is_done(&self) -> bool {
        self.events.is_empty()
            && self
                .transactions
                .iter()
                .all(|t| matches!(t.state, TxState::Completed { .. }))
    }

    /// Advances the state machine; `now` is the driver's current (virtual)
    /// time, used to stamp transmit deadlines.
    pub fn poll(&mut self, now: SimInstant) -> Action {
        if let Some(event) = self.events.pop_front() {
            return Action::Deliver(event);
        }
        for (index, tx) in self.transactions.iter_mut().enumerate() {
            if matches!(tx.state, TxState::Queued { .. }) {
                let state = mem::replace(&mut tx.state, TxState::Poisoned);
                let TxState::Queued { request, pending } = state else {
                    unreachable!("state checked above"); // sdoh-lint: allow(no-panic, "the matches! guard two lines up makes this arm impossible")
                };
                let deadline = now.saturating_add(request.timeout);
                tx.state = TxState::InFlight { pending, deadline };
                return Action::Transmit(Transmit {
                    transaction: TransactionId(index),
                    source: self.sources[tx.source].source_name(), // sdoh-lint: allow(no-panic, "tx.source is an index into self.sources by construction")
                    request,
                });
            }
        }
        let earliest_deadline = self
            .transactions
            .iter()
            .filter_map(|t| match t.state {
                TxState::InFlight { deadline, .. } => Some(deadline),
                _ => None,
            })
            .min();
        match earliest_deadline {
            Some(deadline) => Action::WaitUntil(deadline),
            None => Action::Done,
        }
    }

    /// Feeds the transport outcome of transaction `id` back into the
    /// session. Outcomes may arrive in any order relative to the transmit
    /// order; the eventual report does not depend on the interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownTransaction`] when `id` is unknown and
    /// [`PoolError::TransactionNotInFlight`] when it was already completed.
    pub fn handle_response(
        &mut self,
        id: TransactionId,
        outcome: NetResult<Vec<u8>>,
    ) -> PoolResult<()> {
        let tx = self
            .transactions
            .get_mut(id.0)
            .ok_or(PoolError::UnknownTransaction(id.0))?;
        if !matches!(tx.state, TxState::InFlight { .. }) {
            return Err(PoolError::TransactionNotInFlight(id.0));
        }
        let state = mem::replace(&mut tx.state, TxState::Poisoned);
        let TxState::InFlight { pending, .. } = state else {
            unreachable!("state checked above"); // sdoh-lint: allow(no-panic, "the matches! guard above makes this arm impossible")
        };
        let result = self.sources[tx.source].handle_response(pending, outcome); // sdoh-lint: allow(no-panic, "tx.source is an index into self.sources by construction")
        let failed = result.is_err();
        tx.state = TxState::Completed { result };
        let (pass, source) = (tx.pass, tx.source);
        if failed {
            self.cancel_queued_siblings(pass, source);
        }
        self.emit_if_complete(pass, source);
        Ok(())
    }

    /// Cancels the still-queued sibling fetches of a source whose earlier
    /// fetch failed, mirroring the historical sequential behaviour of
    /// skipping the AAAA query after a failed A query: the source's outcome
    /// is already decided by the lowest failing slot, so transmitting the
    /// siblings would be wasted traffic. Siblings already in flight are
    /// unaffected (their responses are simply ignored by the combination).
    fn cancel_queued_siblings(&mut self, pass: usize, source: usize) {
        for tx in &mut self.transactions {
            if tx.pass == pass && tx.source == source && matches!(tx.state, TxState::Queued { .. })
            {
                tx.state = TxState::Completed {
                    result: Err(FetchError::Transport(
                        "skipped: an earlier fetch of this source failed".into(),
                    )),
                };
            }
        }
    }

    /// Queues the per-source completion event once every slot of
    /// `(pass, source)` holds a result.
    fn emit_if_complete(&mut self, pass: usize, source: usize) {
        let (Some(pass_slots), Some(source_ref)) =
            (self.passes.get(pass), self.sources.get(source))
        else {
            return;
        };
        let mut slots: Vec<Option<&Result<Vec<IpAddr>, FetchError>>> = vec![None; pass_slots.len()];
        for tx in &self.transactions {
            if tx.pass == pass && tx.source == source {
                match &tx.state {
                    TxState::Completed { result } => {
                        if let Some(slot) = slots.get_mut(tx.slot) {
                            *slot = Some(result);
                        }
                    }
                    _ => return,
                }
            }
        }
        let name = source_ref.source_name();
        // The lowest failing slot decides, mirroring the sequential
        // fetch-A-then-AAAA behaviour where the first failure aborted.
        let mut addresses = 0usize;
        let mut failure: Option<String> = None;
        for slot in slots.into_iter().flatten() {
            match slot {
                Ok(list) => addresses += list.len(),
                Err(err) => {
                    failure = Some(err.to_string());
                    break;
                }
            }
        }
        self.events.push_back(match failure {
            None => SessionEvent::SourceAnswered {
                source: name,
                pass,
                addresses,
            },
            Some(error) => SessionEvent::SourceFailed {
                source: name,
                pass,
                error,
            },
        });
    }

    /// Combines the per-resolver answers into the final report.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::Session`] when exchanges are still outstanding
    /// and [`PoolError::NotEnoughResponses`] when fewer resolvers than
    /// `min_responses` produced usable answers.
    pub fn finish(self) -> PoolResult<GenerationReport> {
        if !self
            .transactions
            .iter()
            .all(|t| matches!(t.state, TxState::Completed { .. }))
        {
            return Err(PoolError::Session(
                "finish() called with exchanges outstanding".into(),
            ));
        }

        let mut pass_reports: Vec<GenerationReport> = Vec::new();
        for (pass, rtypes) in self.passes.iter().enumerate() {
            pass_reports.push(self.combine_pass(pass, rtypes)?);
        }

        // PerFamily: each family truncated and combined on its own, pools
        // concatenated. Per-source outcomes are merged across the passes —
        // a resolver counts as failed if any family lookup failed, and as
        // answering the total address count otherwise — so front-end
        // metrics see real outcomes, not just the A pass's. (A single-pass
        // session simply skips the merge loop.)
        let mut reports = pass_reports.into_iter();
        let Some(mut merged) = reports.next() else {
            return Err(PoolError::Session("session has no passes".into()));
        };
        for other in reports {
            merged.pool.extend_from(&other.pool);
            merged.truncate_lengths.extend(other.truncate_lengths);
            for ((_, outcome), (_, other_outcome)) in merged.sources.iter_mut().zip(other.sources) {
                *outcome = match (outcome.clone(), other_outcome) {
                    (SourceOutcome::Answered(a), SourceOutcome::Answered(b)) => {
                        SourceOutcome::Answered(a + b)
                    }
                    (failed @ SourceOutcome::Failed(_), _) => failed,
                    (_, failed) => failed,
                };
            }
        }
        Ok(merged)
    }

    /// Runs the combination step for one pass, assembling answers in
    /// configuration order regardless of response arrival order.
    fn combine_pass(&self, pass: usize, rtypes: &[RrType]) -> PoolResult<GenerationReport> {
        let mut outcomes: Vec<(String, SourceOutcome)> = Vec::new();
        let mut answers: Vec<(String, Vec<IpAddr>)> = Vec::new();

        for (source_index, source) in self.sources.iter().enumerate() {
            let name = source.source_name();
            let mut combined: Vec<IpAddr> = Vec::new();
            let mut failure: Option<String> = None;
            let mut slots: Vec<(usize, &Result<Vec<IpAddr>, FetchError>)> = self
                .transactions
                .iter()
                .filter(|t| t.pass == pass && t.source == source_index)
                .filter_map(|t| match &t.state {
                    TxState::Completed { result } => Some((t.slot, result)),
                    // finish() verified completion before combine_pass runs.
                    _ => None,
                })
                .collect();
            slots.sort_by_key(|(slot, _)| *slot);
            for (_, result) in slots {
                match result {
                    Ok(addresses) => combined.extend(addresses.iter().copied()),
                    Err(err) => {
                        failure = Some(err.to_string());
                        break;
                    }
                }
            }
            match failure {
                None => {
                    outcomes.push((name.clone(), SourceOutcome::Answered(combined.len())));
                    answers.push((name, combined));
                }
                Some(err) => {
                    outcomes.push((name.clone(), SourceOutcome::Failed(err)));
                    if self.config.failure_policy == FailurePolicy::TreatAsEmpty {
                        answers.push((name, Vec::new()));
                    }
                }
            }
        }

        let usable = answers.len();
        if usable < self.config.min_responses {
            // The gate counts usable answer lists (under TreatAsEmpty a
            // failed resolver still contributes an empty list, as it always
            // has), but the error reports the number of resolvers that
            // *actually* answered, so callers' metrics see the truth.
            return Err(PoolError::NotEnoughResponses {
                answered: outcomes.iter().filter(|(_, o)| o.is_answered()).count(),
                required: self.config.min_responses,
            });
        }

        let type_label = rtypes
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("+");

        let (pool, truncate_lengths) = match self.config.mode {
            CombinationMode::TruncateAndCombine => {
                let truncate = answers.iter().map(|(_, l)| l.len()).min().unwrap_or(0);
                let mut pool = AddressPool::new();
                for (name, list) in &answers {
                    for &addr in list.iter().take(truncate) {
                        pool.push(addr, name.clone());
                    }
                }
                (pool, vec![(type_label, truncate)])
            }
            CombinationMode::CombineWithoutTruncation => {
                let mut pool = AddressPool::new();
                for (name, list) in &answers {
                    for &addr in list {
                        pool.push(addr, name.clone());
                    }
                }
                let max = answers.iter().map(|(_, l)| l.len()).max().unwrap_or(0);
                (pool, vec![(type_label, max)])
            }
            CombinationMode::MajorityVote => {
                let lists: Vec<Vec<IpAddr>> = answers.iter().map(|(_, l)| l.clone()).collect();
                let winners = majority_vote(&lists, usable, self.config.majority_threshold);
                let mut pool = AddressPool::new();
                for (addr, support) in winners {
                    pool.push(addr, format!("majority({support}/{usable})"));
                }
                (pool, Vec::new())
            }
        };

        Ok(GenerationReport {
            pool,
            mode: self.config.mode,
            sources: outcomes,
            truncate_lengths,
        })
    }
}

impl std::fmt::Debug for PoolSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolSession")
            .field("sources", &self.sources.len())
            .field("passes", &self.passes.len())
            .field("queued", &self.queued())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// Deterministic stream of DNS transaction ids, backed by the simulator's
/// seedable generator so the workspace has one PRNG implementation.
struct IdStream {
    rng: sdoh_netsim::SimRng,
}

impl IdStream {
    fn new(seed: u64) -> Self {
        IdStream {
            rng: sdoh_netsim::SimRng::seed_from_u64(seed),
        }
    }

    fn next_id(&mut self) -> u16 {
        self.rng.gen_u16()
    }
}

/// Drives a session to completion with **concurrent fan-out**: transmits
/// are collected and flushed as one [`Exchanger::exchange_all`] batch, so a
/// lookup over N resolvers costs one batch's virtual latency — the slowest
/// exchange — instead of the sum (the paper's parallel-query model).
///
/// Returns the [`SessionEvent`]s delivered along the way — the per-resolver
/// outcome stream, available even when [`PoolSession::finish`] later
/// returns an error.
///
/// # Errors
///
/// Propagates [`PoolError`] from the session (transport errors are folded
/// into per-source outcomes, not returned here).
pub fn drive(
    session: &mut PoolSession<'_>,
    exchanger: &mut dyn Exchanger,
) -> PoolResult<Vec<SessionEvent>> {
    let mut events: Vec<SessionEvent> = Vec::new();
    let mut ids: Vec<TransactionId> = Vec::new();
    let mut requests: Vec<ExchangeRequest> = Vec::new();
    loop {
        match session.poll(exchanger.now()) {
            Action::Deliver(event) => events.push(event),
            Action::Transmit(transmit) => {
                ids.push(transmit.transaction);
                requests.push(transmit.request);
            }
            Action::WaitUntil(_) => {
                if requests.is_empty() {
                    // Nothing of ours in flight and nothing to send: only a
                    // foreign driver could make progress.
                    return Err(PoolError::Session(
                        "session waits on exchanges this driver never sent".into(),
                    ));
                }
                let outcomes = exchanger.exchange_all(mem::take(&mut requests));
                let batch_ids = mem::take(&mut ids);
                // Outcomes arrive in completion order; feed them back in
                // exactly that interleaving.
                for outcome in outcomes {
                    let id = batch_ids.get(outcome.index).copied().ok_or_else(|| {
                        PoolError::Session("exchange outcome for an unsent request".into())
                    })?;
                    session.handle_response(id, outcome.result)?;
                }
            }
            Action::Done => return Ok(events),
        }
    }
}

/// Drives a session to completion **one exchange at a time** — the
/// pre-session sequential behaviour, kept for latency comparisons and for
/// transports without concurrency support. Returns the delivered
/// [`SessionEvent`]s like [`drive`].
///
/// # Errors
///
/// Propagates [`PoolError`] from the session.
pub fn drive_sequential(
    session: &mut PoolSession<'_>,
    exchanger: &mut dyn Exchanger,
) -> PoolResult<Vec<SessionEvent>> {
    let mut events: Vec<SessionEvent> = Vec::new();
    loop {
        match session.poll(exchanger.now()) {
            Action::Deliver(event) => events.push(event),
            Action::Transmit(transmit) => {
                let request = transmit.request;
                let outcome = exchanger.exchange(
                    request.dst,
                    request.channel,
                    &request.payload,
                    request.timeout,
                );
                session.handle_response(transmit.transaction, outcome)?;
            }
            Action::WaitUntil(_) => {
                return Err(PoolError::Session(
                    "session waits on exchanges this driver never sent".into(),
                ));
            }
            Action::Done => return Ok(events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::StaticSource;
    use sdoh_dns_server::ClientExchanger;
    use sdoh_doh::{DohMethod, DohServerService, ResolverDirectory};
    use sdoh_netsim::{SimAddr, SimNet};

    fn ip(last: u8) -> std::net::IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    fn static_sources() -> Vec<Box<dyn AddressSource>> {
        vec![
            Box::new(StaticSource::answering("r1", vec![ip(1), ip(2)])),
            Box::new(StaticSource::answering("r2", vec![ip(3), ip(4)])),
        ]
    }

    #[test]
    fn immediate_sources_complete_without_transmits() {
        let sources = static_sources();
        let domain: Name = "pool.ntp.org".parse().unwrap();
        let mut session = PoolSession::new(PoolConfig::algorithm1(), &sources, &domain, 1).unwrap();
        // Two Deliver events, then Done; never a Transmit.
        let mut events = 0;
        loop {
            match session.poll(SimInstant::EPOCH) {
                Action::Deliver(SessionEvent::SourceAnswered { addresses, .. }) => {
                    events += 1;
                    assert_eq!(addresses, 2);
                }
                Action::Done => break,
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(events, 2);
        assert!(session.is_done());
        let report = session.finish().unwrap();
        assert_eq!(report.pool.len(), 4);
    }

    #[test]
    fn doh_fanout_transmits_everything_before_waiting() {
        let net = SimNet::new(31);
        let directory = ResolverDirectory::well_known(31);
        let infos = directory.take(3);
        let mut zone = sdoh_dns_server::Zone::new("ntp.org".parse().unwrap());
        for i in 1..=4u8 {
            zone.add_address("pool.ntp.org".parse().unwrap(), ip(i));
        }
        let mut catalog = sdoh_dns_server::Catalog::new();
        catalog.add_zone(zone);
        for info in &infos {
            net.register(
                info.addr,
                DohServerService::new(
                    info.clone(),
                    sdoh_dns_server::Authority::new(catalog.clone()),
                ),
            );
        }
        let sources: Vec<Box<dyn AddressSource>> = infos
            .iter()
            .map(|info| {
                Box::new(crate::source::DohSource::new(info.clone()).method(DohMethod::Get))
                    as Box<dyn AddressSource>
            })
            .collect();
        let domain: Name = "pool.ntp.org".parse().unwrap();
        let mut session = PoolSession::new(PoolConfig::algorithm1(), &sources, &domain, 7).unwrap();

        // The session must hand out all three transmits before first asking
        // to wait — that is what makes driver-side overlap possible.
        let mut transmits = Vec::new();
        loop {
            match session.poll(SimInstant::EPOCH) {
                Action::Transmit(t) => transmits.push(t),
                Action::WaitUntil(deadline) => {
                    assert!(deadline > SimInstant::EPOCH);
                    break;
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(transmits.len(), 3);
        assert_eq!(session.in_flight(), 3);

        // Deliver the responses in reverse order; the pool must not care.
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        for t in transmits.into_iter().rev() {
            let reply = exchanger
                .exchange(
                    t.request.dst,
                    t.request.channel,
                    &t.request.payload,
                    t.request.timeout,
                )
                .unwrap();
            session.handle_response(t.transaction, Ok(reply)).unwrap();
        }
        while let Action::Deliver(_) = session.poll(SimInstant::EPOCH) {}
        let report = session.finish().unwrap();
        assert_eq!(report.pool.len(), 12, "3 resolvers x 4 addresses");
        // Configuration order, not delivery order.
        let names: Vec<&str> = report.sources.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            infos.iter().map(|i| i.name.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn per_family_merges_source_outcomes_across_passes() {
        use crate::config::DualStackPolicy;
        use crate::generator::SourceOutcome;

        /// Answers A queries but fails AAAA — a resolver with broken v6.
        struct V4Only;
        impl AddressSource for V4Only {
            fn source_name(&self) -> String {
                "v4-only".into()
            }

            fn start_fetch(&self, _domain: &Name, rtype: RrType, _id: u16) -> FetchStart {
                match rtype {
                    RrType::Aaaa => {
                        FetchStart::Immediate(Err(FetchError::Transport("no v6 route".into())))
                    }
                    _ => FetchStart::Immediate(Ok(vec![ip(9).to_owned()])),
                }
            }

            fn handle_response(
                &self,
                _pending: crate::source::PendingFetch,
                _outcome: sdoh_netsim::NetResult<Vec<u8>>,
            ) -> Result<Vec<std::net::IpAddr>, FetchError> {
                unreachable!("immediate source")
            }
        }

        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::answering(
                "dual",
                vec![ip(1), "2001:db8::1".parse().unwrap()],
            )),
            Box::new(V4Only),
        ];
        let domain: Name = "pool.ntp.org".parse().unwrap();
        let config = PoolConfig::algorithm1().with_dual_stack(DualStackPolicy::PerFamily);
        let mut session = PoolSession::new(config, &sources, &domain, 3).unwrap();
        while let Action::Deliver(_) = session.poll(SimInstant::EPOCH) {}
        let report = session.finish().unwrap();

        // The v6-broken resolver must be reported as failed even though its
        // A-pass lookup succeeded; the healthy resolver's count spans both
        // families.
        assert_eq!(report.failed(), 1);
        assert_eq!(report.sources[0].1, SourceOutcome::Answered(2));
        assert!(matches!(report.sources[1].1, SourceOutcome::Failed(_)));
    }

    #[test]
    fn misuse_is_reported_not_panicking() {
        let sources = static_sources();
        let domain: Name = "pool.ntp.org".parse().unwrap();
        let mut session = PoolSession::new(PoolConfig::algorithm1(), &sources, &domain, 1).unwrap();
        let err = session
            .handle_response(TransactionId(99), Ok(Vec::new()))
            .unwrap_err();
        assert_eq!(err, PoolError::UnknownTransaction(99));
        // Static transactions are already completed: responding is misuse.
        let err = session
            .handle_response(TransactionId(0), Ok(Vec::new()))
            .unwrap_err();
        assert_eq!(err, PoolError::TransactionNotInFlight(0));
    }

    #[test]
    fn finish_rejects_outstanding_exchanges() {
        let net = SimNet::new(32);
        let directory = ResolverDirectory::well_known(32);
        let infos = directory.take(1);
        let sources: Vec<Box<dyn AddressSource>> = infos
            .iter()
            .map(|info| {
                Box::new(crate::source::DohSource::new(info.clone())) as Box<dyn AddressSource>
            })
            .collect();
        let domain: Name = "pool.ntp.org".parse().unwrap();
        let mut session = PoolSession::new(PoolConfig::algorithm1(), &sources, &domain, 5).unwrap();
        let Action::Transmit(_) = session.poll(net.now()) else {
            panic!("expected a transmit");
        };
        assert!(matches!(session.finish(), Err(PoolError::Session(_))));
    }
}
