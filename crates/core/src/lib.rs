//! Secure server-pool generation with distributed DoH resolvers — the core
//! contribution of *"Secure Consensus Generation with Distributed DoH"*
//! (Jeitner, Shulman, Waidner; DSN-S 2020).
//!
//! Applications that need a pool of servers with an honest majority
//! (Chronos-enhanced NTP, cryptocurrency bootstrapping, …) traditionally
//! obtain it with a single plain DNS query — a single point of failure an
//! off-path attacker can poison. This crate implements the paper's
//! alternative:
//!
//! * query the pool domain through **N distributed DoH resolvers** over
//!   authenticated channels, **concurrently** — the paper's client fans the
//!   N queries out in parallel, so a lookup costs the slowest resolver's
//!   round trips, not the sum,
//! * combine the answers with **Algorithm 1** — truncate every list to the
//!   shortest list's length and concatenate
//!   ([`CombinationMode::TruncateAndCombine`]) — so that each resolver
//!   controls an equal share of the pool,
//! * or filter with a **majority vote** ([`CombinationMode::MajorityVote`])
//!   and expose the result through a standard-compatible DNS front end
//!   ([`SecurePoolResolver`]),
//! * handle dual-stack lookups per the paper's footnote 1
//!   ([`DualStackPolicy`]),
//! * and check the guarantee — "the pool contains a fraction of at least
//!   `x` benign servers" — against experiment ground truth
//!   ([`check_guarantee`]).
//!
//! # Architecture: a sans-IO session plus drivers
//!
//! The lookup logic is a **sans-IO state machine**, [`PoolSession`]: it
//! *describes* the N resolver exchanges ([`Action::Transmit`]), accepts
//! their outcomes in any order ([`PoolSession::handle_response`]) and
//! combines the answers ([`PoolSession::finish`]) — it never touches a
//! transport itself. Drivers perform the described I/O:
//!
//! * [`SecurePoolGenerator::generate`] — the convenience driver; it batches
//!   every transmit through `Exchanger::exchange_all`, which the
//!   simulator-backed exchangers execute concurrently,
//! * [`SecurePoolGenerator::generate_sequential`] — one exchange at a time,
//!   the pre-session behaviour, kept for latency comparisons,
//! * [`drive`] / [`drive_sequential`] — the same two loops over an
//!   externally constructed session, for callers that want the
//!   [`SessionEvent`] progress stream or custom scheduling.
//!
//! Because answers are assembled in configuration order, the generated pool
//! is **identical for every response interleaving** — a property the test
//! suite checks over random permutations.
//!
//! # Example: Algorithm 1 over three resolvers
//!
//! ```
//! use sdoh_core::{AddressSource, PoolConfig, SecurePoolGenerator, StaticSource};
//! use sdoh_dns_server::ClientExchanger;
//! use sdoh_netsim::{SimAddr, SimNet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sources: Vec<Box<dyn AddressSource>> = vec![
//!     Box::new(StaticSource::answering("dns.google", vec!["203.0.113.1".parse()?])),
//!     Box::new(StaticSource::answering("cloudflare-dns.com", vec!["203.0.113.2".parse()?])),
//!     Box::new(StaticSource::answering("dns.quad9.net", vec!["203.0.113.1".parse()?])),
//! ];
//! let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources)?;
//!
//! let net = SimNet::new(1);
//! let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
//! let report = generator.generate(&mut exchanger, &"pool.ntp.org".parse()?)?;
//! assert_eq!(report.pool.len(), 3, "one slot per resolver after truncation");
//! # Ok(())
//! # }
//! ```
//!
//! # Serving at scale: the [`serve`] subsystem
//!
//! Generation is expensive by design; serving need not be. The [`serve`]
//! module adds the layer between client queries and pool generation:
//!
//! * a **sharded TTL cache** of generation reports keyed by
//!   `(domain, address family)`, with LRU eviction and negative caching
//!   of failures ([`PoolCache`]),
//! * **singleflight coalescing** so a burst of concurrent misses for one
//!   domain shares a single fan-out ([`Singleflight`],
//!   [`CachingPoolResolver::serve_batch`]),
//! * **stale-while-revalidate** — expired entries are served immediately
//!   within a stale window while a background refresh regenerates them
//!   ([`RefreshScheduler`], [`CachingPoolResolver::run_due_refreshes`]),
//! * [`ServeSession`] — the sans-IO session overlapping the generations of
//!   a whole serving batch in one fan-out.
//!
//! [`CachingPoolResolver`] wraps it all as a drop-in `QueryHandler`:
//! serving cost falls from one generation **per query** to one generation
//! per `(domain, TTL window)`, while every served answer still comes out
//! of a real generation — the benign-fraction guarantee is untouched.
//! In-process consumers can skip the DNS framing entirely through
//! [`CachingPoolResolver::resolve_pool`], which returns typed addresses
//! plus the remaining TTL; that is how the `sdoh-ntp` crate's
//! **secure time synchronization** pipeline (`SecureTimeClient`) pulls a
//! fresh pool per TTL window and drives Chronos over it — the paper's
//! application closing the loop over this crate's pools.
//!
//! The whole serve layer is `Send` (sources are
//! [`AddressSource: Send`](AddressSource), state is plainly owned), so a
//! resolver can be moved into a worker thread outright. That is how the
//! `sdoh-runtime` crate serves real traffic: it binds an actual UDP
//! socket, hashes each query's `(domain, address family)` onto one of N
//! worker threads, and each worker **owns** its `CachingPoolResolver`
//! shard — per-shard ownership instead of a shared lock — while a
//! dedicated thread pumps [`CachingPoolResolver::run_due_refreshes`] off
//! the query path and a stats thread aggregates per-shard
//! [`ServeSnapshot`]s ([`CachingPoolResolver::snapshot`], one consistent
//! reading per tick).
//!
//! The layer also exposes an **invariant probe surface** for fault
//! injection: [`PoolCache::probe`] reports every entry's age and
//! fresh/stale/dead state at an instant, and
//! [`ServeSnapshot::regressions`] names any cumulative counter that went
//! backwards between two snapshots. The `sdoh-chaos` crate's seeded chaos
//! campaigns drive the serve + timesync stack through thousands of fault
//! steps (loss, duplication, partitions, resolver churn, clock steps) and
//! check these probes after every step: no served pool may violate the
//! benign-fraction guarantee, no counter may regress, and nothing older
//! than TTL + stale window may be served.
//!
//! ```
//! use sdoh_core::{
//!     AddressSource, CacheConfig, CachingPoolResolver, PoolConfig, SecurePoolGenerator,
//!     StaticSource,
//! };
//! use sdoh_dns_server::{ClientExchanger, QueryHandler};
//! use sdoh_dns_wire::{Message, RrType};
//! use sdoh_netsim::{SimAddr, SimNet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sources: Vec<Box<dyn AddressSource>> = vec![
//!     Box::new(StaticSource::answering("dns.google", vec!["203.0.113.1".parse()?])),
//!     Box::new(StaticSource::answering("dns.quad9.net", vec!["203.0.113.2".parse()?])),
//! ];
//! let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources)?;
//! let mut resolver = CachingPoolResolver::new(generator, CacheConfig::default());
//!
//! let net = SimNet::new(1);
//! let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
//! let query = Message::query(1, "pool.ntp.org".parse()?, RrType::A);
//! let first = resolver.handle_query(&mut exchanger, &query);   // miss: generates
//! let second = resolver.handle_query(&mut exchanger, &query);  // hit: no fan-out
//! assert_eq!(first.answer_addresses(), second.answer_addresses());
//! assert_eq!(resolver.metrics().generations, 1);
//! assert_eq!(resolver.metrics().hits, 1);
//! # Ok(())
//! # }
//! ```
//!
//! # Example: driving a session by hand
//!
//! ```
//! use sdoh_core::{Action, AddressSource, PoolConfig, PoolSession, StaticSource};
//! use sdoh_netsim::SimInstant;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sources: Vec<Box<dyn AddressSource>> = vec![
//!     Box::new(StaticSource::answering("r1", vec!["203.0.113.1".parse()?])),
//!     Box::new(StaticSource::answering("r2", vec!["203.0.113.2".parse()?])),
//! ];
//! let mut session =
//!     PoolSession::new(PoolConfig::algorithm1(), &sources, &"pool.ntp.org".parse()?, 7)?;
//! // Static sources resolve without I/O: the session only delivers events
//! // and completes. A DoH source would yield Action::Transmit here, one
//! // per resolver, before asking the driver to wait.
//! loop {
//!     match session.poll(SimInstant::EPOCH) {
//!         Action::Deliver(event) => println!("{event:?}"),
//!         Action::Done => break,
//!         other => unreachable!("static sources never transmit: {other:?}"),
//!     }
//! }
//! assert_eq!(session.finish()?.pool.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;
mod generator;
mod guarantee;
mod lookup;
mod majority;
mod pool;
pub mod serve;
mod session;
mod source;

pub use config::{CombinationMode, DualStackPolicy, FailurePolicy, PoolConfig};
pub use error::{PoolError, PoolResult};
pub use generator::{GenerationReport, SecurePoolGenerator, SourceOutcome};
pub use guarantee::{attacker_controls_fraction, check_guarantee, GroundTruth, GuaranteeCheck};
pub use lookup::{ResolverMetrics, SecurePoolResolver};
pub use majority::{majority_vote, meets_threshold, support_counts};
pub use pool::{AddressPool, PoolEntry};
pub use serve::{
    snapshot_samples, AddressFamily, CacheConfig, CacheEntryProbe, CacheLookup, CachedPool,
    CachingPoolResolver, ConfigError, EntryState, PoolCache, PoolKey, RefreshScheduler,
    ResolvedPool, ServeConfig, ServeMetrics, ServeSession, ServeSnapshot, Singleflight,
    APP_METRIC_HELP, METRIC_CONFIG_EPOCH, METRIC_DROPPED_QUERIES, METRIC_INVARIANT_VIOLATIONS,
    METRIC_SERVE_LATENCY, METRIC_SHARDS, METRIC_SHARD_ACKED_EPOCH, METRIC_TCP_QUERIES,
    METRIC_TIMESYNC_FAILURES, METRIC_TIMESYNC_POOL_REFRESHES, METRIC_TIMESYNC_SYNCS,
    METRIC_TRUNCATED_RESPONSES, METRIC_UDP_QUERIES, METRIC_UNRESPONSIVE_SHARDS,
    RUNTIME_METRIC_HELP, SERVE_COUNTER_HELP, SERVE_GAUGE_HELP,
};
pub use session::{
    drive, drive_sequential, Action, PoolSession, SessionEvent, TransactionId, Transmit,
};
pub use source::{
    AddressSource, DohSource, FetchError, FetchStart, PendingFetch, PlainDnsSource, StaticSource,
};
