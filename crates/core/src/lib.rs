//! Secure server-pool generation with distributed DoH resolvers — the core
//! contribution of *"Secure Consensus Generation with Distributed DoH"*
//! (Jeitner, Shulman, Waidner; DSN-S 2020).
//!
//! Applications that need a pool of servers with an honest majority
//! (Chronos-enhanced NTP, cryptocurrency bootstrapping, …) traditionally
//! obtain it with a single plain DNS query — a single point of failure an
//! off-path attacker can poison. This crate implements the paper's
//! alternative:
//!
//! * query the pool domain through **N distributed DoH resolvers** over
//!   authenticated channels ([`SecurePoolGenerator`], [`DohSource`]),
//! * combine the answers with **Algorithm 1** — truncate every list to the
//!   shortest list's length and concatenate
//!   ([`CombinationMode::TruncateAndCombine`]) — so that each resolver
//!   controls an equal share of the pool,
//! * or filter with a **majority vote** ([`CombinationMode::MajorityVote`])
//!   and expose the result through a standard-compatible DNS front end
//!   ([`SecurePoolResolver`]),
//! * handle dual-stack lookups per the paper's footnote 1
//!   ([`DualStackPolicy`]),
//! * and check the guarantee — "the pool contains a fraction of at least
//!   `x` benign servers" — against experiment ground truth
//!   ([`check_guarantee`]).
//!
//! # Example: Algorithm 1 over three resolvers
//!
//! ```
//! use sdoh_core::{AddressSource, PoolConfig, SecurePoolGenerator, StaticSource};
//! use sdoh_dns_server::ClientExchanger;
//! use sdoh_netsim::{SimAddr, SimNet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sources: Vec<Box<dyn AddressSource>> = vec![
//!     Box::new(StaticSource::answering("dns.google", vec!["203.0.113.1".parse()?])),
//!     Box::new(StaticSource::answering("cloudflare-dns.com", vec!["203.0.113.2".parse()?])),
//!     Box::new(StaticSource::answering("dns.quad9.net", vec!["203.0.113.1".parse()?])),
//! ];
//! let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources)?;
//!
//! let net = SimNet::new(1);
//! let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
//! let report = generator.generate(&mut exchanger, &"pool.ntp.org".parse()?)?;
//! assert_eq!(report.pool.len(), 3, "one slot per resolver after truncation");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;
mod generator;
mod guarantee;
mod lookup;
mod majority;
mod pool;
mod source;

pub use config::{CombinationMode, DualStackPolicy, FailurePolicy, PoolConfig};
pub use error::{PoolError, PoolResult};
pub use generator::{GenerationReport, SecurePoolGenerator, SourceOutcome};
pub use guarantee::{attacker_controls_fraction, check_guarantee, GroundTruth, GuaranteeCheck};
pub use lookup::SecurePoolResolver;
pub use majority::{majority_vote, support_counts};
pub use pool::{AddressPool, PoolEntry};
pub use source::{AddressSource, DohSource, FetchError, PlainDnsSource, StaticSource};
