//! Config epochs: the validated, immutable serving configuration a
//! control plane swaps under a live resolver.
//!
//! A [`ServeConfig`] is an `Arc`-shared, monotonically numbered snapshot
//! of every serving knob. The serving layer reads the *current* epoch's
//! knobs per query instead of holding fields copied at construction, so a
//! control plane can retune TTLs, stale windows, negative caching and
//! capacity on a live resolver with
//! [`CachingPoolResolver::apply_config`](super::CachingPoolResolver::apply_config)
//! — without touching cached entries mid-flight and without adding any
//! lock to the serving path (each serving shard owns its resolver; the
//! new epoch arrives over the shard's work queue).
//!
//! Entries keep the expiry they were stamped with at insert, but stale
//! serving is bounded by **both** the stamped expiry plus the *current*
//! stale window and the current `ttl + stale_window` horizon measured
//! from generation. Across an epoch change this caps every served
//! answer's age at the **maximum of the old and new `ttl + stale_window`
//! horizons** — the invariant chaos campaigns and the epoch-transition
//! property tests check.

use std::error::Error;
use std::fmt;

use super::cache::CacheConfig;

/// A configuration rejected by fallible validation — returned by
/// [`CacheConfig::validate`], [`ServeConfig::new`] and the runtime-side
/// config validators instead of panicking or silently misbehaving later.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A knob that must be non-zero was zero (the field is named).
    Zero(&'static str),
    /// A cross-field constraint was violated.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// Why the combination is rejected.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero(field) => write!(f, "configuration field `{field}` must not be zero"),
            ConfigError::Invalid { field, reason } => {
                write!(f, "invalid configuration field `{field}`: {reason}")
            }
        }
    }
}

impl Error for ConfigError {}

/// One immutable, validated epoch of the serving configuration.
///
/// Epochs are monotonically numbered: [`ServeConfig::new`] starts at
/// epoch 0 and [`ServeConfig::next`] derives the successor epoch with new
/// knobs. The control plane shares each epoch as an
/// `Arc<ServeConfig>` — workers adopt it by pointer swap and report the
/// epoch number they last acked, which is how an operator observes a
/// reconfiguration propagating through a fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    epoch: u64,
    cache: CacheConfig,
}

impl ServeConfig {
    /// Validates `cache` and wraps it as epoch 0.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] of [`CacheConfig::validate`].
    pub fn new(cache: CacheConfig) -> Result<Self, ConfigError> {
        cache.validate()?;
        Ok(ServeConfig { epoch: 0, cache })
    }

    /// Wraps `cache` as epoch 0 **without** validation — the constructor
    /// behind [`CachingPoolResolver::new`](super::CachingPoolResolver::new),
    /// which historically clamps zero capacity/shards instead of erroring.
    /// New code should prefer [`ServeConfig::new`].
    pub fn initial(cache: CacheConfig) -> Self {
        ServeConfig { epoch: 0, cache }
    }

    /// Derives the next epoch carrying `cache`, validated.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] of [`CacheConfig::validate`].
    pub fn next(&self, cache: CacheConfig) -> Result<Self, ConfigError> {
        cache.validate()?;
        Ok(ServeConfig {
            epoch: self.epoch + 1,
            cache,
        })
    }

    /// The monotone epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cache/serving knobs of this epoch.
    pub fn cache(&self) -> &CacheConfig {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_gates_construction() {
        let err = ServeConfig::new(CacheConfig::default().with_shards(0)).unwrap_err();
        assert_eq!(err, ConfigError::Zero("shards"));
        let err = ServeConfig::new(CacheConfig::default().with_capacity(0)).unwrap_err();
        assert_eq!(err, ConfigError::Zero("capacity"));
        assert!(!err.to_string().is_empty());
        let boxed: Box<dyn Error> = Box::new(err);
        assert!(boxed.source().is_none());
    }

    #[test]
    fn epochs_are_monotone() {
        let first = ServeConfig::new(CacheConfig::default()).unwrap();
        assert_eq!(first.epoch(), 0);
        let second = first
            .next(CacheConfig::default().with_capacity(42))
            .unwrap();
        assert_eq!(second.epoch(), 1);
        assert_eq!(second.cache().capacity, 42);
        // The predecessor is untouched (epochs are immutable snapshots).
        assert_eq!(first.cache().capacity, 1024);
        assert!(first.next(CacheConfig::default().with_shards(0)).is_err());
    }

    #[test]
    fn initial_skips_validation_for_the_clamping_path() {
        let config = ServeConfig::initial(CacheConfig::default().with_capacity(0));
        assert_eq!(config.epoch(), 0);
        assert_eq!(config.cache().capacity, 0);
    }

    #[test]
    fn invalid_variant_displays_reason() {
        let err = ConfigError::Invalid {
            field: "refresh_interval",
            reason: "stale window configured but the refresh pump is disabled".into(),
        };
        assert!(err.to_string().contains("refresh_interval"));
        assert!(err.to_string().contains("stale window"));
    }
}
