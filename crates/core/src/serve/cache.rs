//! The sharded TTL pool cache.
//!
//! [`PoolCache`] stores [`GenerationReport`]s keyed by
//! `(domain, address family)` so that the expensive distributed generation
//! runs once per TTL window instead of once per client query. The cache is
//! split into shards selected by key hash — bounding the scan cost of any
//! single operation and mirroring how a production deployment would shard
//! to reduce lock contention — with LRU eviction inside each shard,
//! **negative caching** of generation failures (a failed fan-out is
//! remembered briefly instead of being retried by every queued client), and
//! a **stale window** after expiry during which an entry is still served
//! while a refresh regenerates it (stale-while-revalidate).
//!
//! The cache is sans-IO like the rest of the crate: it never reads a clock.
//! Every operation takes `now` explicitly, so it composes with the
//! simulator's virtual time and with any driver's notion of "now".

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::Duration;

use sdoh_dns_wire::{Name, Question, RrType, Ttl};
use sdoh_netsim::SimInstant;

use super::epoch::ConfigError;
use crate::generator::GenerationReport;

/// The address family of a cached pool — the second half of the cache key.
///
/// A pool generated for A queries and one generated for AAAA queries are
/// distinct cache entries even under dual-stack generation policies,
/// matching the front end's behaviour of filtering the served answer to the
/// queried family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddressFamily {
    /// IPv4 (`A` queries).
    V4,
    /// IPv6 (`AAAA` queries).
    V6,
}

impl AddressFamily {
    /// The family an address query of `rtype` asks for; `None` for
    /// non-address types.
    pub fn of(rtype: RrType) -> Option<Self> {
        match rtype {
            RrType::A => Some(AddressFamily::V4),
            RrType::Aaaa => Some(AddressFamily::V6),
            _ => None,
        }
    }

    /// The record type serving this family.
    pub fn rtype(self) -> RrType {
        match self {
            AddressFamily::V4 => RrType::A,
            AddressFamily::V6 => RrType::Aaaa,
        }
    }
}

/// Cache key of a generated pool: the pool domain plus the queried family.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PoolKey {
    /// The pool domain the generation looked up.
    pub domain: Name,
    /// The address family the clients asked for.
    pub family: AddressFamily,
}

impl PoolKey {
    /// Creates a key.
    pub fn new(domain: Name, family: AddressFamily) -> Self {
        PoolKey { domain, family }
    }

    /// The key a DNS question maps to; `None` for non-address questions.
    pub fn for_question(question: &Question) -> Option<Self> {
        AddressFamily::of(question.rtype).map(|family| PoolKey::new(question.name.clone(), family))
    }
}

impl std::fmt::Display for PoolKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.domain, self.family.rtype())
    }
}

/// Configuration of a [`PoolCache`].
///
/// Non-exhaustive so future serving knobs aren't breaking changes: build
/// it from [`CacheConfig::default`] with the `with_*` methods, and gate
/// hand-rolled values through [`CacheConfig::validate`] (the epoch
/// constructor [`ServeConfig::new`](super::ServeConfig::new) does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheConfig {
    /// Total number of entries the cache may hold across all shards.
    pub capacity: usize,
    /// Number of shards the key space is hashed over.
    pub shards: usize,
    /// Lifetime of a successfully generated pool; doubles as the answer TTL
    /// budget the front end serves from.
    pub ttl: Ttl,
    /// How long past expiry an entry may still be served while a background
    /// refresh regenerates it. Zero disables stale-while-revalidate.
    pub stale_window: Duration,
    /// Lifetime of a cached generation *failure* (negative caching).
    /// Negative entries have no stale window.
    pub negative_ttl: Ttl,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 1024,
            shards: 8,
            ttl: Ttl::from_secs(60),
            stale_window: Duration::from_secs(60),
            negative_ttl: Ttl::from_secs(5),
        }
    }
}

impl CacheConfig {
    /// Sets the capacity, returning `self` for chaining.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the shard count, returning `self` for chaining.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the pool TTL, returning `self` for chaining.
    pub fn with_ttl(mut self, ttl: impl Into<Ttl>) -> Self {
        self.ttl = ttl.into();
        self
    }

    /// Sets the stale window, returning `self` for chaining.
    pub fn with_stale_window(mut self, window: Duration) -> Self {
        self.stale_window = window;
        self
    }

    /// Sets the negative TTL, returning `self` for chaining.
    pub fn with_negative_ttl(mut self, ttl: impl Into<Ttl>) -> Self {
        self.negative_ttl = ttl.into();
        self
    }

    /// Rejects configurations that would misbehave at runtime: a cache
    /// with zero shards or zero capacity cannot hold a single entry.
    /// ([`PoolCache::new`] historically clamps both to 1; validated
    /// construction through [`ServeConfig::new`](super::ServeConfig::new)
    /// errors instead.)
    ///
    /// # Errors
    ///
    /// [`ConfigError::Zero`] naming the first zero field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::Zero("shards"));
        }
        if self.capacity == 0 {
            return Err(ConfigError::Zero("capacity"));
        }
        Ok(())
    }
}

/// A cached generation outcome handed back by [`PoolCache::get`].
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPool {
    /// The generation outcome: a report, or the error string of a failed
    /// generation (negative entry).
    pub value: Result<GenerationReport, String>,
    /// When the generation that produced this entry completed.
    pub generated_at: SimInstant,
    /// When the entry stops being fresh.
    pub expires_at: SimInstant,
}

impl CachedPool {
    /// The fresh lifetime remaining at `now` (zero once expired) — what a
    /// TTL-decrementing front end serves.
    pub fn remaining(&self, now: SimInstant) -> Ttl {
        Ttl::from_duration(self.expires_at.saturating_duration_since(now))
    }
}

/// Liveness of a probed cache entry at a given instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Within its TTL: served directly.
    Fresh,
    /// Past its TTL but within the stale window: served while a refresh
    /// regenerates it (successful generations only).
    Stale,
    /// Past every serving window; lingering until purged or evicted.
    Dead,
}

/// Diagnostic view of one cache entry, produced by [`PoolCache::probe`].
///
/// Invariant monitors (e.g. the `sdoh-chaos` campaign runner) use probes to
/// assert that the cache never serves a pool older than TTL plus the stale
/// window: every serve must be explainable by an entry whose `state` allows
/// it at the probed instant.
#[derive(Debug, Clone)]
pub struct CacheEntryProbe {
    /// The entry's cache key.
    pub key: PoolKey,
    /// `true` for a cached generation *failure* (negative entry).
    pub negative: bool,
    /// Time since the entry was generated.
    pub age: Duration,
    /// TTL budget left before expiry (zero once expired).
    pub remaining: Ttl,
    /// Whether the entry is fresh, stale-but-servable, or dead.
    pub state: EntryState,
}

/// Outcome of a cache lookup at a given instant.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// The entry is within its TTL.
    Fresh(CachedPool),
    /// The entry is past its TTL but within the stale window: serve it,
    /// then refresh it. Only successful generations go stale; expired
    /// negative entries are misses.
    Stale(CachedPool),
    /// No usable entry.
    Miss,
}

impl CacheLookup {
    /// Returns `true` for [`CacheLookup::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, CacheLookup::Miss)
    }
}

/// Operational counters of a [`PoolCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups answered from a fresh entry.
    pub hits: u64,
    /// Lookups answered from a stale entry (within the stale window).
    pub stale_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room (LRU within the shard).
    pub evictions: u64,
    /// Entries dropped because they were expired beyond use.
    pub expirations: u64,
}

impl CacheMetrics {
    /// Adds `other`'s counters into `self` — aggregating the caches of
    /// several serving shards into one fleet-wide view.
    pub fn absorb(&mut self, other: &CacheMetrics) {
        self.hits += other.hits;
        self.stale_hits += other.stale_hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.expirations += other.expirations;
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: Result<GenerationReport, String>,
    generated_at: SimInstant,
    expires_at: SimInstant,
    /// Monotone access stamp for LRU eviction.
    last_used: u64,
}

impl Entry {
    /// The instant past which the entry serves no purpose under the
    /// **current** config: successful generations may still be served
    /// through the stale window, negative entries die at expiry.
    ///
    /// Stale serving is bounded both by the stamped expiry plus the
    /// current stale window and by the current `ttl + stale_window`
    /// horizon measured from generation. For a constant config the two
    /// bounds coincide (entries are stamped `generated_at + ttl`); across
    /// a config-epoch change the cap guarantees nothing is ever served
    /// older than the **maximum** of the old and new horizons.
    fn keep_until(&self, config: &CacheConfig) -> SimInstant {
        if self.value.is_ok() {
            let by_stamp = self.expires_at.saturating_add(config.stale_window);
            let by_horizon = self
                .generated_at
                .saturating_add(config.ttl.as_duration() + config.stale_window);
            by_stamp.min(by_horizon)
        } else {
            self.expires_at
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<PoolKey, Entry>,
}

/// The sharded, LRU-bounded, TTL- and stale-window-aware pool cache.
///
/// See the module documentation for the design.
#[derive(Debug)]
pub struct PoolCache {
    config: CacheConfig,
    shards: Vec<Shard>,
    /// The clamped total bound; never exceeded.
    capacity: usize,
    /// Per-shard ceiling bounding the worst-case skew of the key hash.
    per_shard_capacity: usize,
    tick: u64,
    metrics: CacheMetrics,
}

impl PoolCache {
    /// Creates a cache from a configuration (capacity and shard count are
    /// clamped to at least 1).
    // sdoh-lint: allow(hot-path-purity, "construction happens once, before serving starts")
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let capacity = config.capacity.max(1);
        PoolCache {
            config,
            shards: (0..shards).map(|_| Shard::default()).collect(),
            capacity,
            per_shard_capacity: capacity.div_ceil(shards),
            tick: 0,
            metrics: CacheMetrics::default(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of entries currently stored across all shards (including
    /// entries that have expired but not yet been purged).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Returns `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards the key space is hashed over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot of the operational counters.
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics
    }

    fn shard_index(&self, key: &PoolKey) -> usize {
        // DefaultHasher with default keys is deterministic within and
        // across runs, keeping the simulation reproducible from its seed.
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        // sdoh-lint: allow(no-narrowing-cast, "hash truncation only perturbs shard choice; the modulo keeps the index in range")
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Looks up `key` at virtual time `now`.
    ///
    /// A fresh entry is a hit; an expired *successful* entry within the
    /// stale window is returned as [`CacheLookup::Stale`] (the caller
    /// serves it and schedules a refresh); anything older — and any expired
    /// negative entry — is dropped and reported as a miss.
    // sdoh-lint: allow(no-panic, "shard_index is a modulo over shards.len(), always in range")
    pub fn get(&mut self, key: &PoolKey, now: SimInstant) -> CacheLookup {
        self.tick += 1;
        let tick = self.tick;
        let config = self.config;
        let shard = self.shard_index(key);
        let entry = match self.shards[shard].entries.get_mut(key) {
            Some(entry) => entry,
            None => {
                self.metrics.misses += 1;
                return CacheLookup::Miss;
            }
        };
        let cached = CachedPool {
            value: entry.value.clone(),
            generated_at: entry.generated_at,
            expires_at: entry.expires_at,
        };
        if now < entry.expires_at {
            entry.last_used = tick;
            self.metrics.hits += 1;
            return CacheLookup::Fresh(cached);
        }
        let serve_stale = entry.value.is_ok() && now < entry.keep_until(&config);
        if serve_stale {
            entry.last_used = tick;
            self.metrics.stale_hits += 1;
            CacheLookup::Stale(cached)
        } else {
            self.shards[shard].entries.remove(key);
            self.metrics.expirations += 1;
            self.metrics.misses += 1;
            CacheLookup::Miss
        }
    }

    /// Inspects the entry for `key` without touching LRU state or counters
    /// (diagnostics and tests).
    // sdoh-lint: allow(no-panic, "shard_index is a modulo over shards.len(), always in range")
    pub fn peek(&self, key: &PoolKey) -> Option<CachedPool> {
        let shard = self.shard_index(key);
        self.shards[shard].entries.get(key).map(|entry| CachedPool {
            value: entry.value.clone(),
            generated_at: entry.generated_at,
            expires_at: entry.expires_at,
        })
    }

    /// Probes every entry across all shards at instant `now`, without
    /// touching LRU state or counters.
    ///
    /// The result is sorted by key (domain, then family) so that a probe of
    /// the same cache state is byte-identical across processes — shard maps
    /// iterate in a process-random order. This is the invariant surface
    /// chaos campaigns monitor after every step.
    // sdoh-lint: allow(hot-path-purity, "probe is the chaos-monitor surface, never the serving path")
    pub fn probe(&self, now: SimInstant) -> Vec<CacheEntryProbe> {
        let config = self.config;
        let mut probes: Vec<CacheEntryProbe> = self
            .shards
            .iter()
            .flat_map(|shard| shard.entries.iter())
            .map(|(key, entry)| {
                let state = if now < entry.expires_at {
                    EntryState::Fresh
                } else if entry.value.is_ok() && now < entry.keep_until(&config) {
                    EntryState::Stale
                } else {
                    EntryState::Dead
                };
                CacheEntryProbe {
                    key: key.clone(),
                    negative: entry.value.is_err(),
                    age: now.saturating_duration_since(entry.generated_at),
                    remaining: Ttl::from_duration(entry.expires_at.saturating_duration_since(now)),
                    state,
                }
            })
            .collect();
        probes.sort_by_key(|p| p.key.to_string());
        probes
    }

    /// Stores a generation outcome for `key` produced at `now`. Successful
    /// generations live for the configured TTL, failures for the negative
    /// TTL; a zero lifetime skips insertion entirely.
    // sdoh-lint: allow(no-panic, "shard_index is a modulo over shards.len(), always in range")
    pub fn insert(
        &mut self,
        key: PoolKey,
        value: Result<GenerationReport, String>,
        now: SimInstant,
    ) {
        let lifetime = match value {
            Ok(_) => self.config.ttl,
            Err(_) => self.config.negative_ttl,
        };
        if lifetime.is_zero() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let shard_index = self.shard_index(&key);
        if !self.shards[shard_index].entries.contains_key(&key) {
            // The total bound holds exactly; the per-shard ceiling
            // additionally bounds the worst-case skew of the key hash.
            if self.len() >= self.capacity {
                self.evict_one(None, now);
            } else if self.shards[shard_index].entries.len() >= self.per_shard_capacity {
                self.evict_one(Some(shard_index), now);
            }
        }
        self.shards[shard_index].entries.insert(
            key,
            Entry {
                value,
                generated_at: now,
                expires_at: now.saturating_add(lifetime.as_duration()),
                last_used: tick,
            },
        );
        self.metrics.insertions += 1;
    }

    /// Evicts one entry from `scope` (one shard, or the whole cache),
    /// preferring an entry already past any use over the least recently
    /// used one.
    // sdoh-lint: allow(hot-path-purity, "eviction scans run only when the cache is full; amortized cold")
    // sdoh-lint: allow(no-panic, "scope and victim shards come from 0..shards.len()")
    fn evict_one(&mut self, scope: Option<usize>, now: SimInstant) {
        let config = self.config;
        let shards: Vec<usize> = match scope {
            Some(shard) => vec![shard],
            None => (0..self.shards.len()).collect(),
        };
        let mut dead: Option<(usize, PoolKey)> = None;
        let mut lru: Option<(u64, usize, PoolKey)> = None;
        'shards: for &shard in &shards {
            for (key, entry) in &self.shards[shard].entries {
                if now >= entry.keep_until(&config) {
                    dead = Some((shard, key.clone()));
                    break 'shards;
                }
                if lru.as_ref().is_none_or(|(t, _, _)| entry.last_used < *t) {
                    lru = Some((entry.last_used, shard, key.clone()));
                }
            }
        }
        let victim = dead.or_else(|| lru.map(|(_, shard, key)| (shard, key)));
        if let Some((shard, key)) = victim {
            self.shards[shard].entries.remove(&key);
            self.metrics.evictions += 1;
        }
    }

    /// Adopts a new config epoch's knobs **in place**: TTL, stale window,
    /// negative TTL and capacity change for every subsequent operation
    /// while each cached entry keeps the expiry it was stamped with at
    /// insert (stale serving of old entries is additionally capped by the
    /// new `ttl + stale_window` horizon — see `Entry::keep_until`).
    ///
    /// The shard count is structural (entries were hashed onto shards at
    /// insert), so `config.shards` is overridden with the built value.
    /// When the capacity shrank, surplus entries are evicted immediately,
    /// dead entries first.
    pub fn apply_config(&mut self, mut config: CacheConfig, now: SimInstant) {
        config.shards = self.shards.len();
        self.capacity = config.capacity.max(1);
        self.per_shard_capacity = self.capacity.div_ceil(self.shards.len());
        self.config = config;
        while self.len() > self.capacity {
            self.evict_one(None, now);
        }
    }

    /// Removes and returns every entry whose key matches `predicate`,
    /// with its generation/expiry stamps intact — the extraction half of
    /// a shard-rescale cache handoff. Results are sorted by key so a
    /// handoff is deterministic across processes. Touches neither LRU
    /// state nor the lookup counters.
    // sdoh-lint: allow(hot-path-purity, "rescale handoff runs on the control plane, not per query")
    pub fn extract_matching(
        &mut self,
        mut predicate: impl FnMut(&PoolKey) -> bool,
    ) -> Vec<(PoolKey, CachedPool)> {
        let mut extracted = Vec::new();
        for shard in &mut self.shards {
            let keys: Vec<PoolKey> = shard
                .entries
                .keys()
                .filter(|key| predicate(key))
                .cloned()
                .collect();
            for key in keys {
                if let Some(entry) = shard.entries.remove(&key) {
                    extracted.push((
                        key,
                        CachedPool {
                            value: entry.value,
                            generated_at: entry.generated_at,
                            expires_at: entry.expires_at,
                        },
                    ));
                }
            }
        }
        extracted.sort_by_key(|(key, _)| key.to_string());
        extracted
    }

    /// Installs an entry extracted from another cache, **preserving** its
    /// original generation and expiry stamps — the receiving half of a
    /// shard-rescale handoff. Returns `false` (dropping the entry) when
    /// it is already past every serving window at `now`, or when an
    /// existing entry for the key is at least as fresh — so a key is
    /// never owned by two entries and a handoff never clobbers a newer
    /// generation. Capacity bounds are enforced exactly as on insert.
    // sdoh-lint: allow(no-panic, "shard_index is a modulo over shards.len(), always in range")
    pub fn install(&mut self, key: PoolKey, cached: CachedPool, now: SimInstant) -> bool {
        self.tick += 1;
        let entry = Entry {
            value: cached.value,
            generated_at: cached.generated_at,
            expires_at: cached.expires_at,
            last_used: self.tick,
        };
        if now >= entry.keep_until(&self.config) {
            return false;
        }
        let shard_index = self.shard_index(&key);
        match self.shards[shard_index].entries.get(&key) {
            Some(existing) if existing.expires_at >= entry.expires_at => return false,
            Some(_) => {}
            None => {
                if self.len() >= self.capacity {
                    self.evict_one(None, now);
                } else if self.shards[shard_index].entries.len() >= self.per_shard_capacity {
                    self.evict_one(Some(shard_index), now);
                }
            }
        }
        self.shards[shard_index].entries.insert(key, entry);
        self.metrics.insertions += 1;
        true
    }

    /// Removes the entry for `key`, returning whether one existed.
    // sdoh-lint: allow(no-panic, "shard_index is a modulo over shards.len(), always in range")
    pub fn invalidate(&mut self, key: &PoolKey) -> bool {
        let shard = self.shard_index(key);
        self.shards[shard].entries.remove(key).is_some()
    }

    /// Drops every entry that is past its stale window at `now`; returns
    /// how many were dropped.
    pub fn purge_expired(&mut self, now: SimInstant) -> usize {
        let config = self.config;
        let mut dropped = 0;
        for shard in &mut self.shards {
            let before = shard.entries.len();
            shard.entries.retain(|_, e| now < e.keep_until(&config));
            dropped += before - shard.entries.len();
        }
        self.metrics.expirations += u64::try_from(dropped).unwrap_or(u64::MAX);
        dropped
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CombinationMode;
    use crate::pool::AddressPool;

    fn key(domain: &str) -> PoolKey {
        PoolKey::new(domain.parse().unwrap(), AddressFamily::V4)
    }

    fn report(last: u8) -> GenerationReport {
        let mut pool = AddressPool::new();
        pool.push(format!("203.0.113.{last}").parse().unwrap(), "r1");
        GenerationReport {
            pool,
            mode: CombinationMode::TruncateAndCombine,
            sources: vec![("r1".into(), crate::generator::SourceOutcome::Answered(1))],
            truncate_lengths: vec![("A".into(), 1)],
        }
    }

    fn at(secs: u64) -> SimInstant {
        SimInstant::from_nanos(secs * 1_000_000_000)
    }

    fn test_config() -> CacheConfig {
        CacheConfig::default()
            .with_ttl(Ttl::from_secs(60))
            .with_stale_window(Duration::from_secs(30))
            .with_negative_ttl(Ttl::from_secs(5))
    }

    #[test]
    fn fresh_then_stale_then_miss() {
        let mut cache = PoolCache::new(test_config());
        cache.insert(key("pool.ntp.org"), Ok(report(1)), at(0));

        match cache.get(&key("pool.ntp.org"), at(59)) {
            CacheLookup::Fresh(hit) => {
                assert_eq!(hit.value.as_ref().unwrap().pool.len(), 1);
                assert_eq!(hit.remaining(at(59)), Ttl::from_secs(1));
            }
            other => panic!("expected fresh, got {other:?}"),
        }
        match cache.get(&key("pool.ntp.org"), at(75)) {
            CacheLookup::Stale(hit) => {
                assert_eq!(hit.generated_at, at(0));
                assert_eq!(hit.remaining(at(75)), Ttl::ZERO);
            }
            other => panic!("expected stale, got {other:?}"),
        }
        assert!(cache.get(&key("pool.ntp.org"), at(91)).is_miss());
        assert!(cache.is_empty(), "expired entry was dropped");
        let metrics = cache.metrics();
        assert_eq!(metrics.hits, 1);
        assert_eq!(metrics.stale_hits, 1);
        assert_eq!(metrics.misses, 1);
        assert_eq!(metrics.expirations, 1);
    }

    #[test]
    fn probe_reports_age_state_and_sorted_keys() {
        let mut cache = PoolCache::new(test_config());
        cache.insert(key("b.pool.test"), Ok(report(1)), at(0));
        cache.insert(key("a.pool.test"), Ok(report(2)), at(10));
        cache.insert(key("c.pool.test"), Err("fan-out failed".into()), at(70));

        // At t=74 (ttl 60, stale window 30): "a" (generated at 10) and "b"
        // (generated at 0) are past their TTL but inside the stale window;
        // the negative "c" still has a second of its 5 s negative TTL left.
        let before = cache.metrics();
        let probes = cache.probe(at(74));
        assert_eq!(probes.len(), 3);
        let names: Vec<String> = probes.iter().map(|p| p.key.to_string()).collect();
        assert_eq!(
            names,
            vec!["a.pool.test./A", "b.pool.test./A", "c.pool.test./A"],
            "probes are sorted by key for cross-process determinism"
        );
        assert_eq!(probes[0].state, EntryState::Stale);
        assert_eq!(probes[0].age, Duration::from_secs(64));
        assert_eq!(probes[0].remaining, Ttl::ZERO);
        assert!(!probes[0].negative);
        assert_eq!(probes[1].state, EntryState::Stale);
        assert_eq!(probes[1].age, Duration::from_secs(74));
        assert_eq!(probes[2].state, EntryState::Fresh);
        assert!(probes[2].negative);
        assert_eq!(probes[2].remaining, Ttl::from_secs(1));

        // Past every window, everything is dead (negative entries have no
        // stale window).
        let probes = cache.probe(at(200));
        assert!(probes.iter().all(|p| p.state == EntryState::Dead));

        // Probing touches neither LRU state nor counters.
        assert_eq!(cache.metrics(), before);
    }

    #[test]
    fn negative_entries_have_no_stale_window() {
        let mut cache = PoolCache::new(test_config());
        cache.insert(key("dead.test"), Err("not enough responses".into()), at(0));
        match cache.get(&key("dead.test"), at(4)) {
            CacheLookup::Fresh(hit) => assert!(hit.value.is_err()),
            other => panic!("expected fresh negative, got {other:?}"),
        }
        // One second past the negative TTL: a miss, not a stale serve.
        assert!(cache.get(&key("dead.test"), at(6)).is_miss());
    }

    #[test]
    fn families_are_distinct_keys() {
        let mut cache = PoolCache::new(test_config());
        let v4 = PoolKey::new("dual.test".parse().unwrap(), AddressFamily::V4);
        let v6 = PoolKey::new("dual.test".parse().unwrap(), AddressFamily::V6);
        cache.insert(v4.clone(), Ok(report(1)), at(0));
        assert!(!cache.get(&v4, at(1)).is_miss());
        assert!(cache.get(&v6, at(1)).is_miss());
        assert_eq!(format!("{v4}"), "dual.test./A");
    }

    #[test]
    fn lru_eviction_keeps_the_recently_used_entry() {
        // One shard so the two keys compete for the same capacity.
        let config = test_config().with_capacity(2).with_shards(1);
        let mut cache = PoolCache::new(config);
        cache.insert(key("a.test"), Ok(report(1)), at(0));
        cache.insert(key("b.test"), Ok(report(2)), at(1));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(!cache.get(&key("a.test"), at(2)).is_miss());
        cache.insert(key("c.test"), Ok(report(3)), at(3));
        assert_eq!(cache.len(), 2);
        assert!(!cache.get(&key("a.test"), at(4)).is_miss());
        assert!(cache.get(&key("b.test"), at(4)).is_miss());
        assert_eq!(cache.metrics().evictions, 1);
    }

    #[test]
    fn eviction_prefers_dead_entries_over_lru() {
        let config = test_config().with_capacity(2).with_shards(1);
        let mut cache = PoolCache::new(config);
        // `live` carries the oldest LRU stamp, but `old` (inserted at t=0)
        // is past TTL + stale window by t=120: eviction must pick the dead
        // entry over the least recently used one.
        cache.insert(key("live.test"), Ok(report(2)), at(100));
        cache.insert(key("old.test"), Ok(report(1)), at(0));
        cache.insert(key("new.test"), Ok(report(3)), at(120));
        assert!(cache.get(&key("old.test"), at(120)).is_miss());
        assert!(!cache.get(&key("live.test"), at(120)).is_miss());
        assert!(!cache.get(&key("new.test"), at(120)).is_miss());
        assert_eq!(cache.metrics().evictions, 1);
    }

    #[test]
    fn expired_negative_entries_are_preferred_eviction_victims() {
        // A negative entry has no stale window: once past its (short) TTL
        // it is unusable and must be evicted before any live entry, even
        // though the dead-check for positive entries uses TTL + stale.
        let config = test_config().with_capacity(2).with_shards(1);
        let mut cache = PoolCache::new(config);
        cache.insert(key("dead.test"), Err("boom".into()), at(0)); // unusable after t=5
        cache.insert(key("live.test"), Ok(report(1)), at(6));
        cache.insert(key("new.test"), Ok(report(2)), at(6));
        assert!(!cache.get(&key("live.test"), at(7)).is_miss());
        assert!(!cache.get(&key("new.test"), at(7)).is_miss());
        assert!(cache.get(&key("dead.test"), at(7)).is_miss());
    }

    #[test]
    fn total_capacity_is_an_exact_bound_across_shards() {
        // div_ceil(10, 8) = 2 per shard would allow up to 16 entries; the
        // documented total bound must still hold exactly.
        let config = test_config().with_capacity(10).with_shards(8);
        let mut cache = PoolCache::new(config);
        for i in 0..50 {
            cache.insert(key(&format!("host{i}.test")), Ok(report(1)), at(0));
            assert!(
                cache.len() <= 10,
                "{} entries after insert {i}",
                cache.len()
            );
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.metrics().evictions, 40);
    }

    #[test]
    fn sharding_distributes_and_len_aggregates() {
        let config = test_config().with_capacity(64).with_shards(4);
        let mut cache = PoolCache::new(config);
        for i in 0..32 {
            cache.insert(key(&format!("host{i}.test")), Ok(report(1)), at(0));
        }
        assert_eq!(cache.len(), 32);
        assert_eq!(cache.shard_count(), 4);
        let populated = (0..4)
            .filter(|&s| !cache.shards[s].entries.is_empty())
            .count();
        assert!(populated > 1, "keys spread over more than one shard");
        assert_eq!(cache.purge_expired(at(1_000)), 32);
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_capacity_and_shards_are_clamped() {
        let config = test_config().with_capacity(0).with_shards(0);
        let mut cache = PoolCache::new(config);
        cache.insert(key("a.test"), Ok(report(1)), at(0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.shard_count(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut cache = PoolCache::new(test_config());
        cache.insert(key("a.test"), Ok(report(1)), at(0));
        assert!(cache.peek(&key("a.test")).is_some());
        assert!(cache.invalidate(&key("a.test")));
        assert!(!cache.invalidate(&key("a.test")));
        cache.insert(key("b.test"), Ok(report(2)), at(0));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_ttl_skips_insertion() {
        let mut cache = PoolCache::new(test_config().with_ttl(Ttl::ZERO));
        cache.insert(key("a.test"), Ok(report(1)), at(0));
        assert!(cache.is_empty());
        let mut cache = PoolCache::new(test_config().with_negative_ttl(Ttl::ZERO));
        cache.insert(key("a.test"), Err("boom".into()), at(0));
        assert!(cache.is_empty());
    }

    #[test]
    fn apply_config_retunes_knobs_without_touching_entries() {
        let mut cache = PoolCache::new(test_config());
        cache.insert(key("pool.ntp.org"), Ok(report(1)), at(0));
        let stamped = cache.peek(&key("pool.ntp.org")).unwrap().expires_at;

        // New epoch: longer stale window, same TTL. The entry keeps its
        // stamped expiry but the new stale window applies to it at once.
        cache.apply_config(
            test_config().with_stale_window(Duration::from_secs(90)),
            at(10),
        );
        assert_eq!(
            cache.peek(&key("pool.ntp.org")).unwrap().expires_at,
            stamped
        );
        match cache.get(&key("pool.ntp.org"), at(100)) {
            CacheLookup::Stale(_) => {}
            other => panic!("stale under the widened window, got {other:?}"),
        }
        // Shards are structural: the override never changes the count.
        cache.apply_config(test_config().with_shards(99), at(10));
        assert_eq!(cache.shard_count(), 8);
        assert_eq!(cache.config().shards, 8);
    }

    #[test]
    fn apply_config_shrinking_capacity_evicts_immediately() {
        let config = test_config().with_capacity(8).with_shards(1);
        let mut cache = PoolCache::new(config);
        for i in 0..8 {
            cache.insert(key(&format!("host{i}.test")), Ok(report(1)), at(0));
        }
        cache.apply_config(test_config().with_capacity(3).with_shards(1), at(1));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.metrics().evictions, 5);
        // And the new bound holds for subsequent inserts.
        cache.insert(key("extra.test"), Ok(report(2)), at(2));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn stale_serving_is_capped_by_the_new_horizon() {
        // Old epoch: ttl 60, stale 0. New epoch: ttl 1, stale 120. The
        // naive bound (stamped expiry + new stale) would allow serving an
        // old entry at age 180 — beyond BOTH epochs' ttl+stale horizons.
        // The horizon cap limits it to min(60, 1) + 120 = age 121.
        let mut cache = PoolCache::new(test_config().with_stale_window(Duration::ZERO));
        cache.insert(key("pool.ntp.org"), Ok(report(1)), at(0));
        cache.apply_config(
            test_config()
                .with_ttl(Ttl::from_secs(1))
                .with_stale_window(Duration::from_secs(120)),
            at(30),
        );
        match cache.get(&key("pool.ntp.org"), at(59)) {
            CacheLookup::Fresh(_) => {}
            other => panic!("still fresh by its stamp, got {other:?}"),
        }
        match cache.get(&key("pool.ntp.org"), at(100)) {
            CacheLookup::Stale(_) => {}
            other => panic!("within the capped window, got {other:?}"),
        }
        assert!(
            cache.get(&key("pool.ntp.org"), at(122)).is_miss(),
            "age 122 exceeds the max of the old (60) and new (121) horizons"
        );
    }

    #[test]
    fn extract_and_install_preserve_stamps() {
        let mut donor = PoolCache::new(test_config());
        donor.insert(key("a.test"), Ok(report(1)), at(5));
        donor.insert(key("b.test"), Ok(report(2)), at(10));
        donor.insert(key("dead.test"), Err("boom".into()), at(0));

        let moved = donor.extract_matching(|k| k.domain.to_string().starts_with('a'));
        assert_eq!(moved.len(), 1);
        assert_eq!(donor.len(), 2);

        let mut receiver = PoolCache::new(test_config());
        for (k, cached) in moved {
            assert!(receiver.install(k, cached, at(20)));
        }
        let adopted = receiver.peek(&key("a.test")).unwrap();
        assert_eq!(adopted.generated_at, at(5));
        assert_eq!(adopted.expires_at, at(65), "expiry stamp preserved");

        // Installing a dead entry is refused...
        let all = donor.extract_matching(|_| true);
        assert_eq!(all.len(), 2);
        assert!(donor.is_empty());
        let (dead_key, dead) = all
            .iter()
            .find(|(k, _)| k.domain.to_string().starts_with("dead"))
            .cloned()
            .unwrap();
        assert!(!receiver.install(dead_key.clone(), dead, at(20)));
        assert!(receiver.peek(&dead_key).is_none());

        // ...and so is clobbering an at-least-as-fresh existing entry.
        let stale_twin = CachedPool {
            value: Ok(report(9)),
            generated_at: at(0),
            expires_at: at(60),
        };
        assert!(!receiver.install(key("a.test"), stale_twin, at(20)));
        assert_eq!(receiver.peek(&key("a.test")).unwrap().expires_at, at(65));
    }

    #[test]
    fn validate_rejects_zero_structural_knobs() {
        assert_eq!(
            test_config().with_shards(0).validate(),
            Err(ConfigError::Zero("shards"))
        );
        assert_eq!(
            test_config().with_capacity(0).validate(),
            Err(ConfigError::Zero("capacity"))
        );
        assert_eq!(test_config().validate(), Ok(()));
    }

    #[test]
    fn for_question_maps_address_types_only() {
        let q = Question::new("pool.ntp.org".parse().unwrap(), RrType::A);
        assert_eq!(PoolKey::for_question(&q).unwrap().family, AddressFamily::V4);
        let q = Question::new("pool.ntp.org".parse().unwrap(), RrType::Aaaa);
        assert_eq!(PoolKey::for_question(&q).unwrap().family, AddressFamily::V6);
        let q = Question::new("pool.ntp.org".parse().unwrap(), RrType::Txt);
        assert!(PoolKey::for_question(&q).is_none());
        assert_eq!(AddressFamily::V4.rtype(), RrType::A);
        assert_eq!(AddressFamily::V6.rtype(), RrType::Aaaa);
    }
}
