//! Singleflight coalescing: concurrent misses for the same key share one
//! in-flight generation.
//!
//! When a burst of client queries for the same domain arrives at a cold (or
//! just-expired) cache, the naive front end launches one full distributed
//! fan-out per query — N resolver exchanges each, for work that produces
//! the identical pool. [`Singleflight`] is the registry that collapses the
//! burst: the first waiter for a key becomes the **leader** and owns the
//! flight; every later waiter for the same key is **coalesced** onto the
//! leader's flight and is answered from its result.
//!
//! The registry is pure bookkeeping (no I/O, no clock): the serving session
//! uses it to decide how many [`PoolSession`](crate::PoolSession)s a batch
//! of queries actually needs.

use std::collections::HashMap;
use std::hash::Hash;

/// How a waiter joined the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightJoin {
    /// First waiter for the key: a new flight was opened at this index.
    Leader(usize),
    /// The key already has a flight in progress; the waiter was attached to
    /// the flight at this index.
    Coalesced(usize),
}

impl FlightJoin {
    /// Index of the flight the waiter ended up on.
    pub fn flight(self) -> usize {
        match self {
            FlightJoin::Leader(index) | FlightJoin::Coalesced(index) => index,
        }
    }
}

/// The coalescing registry: maps keys to flights and flights to waiters.
#[derive(Debug, Clone)]
pub struct Singleflight<K, W = usize> {
    flights: Vec<(K, Vec<W>)>,
    index: HashMap<K, usize>,
}

impl<K: Hash + Eq + Clone, W> Default for Singleflight<K, W> {
    fn default() -> Self {
        Singleflight {
            flights: Vec::new(), // sdoh-lint: allow(hot-path-purity, "an empty Vec::new never allocates")
            index: HashMap::new(),
        }
    }
}

impl<K: Hash + Eq + Clone, W> Singleflight<K, W> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Singleflight::default()
    }

    /// Attaches `waiter` to the flight for `key`, opening one if this is
    /// the first waiter.
    // sdoh-lint: allow(no-panic, "the index map only stores positions of live flights entries")
    // sdoh-lint: allow(hot-path-purity, "waiter lists grow once per coalesced miss, not per query")
    pub fn join(&mut self, key: K, waiter: W) -> FlightJoin {
        match self.index.get(&key) {
            Some(&flight) => {
                self.flights[flight].1.push(waiter);
                FlightJoin::Coalesced(flight)
            }
            None => {
                let flight = self.flights.len();
                self.index.insert(key.clone(), flight);
                self.flights.push((key, vec![waiter]));
                FlightJoin::Leader(flight)
            }
        }
    }

    /// Number of distinct flights (unique keys).
    pub fn len(&self) -> usize {
        self.flights.len()
    }

    /// Returns `true` when no waiter has joined.
    pub fn is_empty(&self) -> bool {
        self.flights.is_empty()
    }

    /// Number of waiters that were coalesced onto an existing flight (the
    /// generations singleflight saved).
    pub fn coalesced(&self) -> u64 {
        self.flights
            .iter()
            .map(|(_, waiters)| u64::try_from(waiters.len().saturating_sub(1)).unwrap_or(u64::MAX))
            .sum()
    }

    /// The flights in creation order: each key with its waiters.
    pub fn flights(&self) -> &[(K, Vec<W>)] {
        &self.flights
    }

    /// Consumes the registry, yielding each key with its waiters.
    pub fn into_flights(self) -> Vec<(K, Vec<W>)> {
        self.flights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_waiter_leads_later_waiters_coalesce() {
        let mut flights: Singleflight<&str> = Singleflight::new();
        assert_eq!(flights.join("a", 0), FlightJoin::Leader(0));
        assert_eq!(flights.join("b", 1), FlightJoin::Leader(1));
        assert_eq!(flights.join("a", 2), FlightJoin::Coalesced(0));
        assert_eq!(flights.join("a", 3), FlightJoin::Coalesced(0));
        assert_eq!(flights.len(), 2);
        assert_eq!(flights.coalesced(), 2);
        assert_eq!(flights.join("a", 4).flight(), 0);

        let flights = flights.into_flights();
        assert_eq!(flights[0].0, "a");
        assert_eq!(flights[0].1, vec![0, 2, 3, 4]);
        assert_eq!(flights[1].1, vec![1]);
    }

    #[test]
    fn empty_registry() {
        let flights: Singleflight<u32> = Singleflight::new();
        assert!(flights.is_empty());
        assert_eq!(flights.len(), 0);
        assert_eq!(flights.coalesced(), 0);
        assert!(flights.flights().is_empty());
    }
}
