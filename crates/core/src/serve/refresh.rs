//! Stale-while-revalidate refresh scheduling.
//!
//! When the cache serves a stale entry, the client gets its answer
//! immediately — the cost of regeneration is moved off the query path onto
//! a **refresh task**. [`RefreshScheduler`] is the sans-IO queue of those
//! tasks: serving code [`schedule`](RefreshScheduler::schedule)s a key, a
//! driver asks [`next_due`](RefreshScheduler::next_due) how long it may
//! sleep (the `WaitUntil` instant that composes with the simulator's
//! virtual clock) and [`take_due`](RefreshScheduler::take_due)s the keys
//! whose deadline has passed to regenerate them in the background.
//!
//! Scheduling is idempotent per key: a key that is already queued keeps its
//! earliest deadline, so a stampede of stale hits produces one refresh.

use sdoh_netsim::SimInstant;

use super::cache::PoolKey;

/// One queued refresh: regenerate `key` at (or after) `due`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshTask {
    /// The cache key to regenerate.
    pub key: PoolKey,
    /// The virtual instant from which the refresh may run.
    pub due: SimInstant,
}

/// The sans-IO refresh queue. See the module documentation.
#[derive(Debug, Clone, Default)]
pub struct RefreshScheduler {
    pending: Vec<RefreshTask>,
    scheduled_total: u64,
}

impl RefreshScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        RefreshScheduler::default()
    }

    /// Queues a refresh of `key` at `due`. Returns `true` when the key was
    /// newly queued; a key already pending keeps the earlier of the two
    /// deadlines and returns `false`.
    pub fn schedule(&mut self, key: PoolKey, due: SimInstant) -> bool {
        if let Some(task) = self.pending.iter_mut().find(|t| t.key == key) {
            if due < task.due {
                task.due = due;
            }
            return false;
        }
        self.pending.push(RefreshTask { key, due });
        self.scheduled_total += 1;
        true
    }

    /// The earliest pending deadline — how long a driver may wait before
    /// pumping refreshes (`None` when the queue is empty).
    pub fn next_due(&self) -> Option<SimInstant> {
        self.pending.iter().map(|t| t.due).min()
    }

    /// Removes and returns every key whose deadline is at or before `now`,
    /// in scheduling order.
    pub fn take_due(&mut self, now: SimInstant) -> Vec<PoolKey> {
        let mut due = Vec::new(); // sdoh-lint: allow(hot-path-purity, "an empty Vec::new never allocates; it only grows when refreshes are due")
        self.pending.retain(|task| {
            if task.due <= now {
                due.push(task.key.clone());
                false
            } else {
                true
            }
        });
        due
    }

    /// Drops a pending refresh for `key`, returning whether one existed
    /// (e.g. after the entry was invalidated).
    pub fn cancel(&mut self, key: &PoolKey) -> bool {
        let before = self.pending.len();
        self.pending.retain(|t| t.key != *key);
        before != self.pending.len()
    }

    /// Number of refreshes currently queued.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total number of distinct refreshes ever queued.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::cache::AddressFamily;

    fn key(domain: &str) -> PoolKey {
        PoolKey::new(domain.parse().unwrap(), AddressFamily::V4)
    }

    fn at(secs: u64) -> SimInstant {
        SimInstant::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn schedule_dedupes_and_keeps_earliest_deadline() {
        let mut scheduler = RefreshScheduler::new();
        assert!(scheduler.schedule(key("a.test"), at(10)));
        assert!(!scheduler.schedule(key("a.test"), at(5)));
        assert!(!scheduler.schedule(key("a.test"), at(20)));
        assert_eq!(scheduler.len(), 1);
        assert_eq!(scheduler.scheduled_total(), 1);
        assert_eq!(scheduler.next_due(), Some(at(5)));
    }

    #[test]
    fn take_due_returns_only_ripe_tasks() {
        let mut scheduler = RefreshScheduler::new();
        scheduler.schedule(key("a.test"), at(10));
        scheduler.schedule(key("b.test"), at(20));
        scheduler.schedule(key("c.test"), at(15));
        assert!(scheduler.take_due(at(9)).is_empty());
        let due = scheduler.take_due(at(15));
        assert_eq!(due, vec![key("a.test"), key("c.test")]);
        assert_eq!(scheduler.len(), 1);
        assert_eq!(scheduler.next_due(), Some(at(20)));
        assert_eq!(scheduler.take_due(at(100)), vec![key("b.test")]);
        assert!(scheduler.is_empty());
        assert_eq!(scheduler.next_due(), None);
    }

    #[test]
    fn cancel_removes_pending_tasks() {
        let mut scheduler = RefreshScheduler::new();
        scheduler.schedule(key("a.test"), at(10));
        assert!(scheduler.cancel(&key("a.test")));
        assert!(!scheduler.cancel(&key("a.test")));
        assert!(scheduler.is_empty());
    }
}
