//! The pool-serving subsystem: cache, coalescing and background refresh.
//!
//! Secure pool generation is expensive by design — every lookup fans out to
//! N DoH resolvers and cross-validates the answers — and the plain
//! [`SecurePoolResolver`](crate::SecurePoolResolver) front end pays that
//! cost for **every client query**. This module adds the serving layer that
//! makes the mechanism scale to heavy client traffic:
//!
//! * [`PoolCache`] — a **sharded TTL cache** of [`GenerationReport`]s keyed
//!   by `(domain, address family)`, with LRU eviction inside capacity
//!   bounds, negative caching of generation failures and a stale window,
//! * [`Singleflight`] — **coalescing** so concurrent misses for the same
//!   key share one in-flight generation instead of each launching its own
//!   fan-out,
//! * [`RefreshScheduler`] + the stale window — **stale-while-revalidate**:
//!   an expired entry is served immediately while a background refresh
//!   regenerates the pool off the query path,
//! * [`ServeSession`] — the sans-IO session driving the generations of a
//!   whole serving batch as one overlapped fan-out (scheduled via
//!   `poll()`/`WaitUntil`, so it composes with the simulator's virtual
//!   clock),
//! * [`CachingPoolResolver`] — the `QueryHandler` front end tying it all
//!   together, with [`ServeMetrics`] (hits, misses, coalesced waiters,
//!   stale serves, refreshes, …).
//!
//! Serving cost drops from one generation per query to one generation per
//! `(domain, TTL window)` while every served answer still comes from a real
//! generation, preserving the paper's benign-fraction guarantee.
//!
//! [`GenerationReport`]: crate::GenerationReport

mod cache;
mod epoch;
mod refresh;
mod resolver;
mod samples;
mod session;
mod singleflight;

pub use cache::{
    AddressFamily, CacheConfig, CacheEntryProbe, CacheLookup, CacheMetrics, CachedPool, EntryState,
    PoolCache, PoolKey,
};
pub use epoch::{ConfigError, ServeConfig};
pub use refresh::{RefreshScheduler, RefreshTask};
pub use resolver::{CachingPoolResolver, ResolvedPool, ServeMetrics, ServeSnapshot};
pub use samples::{
    snapshot_samples, APP_METRIC_HELP, METRIC_CONFIG_EPOCH, METRIC_DROPPED_QUERIES,
    METRIC_INVARIANT_VIOLATIONS, METRIC_SERVE_LATENCY, METRIC_SHARDS, METRIC_SHARD_ACKED_EPOCH,
    METRIC_TCP_QUERIES, METRIC_TIMESYNC_FAILURES, METRIC_TIMESYNC_POOL_REFRESHES,
    METRIC_TIMESYNC_SYNCS, METRIC_TRUNCATED_RESPONSES, METRIC_UDP_QUERIES,
    METRIC_UNRESPONSIVE_SHARDS, RUNTIME_METRIC_HELP, SERVE_COUNTER_HELP, SERVE_GAUGE_HELP,
};
pub use session::{
    drive_serve, FlightOutcome, ServeAction, ServeEvent, ServeSession, ServeTransactionId,
    ServeTransmit,
};
pub use singleflight::{FlightJoin, Singleflight};
