//! The caching DNS front end: [`CachingPoolResolver`].
//!
//! [`SecurePoolResolver`](crate::SecurePoolResolver) runs a full
//! distributed generation for **every** client query, so serving cost
//! scales linearly with client traffic. `CachingPoolResolver` puts the
//! serving subsystem in between: queries are answered from the sharded
//! [`PoolCache`], cold bursts are coalesced so concurrent misses for one
//! domain share a single fan-out ([`CachingPoolResolver::serve_batch`]),
//! and expired entries within the stale window are served immediately while
//! a background refresh — pumped by the driver via
//! [`CachingPoolResolver::run_due_refreshes`], scheduled sans-IO through
//! [`CachingPoolResolver::next_refresh_due`] — regenerates the pool off the
//! query path. The amortised cost of serving a domain drops from one
//! generation per query to one generation per TTL window.
//!
//! Every answer still comes out of a real [`GenerationReport`] produced by
//! the paper's secure generation procedure, so the benign-fraction
//! guarantee of served pools is exactly the guarantee of the underlying
//! generation — caching changes *when* pools are generated, never *what*
//! is served.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use sdoh_dns_server::{Exchanger, QueryHandler};
use sdoh_dns_wire::{Message, Question, Rcode, Ttl};

use super::cache::{CacheConfig, CacheLookup, CacheMetrics, CachedPool, PoolCache, PoolKey};
use super::epoch::ServeConfig;
use super::refresh::RefreshScheduler;
use super::session::{drive_serve, ServeSession};
use super::singleflight::Singleflight;
use crate::generator::{seed_from, GenerationReport, SecurePoolGenerator};
use crate::lookup::pool_response;
use crate::session::SessionEvent;
use sdoh_netsim::SimInstant;

/// Operational counters of a [`CachingPoolResolver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Address queries received (after protocol-level rejection).
    pub queries: u64,
    /// Queries rejected before lookup (no question / non-address type).
    pub rejected: u64,
    /// Queries answered from a fresh cache entry.
    pub hits: u64,
    /// Queries answered from a stale entry while a refresh was queued
    /// (stale-while-revalidate).
    pub stale_serves: u64,
    /// Queries answered SERVFAIL from a cached generation failure without
    /// re-running the fan-out (negative caching).
    pub negative_hits: u64,
    /// Queries that found no usable entry and triggered (or joined) a
    /// generation.
    pub misses: u64,
    /// Misses that attached to another query's in-flight generation instead
    /// of launching their own (singleflight).
    pub coalesced_waiters: u64,
    /// Pool generations actually performed (demand misses + refreshes).
    pub generations: u64,
    /// Generations that failed and were negatively cached.
    pub generation_failures: u64,
    /// Background refresh generations performed.
    pub refreshes: u64,
    /// Per-resolver lookups that produced a usable answer, across all
    /// generations.
    pub source_answers: u64,
    /// Per-resolver lookups that failed, across all generations.
    pub source_failures: u64,
    /// Virtual time the most recent generation batch took.
    pub last_generation_latency: Duration,
    /// Total virtual time spent generating pools.
    pub total_generation_latency: Duration,
}

impl ServeMetrics {
    /// Fraction of address queries served without a generation on the query
    /// path (fresh + stale + negative hits).
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        (self.hits + self.stale_serves + self.negative_hits) as f64 / self.queries as f64
    }

    /// Adds `other`'s counters into `self` — aggregating the metrics of
    /// several serving shards into one fleet-wide view. Counters and the
    /// total latency sum; `last_generation_latency` keeps the largest value
    /// (the slowest shard's most recent batch).
    pub fn absorb(&mut self, other: &ServeMetrics) {
        self.queries += other.queries;
        self.rejected += other.rejected;
        self.hits += other.hits;
        self.stale_serves += other.stale_serves;
        self.negative_hits += other.negative_hits;
        self.misses += other.misses;
        self.coalesced_waiters += other.coalesced_waiters;
        self.generations += other.generations;
        self.generation_failures += other.generation_failures;
        self.refreshes += other.refreshes;
        self.source_answers += other.source_answers;
        self.source_failures += other.source_failures;
        self.last_generation_latency = self
            .last_generation_latency
            .max(other.last_generation_latency);
        self.total_generation_latency += other.total_generation_latency;
    }
}

/// One **consistent** observation of a [`CachingPoolResolver`]'s state,
/// taken by [`CachingPoolResolver::snapshot`].
///
/// All four readings come from the same `&self` borrow, so no query can be
/// counted in one field but not yet in another — the invariants between the
/// counters (e.g. `serve.hits == cache.hits` for a resolver that only ever
/// went through `handle_query`) hold within a snapshot. This is what a
/// runtime's stats thread should take once per tick instead of reading the
/// metrics field by field across several calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// The serving counters ([`CachingPoolResolver::metrics`]).
    pub serve: ServeMetrics,
    /// The cache-level counters ([`CachingPoolResolver::cache_metrics`]).
    pub cache: CacheMetrics,
    /// Entries currently cached (including not-yet-purged expired ones).
    pub entries: usize,
    /// Background refreshes currently queued.
    pub pending_refreshes: usize,
}

impl ServeSnapshot {
    /// Adds `other` into `self`, aggregating per-shard snapshots into one
    /// fleet-wide snapshot.
    pub fn absorb(&mut self, other: &ServeSnapshot) {
        self.serve.absorb(&other.serve);
        self.cache.absorb(&other.cache);
        self.entries += other.entries;
        self.pending_refreshes += other.pending_refreshes;
    }

    /// Names of the monotone counters that *decreased* between `earlier`
    /// and `self` — empty for any legal pair of successive snapshots of the
    /// same resolver.
    ///
    /// `entries` and `pending_refreshes` are gauges and legitimately shrink;
    /// `serve.last_generation_latency` is a latest-value reading. Every
    /// other field is a cumulative counter, and a regression means state was
    /// lost or observed inconsistently — the monotonicity invariant chaos
    /// campaigns check after every step.
    // sdoh-lint: allow(hot-path-purity, "monotonicity check is the chaos-monitor surface, never the serving path")
    pub fn regressions(&self, earlier: &ServeSnapshot) -> Vec<&'static str> {
        let pairs: [(&'static str, u64, u64); 18] = [
            ("serve.queries", earlier.serve.queries, self.serve.queries),
            (
                "serve.rejected",
                earlier.serve.rejected,
                self.serve.rejected,
            ),
            ("serve.hits", earlier.serve.hits, self.serve.hits),
            (
                "serve.stale_serves",
                earlier.serve.stale_serves,
                self.serve.stale_serves,
            ),
            (
                "serve.negative_hits",
                earlier.serve.negative_hits,
                self.serve.negative_hits,
            ),
            ("serve.misses", earlier.serve.misses, self.serve.misses),
            (
                "serve.coalesced_waiters",
                earlier.serve.coalesced_waiters,
                self.serve.coalesced_waiters,
            ),
            (
                "serve.generations",
                earlier.serve.generations,
                self.serve.generations,
            ),
            (
                "serve.generation_failures",
                earlier.serve.generation_failures,
                self.serve.generation_failures,
            ),
            (
                "serve.refreshes",
                earlier.serve.refreshes,
                self.serve.refreshes,
            ),
            (
                "serve.source_answers",
                earlier.serve.source_answers,
                self.serve.source_answers,
            ),
            (
                "serve.source_failures",
                earlier.serve.source_failures,
                self.serve.source_failures,
            ),
            ("cache.hits", earlier.cache.hits, self.cache.hits),
            (
                "cache.stale_hits",
                earlier.cache.stale_hits,
                self.cache.stale_hits,
            ),
            ("cache.misses", earlier.cache.misses, self.cache.misses),
            (
                "cache.insertions",
                earlier.cache.insertions,
                self.cache.insertions,
            ),
            (
                "cache.evictions",
                earlier.cache.evictions,
                self.cache.evictions,
            ),
            (
                "cache.expirations",
                earlier.cache.expirations,
                self.cache.expirations,
            ),
        ];
        let mut regressed: Vec<&'static str> = pairs
            .into_iter()
            .filter_map(|(name, before, after)| (after < before).then_some(name))
            .collect();
        if self.serve.total_generation_latency < earlier.serve.total_generation_latency {
            regressed.push("serve.total_generation_latency");
        }
        regressed
    }
}

/// A DNS query handler serving secure pools through the caching subsystem.
///
/// See the module documentation for the serving model.
pub struct CachingPoolResolver {
    generator: SecurePoolGenerator,
    cache: PoolCache,
    refresh: RefreshScheduler,
    metrics: ServeMetrics,
    serve_config: Arc<ServeConfig>,
}

impl CachingPoolResolver {
    /// Wraps a generator in the serving subsystem.
    pub fn new(generator: SecurePoolGenerator, config: CacheConfig) -> Self {
        CachingPoolResolver {
            generator,
            cache: PoolCache::new(config),
            refresh: RefreshScheduler::new(),
            metrics: ServeMetrics::default(),
            serve_config: Arc::new(ServeConfig::initial(config)),
        }
    }

    /// Adopts a new config epoch: the cache knobs are retuned at once (see
    /// [`PoolCache::apply_config`] — entries keep their stamps, stale
    /// serving stays bounded by the max of the old and new horizons) and
    /// the epoch becomes this resolver's [`current_epoch`].
    ///
    /// This is the per-shard half of hot reconfiguration: a control plane
    /// validates the new knobs once into an `Arc<ServeConfig>` and hands
    /// the same `Arc` to every shard's resolver through its work queue.
    ///
    /// [`current_epoch`]: CachingPoolResolver::current_epoch
    pub fn apply_config(&mut self, config: Arc<ServeConfig>, now: SimInstant) {
        self.cache.apply_config(*config.cache(), now);
        self.serve_config = config;
    }

    /// The epoch number of the config this resolver last adopted (0 until
    /// the first [`apply_config`](CachingPoolResolver::apply_config)).
    pub fn current_epoch(&self) -> u64 {
        self.serve_config.epoch()
    }

    /// The config epoch this resolver currently serves under.
    pub fn serve_config(&self) -> &Arc<ServeConfig> {
        &self.serve_config
    }

    /// Access to the underlying generator.
    pub fn generator(&self) -> &SecurePoolGenerator {
        &self.generator
    }

    /// Mutable access to the underlying generator — how a control plane
    /// swaps the upstream resolver set or the pool-generation config on a
    /// live shard (see [`SecurePoolGenerator::replace_sources`] and
    /// [`SecurePoolGenerator::set_config`]).
    pub fn generator_mut(&mut self) -> &mut SecurePoolGenerator {
        &mut self.generator
    }

    /// Removes and returns every cache entry whose key matches `predicate`,
    /// with generation/expiry stamps intact, cancelling any queued refresh
    /// for a moved key (its new owner will re-queue one on its own stale
    /// serve). The handoff half of a live shard rescale: a retiring shard
    /// extracts the entries it no longer owns and forwards them to their
    /// new owners for [`install_entry`](CachingPoolResolver::install_entry).
    pub fn extract_entries(
        &mut self,
        predicate: impl FnMut(&PoolKey) -> bool,
    ) -> Vec<(PoolKey, CachedPool)> {
        let moved = self.cache.extract_matching(predicate);
        for (key, _) in &moved {
            self.refresh.cancel(key);
        }
        moved
    }

    /// Adopts an entry handed off by another shard (see
    /// [`PoolCache::install`]): stamps are preserved, dead-on-arrival
    /// entries are dropped, and an existing at-least-as-fresh entry wins.
    /// Returns whether the entry was installed.
    pub fn install_entry(&mut self, key: PoolKey, cached: CachedPool, now: SimInstant) -> bool {
        self.cache.install(key, cached, now)
    }

    /// Access to the pool cache (diagnostics and tests).
    pub fn cache(&self) -> &PoolCache {
        &self.cache
    }

    /// Probes every cache entry at instant `now` (see [`PoolCache::probe`]):
    /// the per-entry age/liveness surface invariant monitors check.
    // sdoh-lint: allow(transitive-hot-path-purity, "control-plane probe: runs only for WorkItem::Probe maintenance items, never per query")
    pub fn probe_entries(&self, now: SimInstant) -> Vec<super::cache::CacheEntryProbe> {
        self.cache.probe(now)
    }

    /// Snapshot of the serving counters.
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics
    }

    /// Snapshot of the cache-level counters.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }

    /// Takes one cheap, **consistent** reading of every serving counter:
    /// the serve metrics, the cache metrics, the entry count and the
    /// pending-refresh count, all under a single borrow. See
    /// [`ServeSnapshot`] for why a stats thread should prefer this over
    /// field-by-field reads.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            serve: self.metrics,
            cache: self.cache.metrics(),
            entries: self.cache.len(),
            pending_refreshes: self.refresh.len(),
        }
    }

    /// The earliest queued refresh deadline — the instant a driver should
    /// wake up and call [`CachingPoolResolver::run_due_refreshes`] (`None`
    /// when nothing is queued). Composes with `WaitUntil`-style scheduling
    /// over the simulator's virtual clock.
    pub fn next_refresh_due(&self) -> Option<SimInstant> {
        self.refresh.next_due()
    }

    /// Number of refreshes currently queued.
    pub fn pending_refreshes(&self) -> usize {
        self.refresh.len()
    }

    /// Runs every refresh whose deadline has passed as one overlapped
    /// generation batch, off any client's query path. Returns how many
    /// refreshes ran.
    pub fn run_due_refreshes(&mut self, exchanger: &mut dyn Exchanger) -> usize {
        let due = self.refresh.take_due(exchanger.now());
        if due.is_empty() {
            return 0;
        }
        let count = due.len();
        self.generate_batch(exchanger, due, true);
        count
    }

    /// Serves a batch of client queries that arrived together, coalescing
    /// concurrent misses for the same key onto one generation
    /// (singleflight) and overlapping the generations of distinct keys in
    /// one fan-out. Responses come back in query order.
    // sdoh-lint: allow(hot-path-purity, "per-batch coalescing buffers are the singleflight design; sized by the batch, not per hit")
    // sdoh-lint: allow(no-panic, "waiter indices come from enumerate() over the same queries slice; screened questions always map to a pool key")
    pub fn serve_batch(
        &mut self,
        exchanger: &mut dyn Exchanger,
        queries: &[Message],
    ) -> Vec<Message> {
        let now = exchanger.now();
        let mut responses: Vec<Option<Message>> = vec![None; queries.len()];
        let mut flights: Singleflight<PoolKey> = Singleflight::new();
        let mut questions: HashMap<usize, Question> = HashMap::new();
        for (index, query) in queries.iter().enumerate() {
            let question = match self.screen(query) {
                Ok(question) => question,
                Err(response) => {
                    responses[index] = Some(response);
                    continue;
                }
            };
            let key = PoolKey::for_question(&question).expect("screened address question");
            match self.lookup(&key, &question, query, now) {
                Some(response) => responses[index] = Some(response),
                None => {
                    flights.join(key, index);
                    questions.insert(index, question);
                }
            }
        }
        self.metrics.coalesced_waiters += flights.coalesced();
        let keys: Vec<PoolKey> = flights.flights().iter().map(|(k, _)| k.clone()).collect();
        let results = self.generate_batch(exchanger, keys, false);
        for ((_, waiters), (_, result)) in flights.into_flights().iter().zip(&results) {
            for &waiter in waiters {
                let question = &questions[&waiter];
                responses[waiter] = Some(match result {
                    Ok(report) => {
                        pool_response(&queries[waiter], question, report, self.cache.config().ttl)
                    }
                    Err(_) => Message::error_response(&queries[waiter], Rcode::ServFail),
                });
            }
        }
        responses
            .into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// Validates the protocol-level shape of a query, counting rejections.
    fn screen(&mut self, query: &Message) -> Result<Question, Message> {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => {
                self.metrics.rejected += 1;
                return Err(Message::error_response(query, Rcode::FormErr));
            }
        };
        if !question.rtype.is_address() {
            self.metrics.rejected += 1;
            return Err(Message::error_response(query, Rcode::NotImp));
        }
        self.metrics.queries += 1;
        Ok(question)
    }

    /// Answers a query from the cache if possible; `None` means the caller
    /// must generate (a miss). Stale hits are answered immediately and a
    /// refresh is queued for `now`.
    fn lookup(
        &mut self,
        key: &PoolKey,
        question: &Question,
        query: &Message,
        now: SimInstant,
    ) -> Option<Message> {
        match self.cache.get(key, now) {
            CacheLookup::Fresh(hit) => {
                let response = match &hit.value {
                    Ok(report) => {
                        self.metrics.hits += 1;
                        pool_response(query, question, report, hit.remaining(now))
                    }
                    Err(_) => {
                        self.metrics.negative_hits += 1;
                        Message::error_response(query, Rcode::ServFail)
                    }
                };
                Some(response)
            }
            CacheLookup::Stale(hit) => {
                self.metrics.stale_serves += 1;
                self.refresh.schedule(key.clone(), now);
                let response = match &hit.value {
                    // Stale answers carry a zero TTL: clients may use them
                    // now but must not cache them onward.
                    Ok(report) => pool_response(query, question, report, Ttl::ZERO),
                    Err(_) => Message::error_response(query, Rcode::ServFail),
                };
                Some(response)
            }
            CacheLookup::Miss => {
                self.metrics.misses += 1;
                None
            }
        }
    }

    /// Runs one overlapped generation per key, feeding outcomes into the
    /// cache (failures become negative entries) and the metrics. Returns
    /// the per-key outcomes in batch order.
    // sdoh-lint: allow(hot-path-purity, "generation is the miss path: the source fan-out dwarfs these per-batch buffers")
    // sdoh-lint: allow(transitive-hot-path-purity, "coalesced miss path: at most one generation per (question, TTL window) enters here and cache hits never do; E16 moves generation onto its own event loop")
    fn generate_batch(
        &mut self,
        exchanger: &mut dyn Exchanger,
        keys: Vec<PoolKey>,
        is_refresh: bool,
    ) -> Vec<(PoolKey, Result<GenerationReport, String>)> {
        if keys.is_empty() {
            return Vec::new();
        }
        let batch: Vec<(PoolKey, u64)> = keys
            .into_iter()
            .map(|key| {
                let seed = seed_from(exchanger);
                (key, seed)
            })
            .collect();
        let started = exchanger.now();
        let CachingPoolResolver {
            generator,
            cache,
            metrics,
            refresh,
            serve_config: _,
        } = self;
        let keys: Vec<PoolKey> = batch.iter().map(|(key, _)| key.clone()).collect();
        let outcome = ServeSession::new(generator, batch).and_then(|mut session| {
            let events = drive_serve(&mut session, exchanger)?;
            for event in &events {
                match event.event {
                    SessionEvent::SourceAnswered { .. } => metrics.source_answers += 1,
                    SessionEvent::SourceFailed { .. } => metrics.source_failures += 1,
                }
            }
            session.finish()
        });
        let now = exchanger.now();
        let elapsed = now.saturating_duration_since(started);
        metrics.last_generation_latency = elapsed;
        metrics.total_generation_latency += elapsed;
        let results: Vec<(PoolKey, Result<GenerationReport, String>)> = match outcome {
            Ok(outcomes) => outcomes
                .into_iter()
                .map(|o| (o.key, o.result.map_err(|e| e.to_string())))
                .collect(),
            // A session-protocol error dooms the whole batch: every key is
            // negatively cached so queued clients fail fast instead of
            // re-driving a broken session.
            Err(err) => keys
                .into_iter()
                .map(|key| (key, Err(err.to_string())))
                .collect(),
        };
        for (key, value) in &results {
            metrics.generations += 1;
            if is_refresh {
                metrics.refreshes += 1;
            }
            if value.is_err() {
                metrics.generation_failures += 1;
            }
            cache.insert(key.clone(), value.clone(), now);
            // The entry was just regenerated: a refresh still queued for it
            // (its stale serve happened before this demand-path generation)
            // would only duplicate the fan-out.
            refresh.cancel(key);
        }
        results
    }
}

/// A pool resolved straight through the serving subsystem, without DNS
/// message framing — what an in-process application (a secure time-sync
/// client, a bootstrap component) consumes from the front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedPool {
    /// The served pool addresses, in answer order.
    pub addresses: Vec<std::net::IpAddr>,
    /// Remaining time the caller may use this pool before re-pulling it
    /// (zero for a stale serve: usable now, but not a moment longer).
    pub ttl: Ttl,
}

impl ResolvedPool {
    /// Extracts a pool from a successful DNS answer: the answer-section
    /// addresses in order, valid for the **smallest** answer TTL. The one
    /// place answer records become a typed pool, shared by every consumer
    /// that turns DNS messages into pools.
    pub fn from_answer(message: &Message) -> ResolvedPool {
        ResolvedPool {
            addresses: message.answer_addresses(),
            ttl: message
                .answers
                .iter()
                .map(|record| Ttl::from_secs(record.ttl))
                .min()
                .unwrap_or(Ttl::ZERO),
        }
    }
}

impl CachingPoolResolver {
    /// Resolves the current pool for `domain` and `family` through the full
    /// serving path — fresh cache hit, stale serve with a queued background
    /// refresh, or an on-demand generation — exactly as a network query
    /// would, but handing back typed addresses plus the remaining TTL
    /// instead of a wire message. In-process consumers (e.g. a secure
    /// time-sync client holding the shared front-end handle) use this to
    /// honour the same TTL windows as every DNS client of the resolver.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::Generation`](crate::PoolError::Generation) when
    /// the serving path answers with an error (a failed — possibly
    /// negatively cached — generation).
    pub fn resolve_pool(
        &mut self,
        exchanger: &mut dyn Exchanger,
        domain: &sdoh_dns_wire::Name,
        family: super::AddressFamily,
    ) -> crate::PoolResult<ResolvedPool> {
        let query = Message::query(exchanger.next_id(), domain.clone(), family.rtype());
        let response = self.handle_query(exchanger, &query);
        if response.header.rcode != Rcode::NoError {
            // sdoh-lint: allow(hot-path-purity, "error formatting happens on the failure path only")
            return Err(crate::PoolError::Generation(format!(
                "serving front end answered {:?} for {domain}",
                response.header.rcode
            )));
        }
        Ok(ResolvedPool::from_answer(&response))
    }
}

impl QueryHandler for CachingPoolResolver {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        let question = match self.screen(query) {
            Ok(question) => question,
            Err(response) => return response,
        };
        let Some(key) = PoolKey::for_question(&question) else {
            // screen() only passes address-type questions, which always
            // map to a pool key; answer the theoretical gap gracefully.
            return Message::error_response(query, Rcode::ServFail);
        };
        let now = exchanger.now();
        if let Some(response) = self.lookup(&key, &question, query, now) {
            return response;
        }
        // sdoh-lint: allow(hot-path-purity, "single-key miss: the generation fan-out dwarfs this one-element batch")
        let results = self.generate_batch(exchanger, vec![key], false);
        match results.first() {
            Some((_, Ok(report))) => {
                pool_response(query, &question, report, self.cache.config().ttl)
            }
            _ => Message::error_response(query, Rcode::ServFail),
        }
    }

    fn handler_name(&self) -> &str {
        "caching-pool-resolver"
    }
}

impl std::fmt::Debug for CachingPoolResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingPoolResolver")
            .field("generator", &self.generator)
            .field("cache_entries", &self.cache.len())
            .field("pending_refreshes", &self.refresh.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use crate::source::{AddressSource, StaticSource};
    use sdoh_dns_server::ClientExchanger;
    use sdoh_dns_wire::RrType;
    use sdoh_netsim::{SimAddr, SimNet};
    use std::net::IpAddr;

    fn ip(last: u8) -> IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    fn resolver(config: CacheConfig) -> CachingPoolResolver {
        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::answering("r1", vec![ip(1), ip(2)])),
            Box::new(StaticSource::answering("r2", vec![ip(2), ip(3)])),
            Box::new(StaticSource::answering("r3", vec![ip(2), ip(1)])),
        ];
        CachingPoolResolver::new(
            SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap(),
            config,
        )
    }

    fn test_config() -> CacheConfig {
        CacheConfig::default()
            .with_ttl(Ttl::from_secs(60))
            .with_stale_window(Duration::from_secs(30))
            .with_negative_ttl(Ttl::from_secs(5))
    }

    fn query(id: u16, domain: &str) -> Message {
        Message::query(id, domain.parse().unwrap(), RrType::A)
    }

    #[test]
    fn repeat_queries_cost_one_generation() {
        let net = SimNet::new(80);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        let first = resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        assert_eq!(first.answer_addresses().len(), 6);
        for i in 2..=10 {
            let response = resolver.handle_query(&mut exchanger, &query(i, "pool.ntp.org"));
            assert_eq!(response.answer_addresses(), first.answer_addresses());
        }
        let metrics = resolver.metrics();
        assert_eq!(metrics.queries, 10);
        assert_eq!(metrics.generations, 1);
        assert_eq!(metrics.misses, 1);
        assert_eq!(metrics.hits, 9);
        assert!((metrics.hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn served_ttl_decrements_with_entry_age() {
        let net = SimNet::new(81);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        let fresh = resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        assert!(fresh.answers.iter().all(|r| r.ttl == 60));
        net.clock().advance(Duration::from_secs(25));
        let aged = resolver.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        assert!(aged.answers.iter().all(|r| r.ttl == 35));
    }

    #[test]
    fn stale_window_serves_immediately_and_refreshes_in_background() {
        let net = SimNet::new(82);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        assert_eq!(resolver.next_refresh_due(), None);

        // Past the TTL, within the stale window.
        net.clock().advance(Duration::from_secs(75));
        let before = net.now();
        let stale = resolver.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        assert_eq!(net.now(), before, "stale serve performed no exchange");
        assert_eq!(stale.answer_addresses().len(), 6);
        assert!(stale.answers.iter().all(|r| r.ttl == 0));
        assert_eq!(resolver.metrics().stale_serves, 1);
        assert_eq!(resolver.metrics().generations, 1, "not on the query path");
        assert_eq!(resolver.next_refresh_due(), Some(before));
        assert_eq!(resolver.pending_refreshes(), 1);

        // The background pump regenerates; the next query is a fresh hit.
        assert_eq!(resolver.run_due_refreshes(&mut exchanger), 1);
        let metrics = resolver.metrics();
        assert_eq!(metrics.generations, 2);
        assert_eq!(metrics.refreshes, 1);
        let fresh = resolver.handle_query(&mut exchanger, &query(3, "pool.ntp.org"));
        assert_eq!(fresh.answer_addresses().len(), 6);
        assert_eq!(resolver.metrics().hits, 1);
        assert_eq!(resolver.run_due_refreshes(&mut exchanger), 0);
    }

    #[test]
    fn demand_regeneration_cancels_the_queued_refresh() {
        // A stale serve queues a refresh; if the entry then ages past the
        // stale window before any pump runs, the next query regenerates on
        // the miss path — and the queued refresh must be dropped, not run
        // as a duplicate fan-out against the already-fresh entry.
        let net = SimNet::new(88);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        net.clock().advance(Duration::from_secs(75));
        resolver.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        assert_eq!(resolver.pending_refreshes(), 1, "stale serve queued it");
        net.clock().advance(Duration::from_secs(20));
        resolver.handle_query(&mut exchanger, &query(3, "pool.ntp.org"));
        assert_eq!(resolver.metrics().generations, 2, "miss-path regeneration");
        assert_eq!(resolver.pending_refreshes(), 0, "queued refresh cancelled");
        assert_eq!(resolver.run_due_refreshes(&mut exchanger), 0);
        assert_eq!(resolver.metrics().generations, 2);
        assert_eq!(resolver.metrics().refreshes, 0);
    }

    #[test]
    fn expiry_past_stale_window_regenerates_on_the_query_path() {
        let net = SimNet::new(83);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        net.clock().advance(Duration::from_secs(91));
        resolver.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        let metrics = resolver.metrics();
        assert_eq!(metrics.generations, 2);
        assert_eq!(metrics.misses, 2);
        assert_eq!(metrics.stale_serves, 0);
    }

    #[test]
    fn failures_are_negatively_cached() {
        let net = SimNet::new(84);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::failing("dead1")),
            Box::new(StaticSource::failing("dead2")),
        ];
        let generator =
            SecurePoolGenerator::new(PoolConfig::algorithm1().with_min_responses(2), sources)
                .unwrap();
        let mut resolver = CachingPoolResolver::new(generator, test_config());

        let first = resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        assert_eq!(first.header.rcode, Rcode::ServFail);
        let second = resolver.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        assert_eq!(second.header.rcode, Rcode::ServFail);
        let metrics = resolver.metrics();
        assert_eq!(metrics.generations, 1, "failure answered from the cache");
        assert_eq!(metrics.generation_failures, 1);
        assert_eq!(metrics.negative_hits, 1);

        // Past the negative TTL the fan-out is retried.
        net.clock().advance(Duration::from_secs(6));
        resolver.handle_query(&mut exchanger, &query(3, "pool.ntp.org"));
        assert_eq!(resolver.metrics().generations, 2);
    }

    #[test]
    fn serve_batch_coalesces_concurrent_misses() {
        let net = SimNet::new(85);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        let queries: Vec<Message> = vec![
            query(1, "a.ntp.org"),
            query(2, "b.ntp.org"),
            query(3, "a.ntp.org"),
            query(4, "a.ntp.org"),
            query(5, "b.ntp.org"),
        ];
        let responses = resolver.serve_batch(&mut exchanger, &queries);
        assert_eq!(responses.len(), 5);
        assert!(responses.iter().all(|r| r.answer_addresses().len() == 6));
        // Same key, same flight, same pool.
        assert_eq!(
            responses[0].answer_addresses(),
            responses[2].answer_addresses()
        );
        let metrics = resolver.metrics();
        assert_eq!(metrics.queries, 5);
        assert_eq!(metrics.generations, 2, "two distinct keys");
        assert_eq!(metrics.coalesced_waiters, 3);
        assert_eq!(metrics.misses, 5);

        // A second batch is all cache hits.
        let responses = resolver.serve_batch(&mut exchanger, &queries);
        assert_eq!(responses.len(), 5);
        let metrics = resolver.metrics();
        assert_eq!(metrics.generations, 2);
        assert_eq!(metrics.hits, 5);
    }

    #[test]
    fn rejection_paths_match_the_uncached_front_end() {
        let net = SimNet::new(86);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        let txt = Message::query(1, "pool.ntp.org".parse().unwrap(), RrType::Txt);
        assert_eq!(
            resolver.handle_query(&mut exchanger, &txt).header.rcode,
            Rcode::NotImp
        );
        let empty = Message::new();
        assert_eq!(
            resolver.handle_query(&mut exchanger, &empty).header.rcode,
            Rcode::FormErr
        );
        let batch = resolver.serve_batch(&mut exchanger, &[txt]);
        assert_eq!(batch[0].header.rcode, Rcode::NotImp);
        assert_eq!(resolver.metrics().rejected, 3);
        assert_eq!(resolver.metrics().queries, 0);
        assert_eq!(resolver.handler_name(), "caching-pool-resolver");
        assert!(format!("{resolver:?}").contains("CachingPoolResolver"));
    }

    #[test]
    fn serve_layer_is_send() {
        // The real-socket runtime moves a whole resolver (generator,
        // cache, scheduler, metrics) into a worker thread; this must stay
        // a compile-time guarantee.
        fn assert_send<T: Send>() {}
        assert_send::<CachingPoolResolver>();
        assert_send::<SecurePoolGenerator>();
        assert_send::<PoolCache>();
        assert_send::<RefreshScheduler>();
        assert_send::<Singleflight<PoolKey>>();
        assert_send::<ServeMetrics>();
        assert_send::<super::super::ServeSnapshot>();
    }

    #[test]
    fn snapshot_is_one_consistent_reading() {
        let net = SimNet::new(90);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        resolver.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        let snapshot = resolver.snapshot();
        assert_eq!(snapshot.serve, resolver.metrics());
        assert_eq!(snapshot.cache, resolver.cache_metrics());
        assert_eq!(snapshot.entries, 1);
        assert_eq!(snapshot.pending_refreshes, 0);
        // Within one snapshot the cross-counter invariants hold exactly.
        assert_eq!(snapshot.serve.hits, snapshot.cache.hits);
        assert_eq!(snapshot.serve.misses, snapshot.cache.misses);

        let mut total = super::super::ServeSnapshot::default();
        total.absorb(&snapshot);
        total.absorb(&snapshot);
        assert_eq!(total.serve.queries, 2 * snapshot.serve.queries);
        assert_eq!(total.cache.hits, 2 * snapshot.cache.hits);
        assert_eq!(total.entries, 2);
    }

    #[test]
    fn coalesced_waiters_of_a_failed_generation_all_get_servfail() {
        // The singleflight failure path: a cold burst for one domain with a
        // failing backend must run exactly ONE generation, answer every
        // coalesced waiter SERVFAIL, and leave a negative entry behind so
        // follow-up queries fail fast without another fan-out.
        let net = SimNet::new(91);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::failing("dead1")),
            Box::new(StaticSource::failing("dead2")),
        ];
        let generator =
            SecurePoolGenerator::new(PoolConfig::algorithm1().with_min_responses(2), sources)
                .unwrap();
        let mut resolver = CachingPoolResolver::new(generator, test_config());

        let queries: Vec<Message> = (1..=5).map(|i| query(i, "dead.ntp.org")).collect();
        let responses = resolver.serve_batch(&mut exchanger, &queries);
        assert_eq!(responses.len(), 5);
        for (q, response) in queries.iter().zip(&responses) {
            assert_eq!(response.header.rcode, Rcode::ServFail);
            assert!(response.answers_query(q), "response matches its query");
        }
        let metrics = resolver.metrics();
        assert_eq!(metrics.generations, 1, "one flight for the whole burst");
        assert_eq!(metrics.generation_failures, 1);
        assert_eq!(metrics.coalesced_waiters, 4);
        assert_eq!(metrics.misses, 5);

        // The failure is negatively cached: the next query is answered from
        // the cache without a second generation attempt.
        let again = resolver.handle_query(&mut exchanger, &query(6, "dead.ntp.org"));
        assert_eq!(again.header.rcode, Rcode::ServFail);
        let metrics = resolver.metrics();
        assert_eq!(metrics.generations, 1);
        assert_eq!(metrics.negative_hits, 1);
    }

    #[test]
    fn resolve_pool_follows_the_serving_path() {
        use super::super::AddressFamily;
        let net = SimNet::new(92);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        let domain: sdoh_dns_wire::Name = "pool.ntp.org".parse().unwrap();

        let first = resolver
            .resolve_pool(&mut exchanger, &domain, AddressFamily::V4)
            .unwrap();
        assert_eq!(first.addresses.len(), 6);
        assert_eq!(first.ttl, Ttl::from_secs(60));
        // A wire query and the typed lookup serve the same cache entry.
        let wire = resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        assert_eq!(wire.answer_addresses(), first.addresses);
        assert_eq!(resolver.metrics().generations, 1);

        // The TTL decrements with entry age like every served answer.
        net.clock().advance(Duration::from_secs(25));
        let aged = resolver
            .resolve_pool(&mut exchanger, &domain, AddressFamily::V4)
            .unwrap();
        assert_eq!(aged.ttl, Ttl::from_secs(35));
        assert_eq!(aged.addresses, first.addresses);

        // A stale serve hands back TTL zero and queues the refresh.
        net.clock().advance(Duration::from_secs(50));
        let stale = resolver
            .resolve_pool(&mut exchanger, &domain, AddressFamily::V4)
            .unwrap();
        assert_eq!(stale.ttl, Ttl::ZERO);
        assert_eq!(resolver.pending_refreshes(), 1);
    }

    #[test]
    fn resolve_pool_surfaces_generation_failures() {
        use super::super::AddressFamily;
        let net = SimNet::new(93);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::failing("dead1")),
            Box::new(StaticSource::failing("dead2")),
        ];
        let generator =
            SecurePoolGenerator::new(PoolConfig::algorithm1().with_min_responses(2), sources)
                .unwrap();
        let mut resolver = CachingPoolResolver::new(generator, test_config());
        let err = resolver
            .resolve_pool(
                &mut exchanger,
                &"dead.ntp.org".parse().unwrap(),
                AddressFamily::V4,
            )
            .unwrap_err();
        assert!(matches!(err, crate::PoolError::Generation(_)), "{err:?}");
    }

    #[test]
    fn snapshot_regressions_name_decreasing_counters() {
        let mut earlier = ServeSnapshot::default();
        earlier.serve.queries = 10;
        earlier.cache.hits = 5;
        earlier.entries = 7;
        earlier.pending_refreshes = 2;

        let mut later = earlier;
        later.serve.queries = 12;
        later.entries = 0; // gauges may shrink
        later.pending_refreshes = 0;
        assert!(later.regressions(&earlier).is_empty());

        later.serve.queries = 9;
        later.cache.hits = 4;
        assert_eq!(
            later.regressions(&earlier),
            vec!["serve.queries", "cache.hits"]
        );
    }

    #[test]
    fn probe_entries_follow_served_state() {
        let net = SimNet::new(95);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        let query = Message::query(7, "pool.ntp.org".parse().unwrap(), RrType::A);
        resolver.handle_query(&mut exchanger, &query);
        let probes = resolver.probe_entries(net.now());
        assert_eq!(probes.len(), 1);
        assert_eq!(probes[0].state, super::super::EntryState::Fresh);
        assert!(!probes[0].negative);
        assert!(probes[0].age <= Duration::from_secs(1));
    }

    #[test]
    fn apply_config_retunes_a_live_resolver() {
        let net = SimNet::new(96);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        assert_eq!(resolver.current_epoch(), 0);
        resolver.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));

        // New epoch: widen the stale window. The already-cached entry is
        // untouched but the new window applies to it immediately.
        let next = ServeConfig::initial(test_config())
            .next(test_config().with_stale_window(Duration::from_secs(300)))
            .unwrap();
        resolver.apply_config(Arc::new(next), net.now());
        assert_eq!(resolver.current_epoch(), 1);
        assert_eq!(
            resolver.serve_config().cache().stale_window,
            Duration::from_secs(300)
        );

        // Age 100 was past the old stale horizon (60+30); under the new
        // epoch it is a stale serve — no generation on the query path.
        net.clock().advance(Duration::from_secs(100));
        let stale = resolver.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        assert!(stale.answers.iter().all(|r| r.ttl == 0));
        assert_eq!(resolver.metrics().stale_serves, 1);
        assert_eq!(resolver.metrics().generations, 1);
    }

    #[test]
    fn extracted_entries_install_on_a_new_owner() {
        let net = SimNet::new(97);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut donor = resolver(test_config());
        donor.handle_query(&mut exchanger, &query(1, "pool.ntp.org"));
        // Queue a refresh on the donor so the handoff has one to cancel.
        net.clock().advance(Duration::from_secs(75));
        donor.handle_query(&mut exchanger, &query(2, "pool.ntp.org"));
        assert_eq!(donor.pending_refreshes(), 1);

        let moved = donor.extract_entries(|_| true);
        assert_eq!(moved.len(), 1);
        assert_eq!(donor.cache().len(), 0);
        assert_eq!(donor.pending_refreshes(), 0, "refresh moved with the key");

        let mut receiver = resolver(test_config());
        for (key, cached) in moved {
            assert!(receiver.install_entry(key, cached, net.now()));
        }
        // The receiver serves the handed-off entry (stale at this age)
        // without a generation of its own.
        let served = receiver.handle_query(&mut exchanger, &query(3, "pool.ntp.org"));
        assert_eq!(served.answer_addresses().len(), 6);
        assert_eq!(receiver.metrics().generations, 0);
        assert_eq!(receiver.metrics().stale_serves, 1);
    }

    #[test]
    fn families_cache_separately() {
        let net = SimNet::new(87);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver(test_config());
        let a = Message::query(1, "pool.ntp.org".parse().unwrap(), RrType::A);
        let aaaa = Message::query(2, "pool.ntp.org".parse().unwrap(), RrType::Aaaa);
        resolver.handle_query(&mut exchanger, &a);
        let v6 = resolver.handle_query(&mut exchanger, &aaaa);
        // IPv4-only generation: the AAAA answer is empty but still cached
        // under its own key.
        assert!(v6.answer_addresses().is_empty());
        assert_eq!(resolver.metrics().generations, 2);
        assert_eq!(resolver.cache().len(), 2);
    }
}
