//! The serve layer's export vocabulary: [`ServeSnapshot`] → metric
//! [`Sample`]s.
//!
//! This module is the single source of truth for the metric names and help
//! strings of every serving counter — the runtime's `/metrics` endpoint,
//! the fleet aggregator and the experiments all speak this vocabulary, so
//! a counter renamed here renames everywhere (and the CI help-string lint
//! checks this table, not scattered call sites).

use sdoh_metrics::{Sample, SampleValue};

use super::resolver::ServeSnapshot;

/// `(name, help)` rows of every counter exported from a [`ServeSnapshot`],
/// in export order. Public so lints and docs can enumerate the vocabulary
/// without building a snapshot.
pub const SERVE_COUNTER_HELP: &[(&str, &str)] = &[
    (
        "sdoh_serve_queries_total",
        "Address queries received by the serving layer (after protocol-level rejection).",
    ),
    (
        "sdoh_serve_rejected_total",
        "Queries rejected before lookup (no question or non-address type).",
    ),
    (
        "sdoh_serve_hits_total",
        "Queries answered from a fresh cache entry.",
    ),
    (
        "sdoh_serve_stale_serves_total",
        "Queries answered from a stale entry while a background refresh was queued.",
    ),
    (
        "sdoh_serve_negative_hits_total",
        "Queries answered SERVFAIL from a cached generation failure (negative caching).",
    ),
    (
        "sdoh_serve_misses_total",
        "Queries that found no usable entry and triggered (or joined) a generation.",
    ),
    (
        "sdoh_serve_coalesced_waiters_total",
        "Misses that attached to another query's in-flight generation (singleflight).",
    ),
    (
        "sdoh_generations_total",
        "Pool generations performed (demand misses plus background refreshes).",
    ),
    (
        "sdoh_generation_failures_total",
        "Pool generations that failed and were negatively cached.",
    ),
    (
        "sdoh_refreshes_total",
        "Background refresh generations performed off the query path.",
    ),
    (
        "sdoh_source_answers_total",
        "Per-resolver lookups that produced a usable answer, across all generations.",
    ),
    (
        "sdoh_source_failures_total",
        "Per-resolver lookups that failed, across all generations.",
    ),
    (
        "sdoh_cache_hits_total",
        "Cache lookups answered from a fresh entry.",
    ),
    (
        "sdoh_cache_stale_hits_total",
        "Cache lookups answered from a stale entry within the stale window.",
    ),
    (
        "sdoh_cache_misses_total",
        "Cache lookups that found nothing usable.",
    ),
    ("sdoh_cache_insertions_total", "Cache entries inserted."),
    (
        "sdoh_cache_evictions_total",
        "Cache entries evicted to make room (LRU within the shard).",
    ),
    (
        "sdoh_cache_expirations_total",
        "Cache entries dropped because they were expired beyond use.",
    ),
];

// ---------------------------------------------------------------------
// Metrics exported outside the serve layer. They live here — in the same
// vocabulary module as the serve tables — because this file is the single
// source of truth the `metrics-vocabulary` lint holds every exporter to: a
// metric-name literal anywhere else in the workspace must appear in this
// file with a help string, or `sdoh-lint` rejects it as drift.
// ---------------------------------------------------------------------

/// Front door: datagrams accepted by the UDP dispatcher.
pub const METRIC_UDP_QUERIES: (&str, &str) = (
    "sdoh_udp_queries_total",
    "Datagrams accepted by the UDP dispatcher.",
);
/// Front door: queries accepted over the TCP fallback listener.
pub const METRIC_TCP_QUERIES: (&str, &str) = (
    "sdoh_tcp_queries_total",
    "Queries accepted over the TCP fallback listener.",
);
/// Front door: UDP responses truncated to TC=1.
pub const METRIC_TRUNCATED_RESPONSES: (&str, &str) = (
    "sdoh_truncated_responses_total",
    "UDP responses truncated to TC=1 because they exceeded the payload limit.",
);
/// Front door: accepted queries that could not reach a shard worker.
pub const METRIC_DROPPED_QUERIES: (&str, &str) = (
    "sdoh_dropped_queries_total",
    "Accepted queries that could not be handed to a shard worker \
     (zero during normal operation, including rescales).",
);
/// Hot path: per-query serving latency histogram, labelled by shard.
pub const METRIC_SERVE_LATENCY: (&str, &str) = (
    "sdoh_serve_latency_seconds",
    "Wall-clock latency of serving one query on the shard worker, \
     from dequeue to response bytes ready.",
);
/// Control plane: serving shards of this instance.
pub const METRIC_SHARDS: (&str, &str) = (
    "sdoh_shards",
    "Serving shards (worker threads) of this instance.",
);
/// Control plane: shards that missed the latest snapshot deadline.
pub const METRIC_UNRESPONSIVE_SHARDS: (&str, &str) = (
    "sdoh_unresponsive_shards",
    "Shards that missed the latest snapshot deadline (wedged workers).",
);
/// Control plane: the most recently published config epoch.
pub const METRIC_CONFIG_EPOCH: (&str, &str) = (
    "sdoh_config_epoch",
    "The config epoch most recently published by the control plane.",
);
/// Control plane: the config epoch each shard last acknowledged.
pub const METRIC_SHARD_ACKED_EPOCH: (&str, &str) = (
    "sdoh_shard_acked_epoch",
    "The config epoch this shard last acknowledged.",
);
/// Chaos: invariant breaches recorded by the campaign monitor.
pub const METRIC_INVARIANT_VIOLATIONS: (&str, &str) = (
    "sdoh_invariant_violations_total",
    "Invariant breaches recorded by the chaos campaign monitor \
     (guarantee, clock, monotonicity, cache age, accounting).",
);
/// Time sync: successful Chronos updates.
pub const METRIC_TIMESYNC_SYNCS: (&str, &str) = (
    "sdoh_timesync_syncs_total",
    "Successful time synchronizations (Chronos accepted an update).",
);
/// Time sync: failed synchronizations.
pub const METRIC_TIMESYNC_FAILURES: (&str, &str) = (
    "sdoh_timesync_failures_total",
    "Failed time synchronizations (pool fetch, empty pool or Chronos rejection).",
);
/// Time sync: pool re-pulls after a TTL window elapsed.
pub const METRIC_TIMESYNC_POOL_REFRESHES: (&str, &str) = (
    "sdoh_timesync_pool_refreshes_total",
    "NTP server pool re-pulls after a TTL window elapsed.",
);

/// `(name, help)` rows of the front-door and control-plane metrics
/// exported by `sdoh-runtime` (in addition to the serve tables above).
pub const RUNTIME_METRIC_HELP: &[(&str, &str)] = &[
    METRIC_UDP_QUERIES,
    METRIC_TCP_QUERIES,
    METRIC_TRUNCATED_RESPONSES,
    METRIC_DROPPED_QUERIES,
    METRIC_SERVE_LATENCY,
    METRIC_SHARDS,
    METRIC_UNRESPONSIVE_SHARDS,
    METRIC_CONFIG_EPOCH,
    METRIC_SHARD_ACKED_EPOCH,
];

/// `(name, help)` rows of the application-layer metrics: the secure time
/// client and the chaos invariant monitor.
pub const APP_METRIC_HELP: &[(&str, &str)] = &[
    METRIC_INVARIANT_VIOLATIONS,
    METRIC_TIMESYNC_SYNCS,
    METRIC_TIMESYNC_FAILURES,
    METRIC_TIMESYNC_POOL_REFRESHES,
];

/// `(name, help)` rows of every gauge exported from a [`ServeSnapshot`].
pub const SERVE_GAUGE_HELP: &[(&str, &str)] = &[
    (
        "sdoh_cache_entries",
        "Entries currently cached (including not-yet-purged expired ones).",
    ),
    (
        "sdoh_pending_refreshes",
        "Background refreshes currently queued.",
    ),
    (
        "sdoh_serve_hit_ratio",
        "Fraction of address queries served without a generation on the query path.",
    ),
    (
        "sdoh_last_generation_seconds",
        "Virtual time the most recent generation batch took, in seconds.",
    ),
    (
        "sdoh_generation_seconds_total",
        "Total virtual time spent generating pools, in seconds.",
    ),
];

/// Renders one [`ServeSnapshot`] as export samples under the given label
/// set (e.g. `&[]` for an instance aggregate, `[("shard", "3")]` for one
/// shard). Counter values come straight from the snapshot's cumulative
/// fields, so successive scrapes of a live resolver are monotone.
pub fn snapshot_samples(snapshot: &ServeSnapshot, labels: &[(&str, &str)]) -> Vec<Sample> {
    let counters: [u64; 18] = [
        snapshot.serve.queries,
        snapshot.serve.rejected,
        snapshot.serve.hits,
        snapshot.serve.stale_serves,
        snapshot.serve.negative_hits,
        snapshot.serve.misses,
        snapshot.serve.coalesced_waiters,
        snapshot.serve.generations,
        snapshot.serve.generation_failures,
        snapshot.serve.refreshes,
        snapshot.serve.source_answers,
        snapshot.serve.source_failures,
        snapshot.cache.hits,
        snapshot.cache.stale_hits,
        snapshot.cache.misses,
        snapshot.cache.insertions,
        snapshot.cache.evictions,
        snapshot.cache.expirations,
    ];
    let gauges: [f64; 5] = [
        snapshot.entries as f64,
        snapshot.pending_refreshes as f64,
        snapshot.serve.hit_ratio(),
        snapshot.serve.last_generation_latency.as_secs_f64(),
        snapshot.serve.total_generation_latency.as_secs_f64(),
    ];
    // sdoh-lint: allow(hot-path-purity, "sample rendering runs at scrape cadence, not per query")
    let owned_labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let mut samples = Vec::with_capacity(counters.len() + gauges.len());
    for ((name, help), value) in SERVE_COUNTER_HELP.iter().zip(counters) {
        samples.push(Sample {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned_labels.clone(),
            value: SampleValue::Counter(value),
        });
    }
    for ((name, help), value) in SERVE_GAUGE_HELP.iter().zip(gauges) {
        samples.push(Sample {
            name: name.to_string(),
            help: help.to_string(),
            labels: owned_labels.clone(),
            value: SampleValue::Gauge(value),
        });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn every_snapshot_field_exports_with_help() {
        let mut snapshot = ServeSnapshot::default();
        snapshot.serve.queries = 10;
        snapshot.serve.hits = 7;
        snapshot.serve.misses = 3;
        snapshot.serve.generations = 3;
        snapshot.cache.insertions = 3;
        snapshot.entries = 3;
        snapshot.serve.total_generation_latency = Duration::from_millis(1500);

        let samples = snapshot_samples(&snapshot, &[("shard", "2")]);
        assert_eq!(
            samples.len(),
            SERVE_COUNTER_HELP.len() + SERVE_GAUGE_HELP.len()
        );
        for sample in &samples {
            assert!(!sample.help.trim().is_empty(), "{} lacks help", sample.name);
            assert_eq!(sample.labels, vec![("shard".to_string(), "2".to_string())]);
        }
        let by_name = |name: &str| match sdoh_metrics::find_sample(&samples, name) {
            Ok(sample) => sample.value.clone(),
            Err(missing) => panic!("{missing}"),
        };
        assert_eq!(
            by_name("sdoh_serve_queries_total"),
            SampleValue::Counter(10)
        );
        assert_eq!(by_name("sdoh_serve_hits_total"), SampleValue::Counter(7));
        assert_eq!(by_name("sdoh_generations_total"), SampleValue::Counter(3));
        assert_eq!(by_name("sdoh_cache_entries"), SampleValue::Gauge(3.0));
        assert_eq!(by_name("sdoh_serve_hit_ratio"), SampleValue::Gauge(0.7));
        assert_eq!(
            by_name("sdoh_generation_seconds_total"),
            SampleValue::Gauge(1.5)
        );
    }

    #[test]
    fn vocabulary_names_are_unique_and_valid() {
        let mut names: Vec<&str> = SERVE_COUNTER_HELP
            .iter()
            .chain(SERVE_GAUGE_HELP)
            .chain(RUNTIME_METRIC_HELP)
            .chain(APP_METRIC_HELP)
            .map(|(name, _)| *name)
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric names in vocabulary");
        for name in names {
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{name} is not a valid metric name"
            );
        }
    }
}
