//! The sans-IO serving session: several pool generations in one fan-out.
//!
//! A [`ServeSession`] bundles the [`PoolSession`]s of every key a serving
//! batch needs to (re)generate — cache misses coalesced by
//! [`Singleflight`](super::Singleflight) plus due background refreshes —
//! behind one poll loop. Like the underlying session it performs no I/O:
//! [`ServeSession::poll`] hands out **all transmits of all flights** before
//! first asking to wait, so a capable driver overlaps not only the N
//! resolver exchanges of one generation but the exchanges of *different
//! domains' generations* with each other: a cold burst over K domains costs
//! one slowest-exchange round trip, not K of them.
//!
//! [`drive_serve`] is the ready-made driver, batching everything through
//! [`Exchanger::exchange_all`] exactly like [`crate::drive`] does for a
//! single session.

use std::mem;

use sdoh_dns_server::{ExchangeRequest, Exchanger};
use sdoh_netsim::{NetResult, SimInstant};

use super::cache::PoolKey;
use crate::error::{PoolError, PoolResult};
use crate::generator::{GenerationReport, SecurePoolGenerator};
use crate::session::{Action, PoolSession, SessionEvent, TransactionId, Transmit};

/// Identifies one in-flight exchange of a serving session (a flight index
/// plus the flight's own transaction id, flattened into one handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServeTransactionId(usize);

/// One request a serving driver must put on the wire.
#[derive(Debug)]
pub struct ServeTransmit {
    /// Echo this back to [`ServeSession::handle_response`].
    pub transaction: ServeTransactionId,
    /// The cache key whose generation this exchange belongs to.
    pub key: PoolKey,
    /// Name of the resolver the exchange queries.
    pub source: String,
    /// Destination, channel, payload and timeout of the exchange.
    pub request: ExchangeRequest,
}

/// A per-resolver progress event, tagged with the flight it belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeEvent {
    /// The cache key whose generation progressed.
    pub key: PoolKey,
    /// The underlying session event.
    pub event: SessionEvent,
}

/// What a serving driver should do next.
#[derive(Debug)]
pub enum ServeAction {
    /// Send this request.
    Transmit(ServeTransmit),
    /// Everything is in flight; wait for a response or until this deadline.
    WaitUntil(SimInstant),
    /// A resolver of one flight completed; informational.
    Deliver(ServeEvent),
    /// Every flight completed; call [`ServeSession::finish`].
    Done,
}

/// Result of one flight after [`ServeSession::finish`].
#[derive(Debug)]
pub struct FlightOutcome {
    /// The cache key the flight generated.
    pub key: PoolKey,
    /// The generation outcome.
    pub result: PoolResult<GenerationReport>,
}

struct Flight<'a> {
    key: PoolKey,
    session: PoolSession<'a>,
}

/// Sans-IO state machine bundling the generations of a serving batch.
///
/// See the module documentation for the driving protocol.
pub struct ServeSession<'a> {
    flights: Vec<Flight<'a>>,
    /// Flat transaction routing: global id -> (flight, inner id).
    routes: Vec<(usize, TransactionId)>,
}

impl<'a> ServeSession<'a> {
    /// Plans one generation per `(key, seed)` pair over `generator`'s
    /// resolver set. An empty batch is valid and completes immediately.
    ///
    /// # Errors
    ///
    /// Propagates [`PoolError`] from session construction.
    pub fn new(generator: &'a SecurePoolGenerator, batch: Vec<(PoolKey, u64)>) -> PoolResult<Self> {
        let mut flights = Vec::with_capacity(batch.len());
        for (key, seed) in batch {
            let session = generator.session(&key.domain, seed)?;
            flights.push(Flight { key, session });
        }
        Ok(ServeSession {
            flights,
            routes: Vec::new(), // sdoh-lint: allow(hot-path-purity, "an empty Vec::new never allocates")
        })
    }

    /// Number of flights (distinct keys being generated).
    pub fn flight_count(&self) -> usize {
        self.flights.len()
    }

    /// `true` once every flight completed and delivered its events.
    pub fn is_done(&self) -> bool {
        self.flights.iter().all(|f| f.session.is_done())
    }

    /// Advances the state machine; `now` stamps transmit deadlines.
    ///
    /// Transmits of *all* flights are handed out before the first
    /// [`ServeAction::WaitUntil`], so a driver batching them overlaps the
    /// generations of different keys.
    pub fn poll(&mut self, now: SimInstant) -> ServeAction {
        let mut earliest: Option<SimInstant> = None;
        let mut waiting = false;
        for (index, flight) in self.flights.iter_mut().enumerate() {
            match flight.session.poll(now) {
                Action::Deliver(event) => {
                    return ServeAction::Deliver(ServeEvent {
                        key: flight.key.clone(),
                        event,
                    });
                }
                Action::Transmit(Transmit {
                    transaction,
                    source,
                    request,
                }) => {
                    let global = ServeTransactionId(self.routes.len());
                    self.routes.push((index, transaction));
                    return ServeAction::Transmit(ServeTransmit {
                        transaction: global,
                        key: flight.key.clone(),
                        source,
                        request,
                    });
                }
                Action::WaitUntil(deadline) => {
                    waiting = true;
                    earliest = Some(match earliest {
                        Some(current) => current.min(deadline),
                        None => deadline,
                    });
                }
                Action::Done => {}
            }
        }
        match (waiting, earliest) {
            (true, Some(deadline)) => ServeAction::WaitUntil(deadline),
            _ => ServeAction::Done,
        }
    }

    /// Feeds the transport outcome of `id` back to the flight it belongs
    /// to. Outcomes may arrive in any order across flights.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownTransaction`] when `id` is unknown,
    /// [`PoolError::UnknownFlight`] when its route is stale, and the inner
    /// session's error when the exchange already completed.
    pub fn handle_response(
        &mut self,
        id: ServeTransactionId,
        outcome: NetResult<Vec<u8>>,
    ) -> PoolResult<()> {
        let &(flight, inner) = self
            .routes
            .get(id.0)
            .ok_or(PoolError::UnknownTransaction(id.0))?;
        let entry = self
            .flights
            .get_mut(flight)
            .ok_or(PoolError::UnknownFlight(flight))?;
        entry.session.handle_response(inner, outcome)
    }

    /// Completes every flight, returning the per-key outcomes in batch
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::Session`] when exchanges are still outstanding
    /// (per-flight generation failures are reported inside the outcomes,
    /// not here).
    pub fn finish(self) -> PoolResult<Vec<FlightOutcome>> {
        let mut outcomes = Vec::with_capacity(self.flights.len());
        for flight in self.flights {
            if !flight.session.is_done() {
                // sdoh-lint: allow(hot-path-purity, "error formatting happens on the failure path only")
                return Err(PoolError::Session(format!(
                    "finish() called with exchanges of {} outstanding",
                    flight.key
                )));
            }
            outcomes.push(FlightOutcome {
                key: flight.key,
                result: flight.session.finish(),
            });
        }
        Ok(outcomes)
    }
}

impl std::fmt::Debug for ServeSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeSession")
            .field("flights", &self.flights.len())
            .field("routes", &self.routes.len())
            .finish()
    }
}

/// Drives a serving session to completion with the transmits of **all
/// flights overlapped** through one [`Exchanger::exchange_all`] batch per
/// wait point, and returns the delivered [`ServeEvent`]s.
///
/// # Errors
///
/// Propagates [`PoolError`] from the session (transport errors are folded
/// into per-source outcomes, not returned here).
pub fn drive_serve(
    session: &mut ServeSession<'_>,
    exchanger: &mut dyn Exchanger,
) -> PoolResult<Vec<ServeEvent>> {
    // sdoh-lint: allow(hot-path-purity, "an empty Vec::new never allocates")
    let mut events: Vec<ServeEvent> = Vec::new();
    // sdoh-lint: allow(hot-path-purity, "an empty Vec::new never allocates")
    let mut ids: Vec<ServeTransactionId> = Vec::new();
    // sdoh-lint: allow(hot-path-purity, "an empty Vec::new never allocates")
    let mut requests: Vec<ExchangeRequest> = Vec::new();
    loop {
        match session.poll(exchanger.now()) {
            ServeAction::Deliver(event) => events.push(event),
            ServeAction::Transmit(transmit) => {
                ids.push(transmit.transaction);
                requests.push(transmit.request);
            }
            ServeAction::WaitUntil(_) => {
                if requests.is_empty() {
                    return Err(PoolError::Session(
                        "serve session waits on exchanges this driver never sent".into(),
                    ));
                }
                let outcomes = exchanger.exchange_all(mem::take(&mut requests));
                let batch_ids = mem::take(&mut ids);
                for outcome in outcomes {
                    let id = batch_ids.get(outcome.index).copied().ok_or_else(|| {
                        PoolError::Session("exchange outcome for an unsent request".into())
                    })?;
                    session.handle_response(id, outcome.result)?;
                }
            }
            ServeAction::Done => return Ok(events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use crate::serve::cache::AddressFamily;
    use crate::source::{AddressSource, StaticSource};
    use sdoh_dns_server::ClientExchanger;
    use sdoh_doh::{DohMethod, DohServerService, ResolverDirectory};
    use sdoh_netsim::{SimAddr, SimNet};

    fn ip(last: u8) -> std::net::IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    fn key(domain: &str) -> PoolKey {
        PoolKey::new(domain.parse().unwrap(), AddressFamily::V4)
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let sources: Vec<Box<dyn AddressSource>> =
            vec![Box::new(StaticSource::answering("r1", vec![ip(1)]))];
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let mut session = ServeSession::new(&generator, Vec::new()).unwrap();
        assert!(matches!(session.poll(SimInstant::EPOCH), ServeAction::Done));
        assert!(session.is_done());
        assert!(session.finish().unwrap().is_empty());
    }

    #[test]
    fn static_flights_deliver_then_complete() {
        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::answering("r1", vec![ip(1), ip(2)])),
            Box::new(StaticSource::answering("r2", vec![ip(3), ip(4)])),
        ];
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let mut session =
            ServeSession::new(&generator, vec![(key("a.test"), 1), (key("b.test"), 2)]).unwrap();
        assert_eq!(session.flight_count(), 2);
        let mut exchanger_free_events = 0;
        loop {
            match session.poll(SimInstant::EPOCH) {
                ServeAction::Deliver(event) => {
                    exchanger_free_events += 1;
                    assert!(matches!(event.event, SessionEvent::SourceAnswered { .. }));
                }
                ServeAction::Done => break,
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(exchanger_free_events, 4, "2 flights x 2 sources");
        let outcomes = session.finish().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].key, key("a.test"));
        assert_eq!(outcomes[0].result.as_ref().unwrap().pool.len(), 4);
    }

    #[test]
    fn doh_flights_hand_out_all_transmits_before_waiting() {
        // Two domains over three DoH resolvers: all six exchanges must be
        // offered before the first WaitUntil, so one batch overlaps the two
        // generations.
        let net = SimNet::new(41);
        let directory = ResolverDirectory::well_known(41);
        let infos = directory.take(3);
        let mut zone = sdoh_dns_server::Zone::new("test".parse().unwrap());
        for domain in ["a.test", "b.test"] {
            for i in 1..=2u8 {
                zone.add_address(domain.parse().unwrap(), ip(i));
            }
        }
        let mut catalog = sdoh_dns_server::Catalog::new();
        catalog.add_zone(zone);
        for info in &infos {
            net.register(
                info.addr,
                DohServerService::new(
                    info.clone(),
                    sdoh_dns_server::Authority::new(catalog.clone()),
                ),
            );
        }
        let sources: Vec<Box<dyn AddressSource>> = infos
            .iter()
            .map(|info| {
                Box::new(crate::source::DohSource::new(info.clone()).method(DohMethod::Get))
                    as Box<dyn AddressSource>
            })
            .collect();
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let mut session =
            ServeSession::new(&generator, vec![(key("a.test"), 7), (key("b.test"), 8)]).unwrap();

        let mut transmits = Vec::new();
        loop {
            match session.poll(net.now()) {
                ServeAction::Transmit(t) => transmits.push(t),
                ServeAction::WaitUntil(_) => break,
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(transmits.len(), 6, "2 flights x 3 resolvers");
        assert_eq!(
            transmits.iter().filter(|t| t.key == key("a.test")).count(),
            3
        );

        // Feed responses back across flights in reverse order; both reports
        // must come out right regardless.
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        for t in transmits.into_iter().rev() {
            let reply = exchanger
                .exchange(
                    t.request.dst,
                    t.request.channel,
                    &t.request.payload,
                    t.request.timeout,
                )
                .unwrap();
            session.handle_response(t.transaction, Ok(reply)).unwrap();
        }
        while let ServeAction::Deliver(_) = session.poll(net.now()) {}
        let outcomes = session.finish().unwrap();
        assert_eq!(outcomes.len(), 2);
        for outcome in &outcomes {
            assert_eq!(outcome.result.as_ref().unwrap().pool.len(), 6);
        }
    }

    #[test]
    fn drive_serve_batches_across_flights() {
        let net = SimNet::new(42);
        let directory = ResolverDirectory::well_known(42);
        let infos = directory.take(2);
        let mut zone = sdoh_dns_server::Zone::new("test".parse().unwrap());
        zone.add_address("a.test".parse().unwrap(), ip(1));
        zone.add_address("b.test".parse().unwrap(), ip(2));
        let mut catalog = sdoh_dns_server::Catalog::new();
        catalog.add_zone(zone);
        for info in &infos {
            net.register(
                info.addr,
                DohServerService::new(
                    info.clone(),
                    sdoh_dns_server::Authority::new(catalog.clone()),
                ),
            );
        }
        let sources: Vec<Box<dyn AddressSource>> = infos
            .iter()
            .map(|info| {
                Box::new(crate::source::DohSource::new(info.clone()).method(DohMethod::Get))
                    as Box<dyn AddressSource>
            })
            .collect();
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let mut session =
            ServeSession::new(&generator, vec![(key("a.test"), 1), (key("b.test"), 2)]).unwrap();
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let t0 = exchanger.now();
        let events = drive_serve(&mut session, &mut exchanger).unwrap();
        let elapsed = exchanger.now().saturating_duration_since(t0);
        assert_eq!(events.len(), 4, "2 flights x 2 resolvers");
        let outcomes = session.finish().unwrap();
        assert_eq!(outcomes.len(), 2);
        // Overlapped: two generations cost one batch, which is well under
        // the four sequential round trips they contain.
        let single_flight_budget = std::time::Duration::from_millis(500);
        assert!(elapsed < single_flight_budget, "elapsed {elapsed:?}");
    }

    #[test]
    fn misuse_is_reported_not_panicking() {
        let sources: Vec<Box<dyn AddressSource>> =
            vec![Box::new(StaticSource::answering("r1", vec![ip(1)]))];
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let mut session = ServeSession::new(&generator, vec![(key("a.test"), 1)]).unwrap();
        let err = session
            .handle_response(ServeTransactionId(99), Ok(Vec::new()))
            .unwrap_err();
        assert_eq!(err, PoolError::UnknownTransaction(99));
    }
}
