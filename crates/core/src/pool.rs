//! The address pool produced by secure pool generation, with per-address
//! provenance.

use std::collections::BTreeMap;
use std::fmt;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

/// One slot in the generated pool.
///
/// Algorithm 1 concatenates the (truncated) per-resolver lists, so the same
/// address may occupy several slots; the paper requires the application to
/// "handle multiple instances of the same address in the response as
/// individual servers" (Section IV). Each entry therefore records which
/// resolver contributed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// The server address.
    pub address: IpAddr,
    /// Name of the resolver whose answer contributed this slot.
    pub source: String,
}

/// The combined server address pool.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressPool {
    entries: Vec<PoolEntry>,
}

impl AddressPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        AddressPool::default()
    }

    /// Creates a pool from entries.
    pub fn from_entries(entries: Vec<PoolEntry>) -> Self {
        AddressPool { entries }
    }

    /// Appends an entry.
    pub fn push(&mut self, address: IpAddr, source: impl Into<String>) {
        self.entries.push(PoolEntry {
            address,
            source: source.into(),
        });
    }

    /// Number of slots in the pool (duplicates counted individually).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the pool has no slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries in pool order.
    pub fn iter(&self) -> impl Iterator<Item = &PoolEntry> {
        self.entries.iter()
    }

    /// The pool as a flat address list, duplicates included — the form an
    /// application such as Chronos consumes.
    pub fn addresses(&self) -> Vec<IpAddr> {
        self.entries.iter().map(|e| e.address).collect()
    }

    /// The distinct addresses in the pool, in first-appearance order.
    pub fn unique_addresses(&self) -> Vec<IpAddr> {
        let mut seen = Vec::new();
        for entry in &self.entries {
            if !seen.contains(&entry.address) {
                seen.push(entry.address);
            }
        }
        seen
    }

    /// How many slots each distinct address occupies.
    pub fn multiplicity(&self) -> BTreeMap<IpAddr, usize> {
        let mut counts = BTreeMap::new();
        for entry in &self.entries {
            *counts.entry(entry.address).or_insert(0) += 1;
        }
        counts
    }

    /// Number of slots contributed by the named resolver.
    pub fn slots_from(&self, source: &str) -> usize {
        self.entries.iter().filter(|e| e.source == source).count()
    }

    /// The fraction of slots whose address satisfies `is_benign`.
    ///
    /// This is the quantity the paper's guarantee speaks about: the pool
    /// must contain a fraction of at least `x` benign servers.
    pub fn benign_fraction<F: Fn(IpAddr) -> bool>(&self, is_benign: F) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let benign = self.entries.iter().filter(|e| is_benign(e.address)).count();
        benign as f64 / self.entries.len() as f64
    }

    /// Splits the pool into per-family sub-pools (IPv4, IPv6).
    pub fn split_by_family(&self) -> (AddressPool, AddressPool) {
        let mut v4 = AddressPool::new();
        let mut v6 = AddressPool::new();
        for entry in &self.entries {
            match entry.address {
                IpAddr::V4(_) => v4.entries.push(entry.clone()),
                IpAddr::V6(_) => v6.entries.push(entry.clone()),
            }
        }
        (v4, v6)
    }

    /// Concatenates two pools.
    pub fn extend_from(&mut self, other: &AddressPool) {
        self.entries.extend(other.entries.iter().cloned());
    }
}

impl fmt::Display for AddressPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "address pool ({} slots):", self.len())?;
        for entry in &self.entries {
            writeln!(f, "  {} (via {})", entry.address, entry.source)?;
        }
        Ok(())
    }
}

impl IntoIterator for AddressPool {
    type Item = PoolEntry;
    type IntoIter = std::vec::IntoIter<PoolEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<PoolEntry> for AddressPool {
    fn from_iter<T: IntoIterator<Item = PoolEntry>>(iter: T) -> Self {
        AddressPool {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    fn sample_pool() -> AddressPool {
        let mut pool = AddressPool::new();
        pool.push(ip(1), "dns.google");
        pool.push(ip(2), "dns.google");
        pool.push(ip(1), "cloudflare-dns.com");
        pool.push(ip(3), "cloudflare-dns.com");
        pool.push(ip(1), "dns.quad9.net");
        pool.push("2001:db8::1".parse().unwrap(), "dns.quad9.net");
        pool
    }

    #[test]
    fn len_and_addresses_count_duplicates() {
        let pool = sample_pool();
        assert_eq!(pool.len(), 6);
        assert_eq!(pool.addresses().len(), 6);
        assert_eq!(pool.unique_addresses().len(), 4);
        assert!(!pool.is_empty());
        assert_eq!(pool.iter().count(), 6);
    }

    #[test]
    fn multiplicity_counts_slots_per_address() {
        let pool = sample_pool();
        let counts = pool.multiplicity();
        assert_eq!(counts[&ip(1)], 3);
        assert_eq!(counts[&ip(2)], 1);
    }

    #[test]
    fn slots_from_tracks_provenance() {
        let pool = sample_pool();
        assert_eq!(pool.slots_from("dns.google"), 2);
        assert_eq!(pool.slots_from("dns.quad9.net"), 2);
        assert_eq!(pool.slots_from("unknown"), 0);
    }

    #[test]
    fn benign_fraction_over_slots() {
        let pool = sample_pool();
        // Treat 203.0.113.1 as malicious: 3 of 6 slots.
        let fraction = pool.benign_fraction(|addr| addr != ip(1));
        assert!((fraction - 0.5).abs() < 1e-12);
        assert_eq!(AddressPool::new().benign_fraction(|_| true), 0.0);
    }

    #[test]
    fn split_by_family() {
        let (v4, v6) = sample_pool().split_by_family();
        assert_eq!(v4.len(), 5);
        assert_eq!(v6.len(), 1);
    }

    #[test]
    fn collect_iterate_display() {
        let pool: AddressPool = sample_pool().into_iter().collect();
        assert_eq!(pool.len(), 6);
        let shown = pool.to_string();
        assert!(shown.contains("203.0.113.1"));
        assert!(shown.contains("dns.google"));
        let mut extended = AddressPool::new();
        extended.extend_from(&pool);
        assert_eq!(extended.len(), 6);
        let rebuilt = AddressPool::from_entries(pool.iter().cloned().collect());
        assert_eq!(rebuilt, pool);
    }
}
