//! Checking the paper's security guarantee against ground truth.
//!
//! Section II: "for the application to be secure, this pool must include a
//! fraction of at least `x` benign servers". Experiments know which
//! addresses are attacker-controlled, so they can check whether a generated
//! pool actually satisfies the guarantee.

use std::collections::HashSet;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::pool::AddressPool;

/// Ground truth about which server addresses are attacker-controlled.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    malicious: HashSet<IpAddr>,
}

impl GroundTruth {
    /// Creates ground truth with no malicious addresses.
    pub fn all_benign() -> Self {
        GroundTruth::default()
    }

    /// Creates ground truth from a set of attacker-controlled addresses.
    pub fn with_malicious<I: IntoIterator<Item = IpAddr>>(addresses: I) -> Self {
        GroundTruth {
            malicious: addresses.into_iter().collect(),
        }
    }

    /// Marks an address as attacker-controlled.
    pub fn mark_malicious(&mut self, address: IpAddr) {
        self.malicious.insert(address);
    }

    /// Marks every address in `addresses` as attacker-controlled —
    /// composing ground truth from several attacker footholds (compromised
    /// resolvers' server blocks, malicious servers planted inside an
    /// otherwise honest pool, …).
    pub fn extend_malicious<I: IntoIterator<Item = IpAddr>>(&mut self, addresses: I) {
        self.malicious.extend(addresses);
    }

    /// Returns `true` when `address` is attacker-controlled.
    pub fn is_malicious(&self, address: IpAddr) -> bool {
        self.malicious.contains(&address)
    }

    /// Number of known-malicious addresses.
    pub fn malicious_count(&self) -> usize {
        self.malicious.len()
    }
}

/// The verdict on one generated pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuaranteeCheck {
    /// Fraction of pool slots held by benign servers.
    pub benign_fraction: f64,
    /// Fraction of pool slots held by attacker-controlled servers.
    pub malicious_fraction: f64,
    /// The threshold `x` the check was performed against.
    pub required_fraction: f64,
    /// Whether the pool meets the guarantee (`benign_fraction >= x`).
    pub holds: bool,
    /// Number of slots in the pool.
    pub pool_size: usize,
}

/// Checks whether `pool` contains at least a fraction `required` of benign
/// servers according to `truth`.
pub fn check_guarantee(pool: &AddressPool, truth: &GroundTruth, required: f64) -> GuaranteeCheck {
    let benign_fraction = pool.benign_fraction(|addr| !truth.is_malicious(addr));
    let holds = !pool.is_empty() && benign_fraction >= required;
    GuaranteeCheck {
        benign_fraction,
        malicious_fraction: if pool.is_empty() {
            0.0
        } else {
            1.0 - benign_fraction
        },
        required_fraction: required,
        holds,
        pool_size: pool.len(),
    }
}

/// Convenience: does the attacker control at least `y` of the pool? This is
/// the attacker's goal in the paper's Section III-a analysis.
pub fn attacker_controls_fraction(pool: &AddressPool, truth: &GroundTruth, y: f64) -> bool {
    if pool.is_empty() {
        return false;
    }
    let malicious = 1.0 - pool.benign_fraction(|addr| !truth.is_malicious(addr));
    malicious >= y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    fn evil(last: u8) -> IpAddr {
        format!("198.18.0.{last}").parse().unwrap()
    }

    fn pool(benign: usize, malicious: usize) -> (AddressPool, GroundTruth) {
        let mut p = AddressPool::new();
        for i in 0..benign {
            p.push(ip(i as u8 + 1), "benign-resolver");
        }
        for i in 0..malicious {
            p.push(evil(i as u8 + 1), "compromised-resolver");
        }
        let truth = GroundTruth::with_malicious((1..=malicious).map(|i| evil(i as u8)));
        (p, truth)
    }

    #[test]
    fn guarantee_holds_with_honest_majority() {
        let (p, truth) = pool(6, 3);
        let check = check_guarantee(&p, &truth, 0.5);
        assert!(check.holds);
        assert!((check.benign_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert!((check.malicious_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(check.pool_size, 9);
        assert!(!attacker_controls_fraction(&p, &truth, 0.5));
    }

    #[test]
    fn guarantee_fails_with_malicious_majority() {
        let (p, truth) = pool(2, 6);
        let check = check_guarantee(&p, &truth, 0.5);
        assert!(!check.holds);
        assert!(attacker_controls_fraction(&p, &truth, 0.5));
    }

    #[test]
    fn empty_pool_never_satisfies_the_guarantee() {
        let truth = GroundTruth::all_benign();
        let check = check_guarantee(&AddressPool::new(), &truth, 0.5);
        assert!(!check.holds);
        assert_eq!(check.pool_size, 0);
        assert!(!attacker_controls_fraction(
            &AddressPool::new(),
            &truth,
            0.1
        ));
    }

    #[test]
    fn ground_truth_bookkeeping() {
        let mut truth = GroundTruth::all_benign();
        assert_eq!(truth.malicious_count(), 0);
        truth.mark_malicious(evil(1));
        assert!(truth.is_malicious(evil(1)));
        assert!(!truth.is_malicious(ip(1)));
        assert_eq!(truth.malicious_count(), 1);
        truth.extend_malicious([evil(2), evil(3), evil(1)]);
        assert_eq!(truth.malicious_count(), 3, "extension deduplicates");
        assert!(truth.is_malicious(evil(3)));
    }

    #[test]
    fn exact_threshold_is_satisfied() {
        let (p, truth) = pool(3, 3);
        let check = check_guarantee(&p, &truth, 0.5);
        assert!(check.holds, "exactly x benign still satisfies >= x");
    }
}
