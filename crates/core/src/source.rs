//! Address sources: the per-resolver lookup abstraction Algorithm 1 fans
//! out over.
//!
//! A source exposes two layers:
//!
//! * the blocking [`AddressSource::fetch`], which drives one lookup to
//!   completion over an [`Exchanger`] — convenient for tests and simple
//!   callers, and
//! * the sans-IO halves [`AddressSource::start_fetch`] /
//!   [`AddressSource::handle_response`], which *describe* the exchange so a
//!   session driver can keep many lookups from many sources in flight
//!   concurrently ([`crate::PoolSession`]).
//!
//! `fetch` is a provided method implemented on top of the sans-IO halves,
//! so a source only implements the non-blocking form.

use std::any::Any;
use std::net::IpAddr;

use sdoh_dns_server::{DnsClient, ExchangeRequest, Exchanger};
use sdoh_dns_wire::{Name, Rcode, RrType};
use sdoh_doh::{DohClient, DohMethod, ResolverInfo};
use sdoh_netsim::{NetResult, SimAddr};

/// Why one resolver failed to produce an address list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The transport failed (timeout, unreachable, partition).
    Transport(String),
    /// The resolver answered with an error response code.
    ErrorResponse(String),
    /// The answer could not be parsed or validated.
    Protocol(String),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Transport(msg) => write!(f, "transport failure: {msg}"),
            FetchError::ErrorResponse(msg) => write!(f, "error response: {msg}"),
            FetchError::Protocol(msg) => write!(f, "protocol failure: {msg}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Opaque per-source state carried between [`AddressSource::start_fetch`]
/// and [`AddressSource::handle_response`].
///
/// Each source stashes whatever it needs to decode the eventual reply (a
/// DoH source keeps its HTTP/2 connection and expected question in here);
/// drivers just hand the value back untouched.
#[derive(Debug)]
pub struct PendingFetch(Box<dyn Any>);

impl PendingFetch {
    /// Wraps source-private in-flight state.
    pub fn new<T: Any>(state: T) -> Self {
        PendingFetch(Box::new(state))
    }

    /// Recovers the in-flight state; `None` when the pending value belongs
    /// to a different source type (a driver bug).
    pub fn downcast<T: Any>(self) -> Option<T> {
        self.0.downcast::<T>().ok().map(|b| *b)
    }
}

/// How one fetch begins: either an exchange the driver must perform, or an
/// immediately available answer (static/test sources).
#[derive(Debug)]
pub enum FetchStart {
    /// Perform this exchange and hand the outcome to
    /// [`AddressSource::handle_response`].
    Transmit {
        /// What to put on the wire.
        request: ExchangeRequest,
        /// State to return with the reply.
        pending: PendingFetch,
    },
    /// The lookup resolved without any network traffic.
    Immediate(Result<Vec<IpAddr>, FetchError>),
}

/// A single source of address lists — one DoH resolver, one plain resolver,
/// or a test stub.
///
/// Sources are `Send` so a [`SecurePoolGenerator`](crate::SecurePoolGenerator)
/// (and everything layered on it, up to the serving subsystem) can be moved
/// into a worker thread of a real-socket runtime. Sources built from plain
/// configuration data (all the in-tree ones) satisfy the bound for free; a
/// source sharing state with its test must use `Arc`/atomics instead of
/// `Rc`/`Cell`.
pub trait AddressSource: Send {
    /// A stable, human-readable identifier (used for provenance in the
    /// generated pool).
    fn source_name(&self) -> String;

    /// Sans-IO first half of one lookup: describes the exchange needed to
    /// resolve the address records of `rtype` for `domain`. `id` is the
    /// transaction id to use if the source's protocol needs one.
    fn start_fetch(&self, domain: &Name, rtype: RrType, id: u16) -> FetchStart;

    /// Sans-IO second half: decodes the transport outcome of the exchange
    /// described by [`AddressSource::start_fetch`] into an address list.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the transport failed or the reply is
    /// invalid; an *empty list* is not an error (it is the empty-answer case
    /// Algorithm 1 must handle).
    fn handle_response(
        &self,
        pending: PendingFetch,
        outcome: NetResult<Vec<u8>>,
    ) -> Result<Vec<IpAddr>, FetchError>;

    /// Looks up the address records of `rtype` (A or AAAA) for `domain`,
    /// returning them in answer order. Blocking convenience driver over the
    /// sans-IO halves.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the lookup fails; an *empty list* is not
    /// an error (it is the empty-answer case Algorithm 1 must handle).
    fn fetch(
        &self,
        exchanger: &mut dyn Exchanger,
        domain: &Name,
        rtype: RrType,
    ) -> Result<Vec<IpAddr>, FetchError> {
        match self.start_fetch(domain, rtype, exchanger.next_id()) {
            FetchStart::Immediate(result) => result,
            FetchStart::Transmit { request, pending } => {
                let outcome = exchanger.exchange(
                    request.dst,
                    request.channel,
                    &request.payload,
                    request.timeout,
                );
                self.handle_response(pending, outcome)
            }
        }
    }
}

/// An [`AddressSource`] backed by a DoH resolver (the paper's design).
#[derive(Debug, Clone)]
pub struct DohSource {
    client: DohClient,
    name: String,
}

impl DohSource {
    /// Creates a source for the given public resolver using the GET method.
    pub fn new(info: ResolverInfo) -> Self {
        DohSource {
            name: info.name.clone(),
            client: DohClient::new(info),
        }
    }

    /// Selects the RFC 8484 method used for queries.
    pub fn method(mut self, method: DohMethod) -> Self {
        self.client = self.client.method(method);
        self
    }
}

fn doh_error(e: sdoh_doh::DohError) -> FetchError {
    match e {
        sdoh_doh::DohError::Network(err) => FetchError::Transport(err.to_string()),
        sdoh_doh::DohError::HttpStatus(code) => {
            FetchError::ErrorResponse(format!("http status {code}"))
        }
        other => FetchError::Protocol(other.to_string()),
    }
}

impl AddressSource for DohSource {
    fn source_name(&self) -> String {
        self.name.clone()
    }

    fn start_fetch(&self, domain: &Name, rtype: RrType, id: u16) -> FetchStart {
        match self.client.begin_query(id, domain, rtype) {
            // DohTransmit and ExchangeRequest are both re-exports of the
            // simulator's batch-request type, so the transmit passes through.
            Ok((transmit, prepared)) => FetchStart::Transmit {
                request: transmit,
                pending: PendingFetch::new((prepared, rtype)),
            },
            Err(e) => FetchStart::Immediate(Err(doh_error(e))),
        }
    }

    fn handle_response(
        &self,
        pending: PendingFetch,
        outcome: NetResult<Vec<u8>>,
    ) -> Result<Vec<IpAddr>, FetchError> {
        let (prepared, rtype) = pending
            .downcast::<(sdoh_doh::PreparedDohQuery, RrType)>()
            .ok_or_else(|| FetchError::Protocol("mismatched pending fetch state".into()))?;
        let reply = outcome.map_err(|e| FetchError::Transport(e.to_string()))?;
        let response = self
            .client
            .finish_query(prepared, &reply)
            .map_err(doh_error)?;
        if response.header.rcode != Rcode::NoError && response.header.rcode != Rcode::NxDomain {
            return Err(FetchError::ErrorResponse(response.header.rcode.to_string()));
        }
        Ok(sdoh_dns_wire::addresses_of_type(&response, rtype))
    }
}

/// An [`AddressSource`] backed by a classic plain-DNS resolver: the
/// baseline configuration the paper's attacks defeat.
#[derive(Debug, Clone)]
pub struct PlainDnsSource {
    client: DnsClient,
    name: String,
}

impl PlainDnsSource {
    /// Creates a plain-DNS source querying `resolver`.
    pub fn new(name: impl Into<String>, resolver: SimAddr) -> Self {
        PlainDnsSource {
            client: DnsClient::new(resolver),
            name: name.into(),
        }
    }
}

fn dns_error(e: sdoh_dns_server::ResolveError) -> FetchError {
    match e {
        sdoh_dns_server::ResolveError::Network(err) => FetchError::Transport(err.to_string()),
        sdoh_dns_server::ResolveError::ErrorResponse(rcode) => {
            FetchError::ErrorResponse(rcode.to_string())
        }
        other => FetchError::Protocol(other.to_string()),
    }
}

impl AddressSource for PlainDnsSource {
    fn source_name(&self) -> String {
        self.name.clone()
    }

    fn start_fetch(&self, domain: &Name, rtype: RrType, id: u16) -> FetchStart {
        match self.client.begin_query(id, domain, rtype) {
            Ok((request, prepared)) => FetchStart::Transmit {
                request,
                pending: PendingFetch::new((prepared, rtype)),
            },
            Err(e) => FetchStart::Immediate(Err(dns_error(e))),
        }
    }

    fn handle_response(
        &self,
        pending: PendingFetch,
        outcome: NetResult<Vec<u8>>,
    ) -> Result<Vec<IpAddr>, FetchError> {
        let (prepared, rtype) = pending
            .downcast::<(sdoh_dns_server::PreparedDnsQuery, RrType)>()
            .ok_or_else(|| FetchError::Protocol("mismatched pending fetch state".into()))?;
        let reply = outcome.map_err(|e| FetchError::Transport(e.to_string()))?;
        let response = self
            .client
            .finish_query(prepared, &reply)
            .map_err(dns_error)?;
        Ok(sdoh_dns_wire::addresses_of_type(&response, rtype))
    }
}

/// A source with a fixed answer, used in unit tests and analytical
/// experiments where the DNS/DoH transport is not the variable under study.
#[derive(Debug, Clone)]
pub struct StaticSource {
    name: String,
    v4: Vec<IpAddr>,
    v6: Vec<IpAddr>,
    fail: bool,
}

impl StaticSource {
    /// A source that always returns the given IPv4 addresses.
    pub fn answering(name: impl Into<String>, addresses: Vec<IpAddr>) -> Self {
        let (v4, v6) = addresses.into_iter().partition(|a| a.is_ipv4());
        StaticSource {
            name: name.into(),
            v4,
            v6,
            fail: false,
        }
    }

    /// A source that always fails with a transport error.
    pub fn failing(name: impl Into<String>) -> Self {
        StaticSource {
            name: name.into(),
            v4: Vec::new(),
            v6: Vec::new(),
            fail: true,
        }
    }
}

impl AddressSource for StaticSource {
    fn source_name(&self) -> String {
        self.name.clone()
    }

    fn start_fetch(&self, _domain: &Name, rtype: RrType, _id: u16) -> FetchStart {
        if self.fail {
            return FetchStart::Immediate(Err(FetchError::Transport(
                "static source configured to fail".into(),
            )));
        }
        FetchStart::Immediate(Ok(match rtype {
            RrType::Aaaa => self.v6.clone(),
            _ => self.v4.clone(),
        }))
    }

    fn handle_response(
        &self,
        _pending: PendingFetch,
        _outcome: NetResult<Vec<u8>>,
    ) -> Result<Vec<IpAddr>, FetchError> {
        Err(FetchError::Protocol(
            "static sources never have in-flight exchanges".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdoh_dns_server::{Authority, Catalog, ClientExchanger, Do53Service, Zone};
    use sdoh_doh::{DohServerService, ResolverDirectory};
    use sdoh_netsim::SimNet;

    fn pool_zone_catalog() -> Catalog {
        let mut zone = Zone::new("ntp.org".parse().unwrap());
        for i in 1..=3u8 {
            zone.add_address(
                "pool.ntp.org".parse().unwrap(),
                format!("203.0.113.{i}").parse().unwrap(),
            );
        }
        zone.add_address(
            "pool.ntp.org".parse().unwrap(),
            "2001:db8::5".parse().unwrap(),
        );
        let mut catalog = Catalog::new();
        catalog.add_zone(zone);
        catalog
    }

    #[test]
    fn doh_source_fetches_addresses() {
        let net = SimNet::new(61);
        let info = ResolverDirectory::well_known(61).resolvers()[0].clone();
        net.register(
            info.addr,
            DohServerService::new(info.clone(), Authority::new(pool_zone_catalog())),
        );
        let source = DohSource::new(info).method(DohMethod::Post);
        assert_eq!(source.source_name(), "dns.google");
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
        let v4 = source
            .fetch(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(v4.len(), 3);
        let v6 = source
            .fetch(
                &mut exchanger,
                &"pool.ntp.org".parse().unwrap(),
                RrType::Aaaa,
            )
            .unwrap();
        assert_eq!(v6.len(), 1);
    }

    #[test]
    fn doh_source_reports_transport_failure() {
        let net = SimNet::new(62);
        let info = ResolverDirectory::well_known(62).resolvers()[0].clone();
        let source = DohSource::new(info);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 50000));
        let err = source
            .fetch(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap_err();
        assert!(matches!(err, FetchError::Transport(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn plain_source_fetches_addresses() {
        let net = SimNet::new(63);
        let resolver_addr = SimAddr::v4(10, 0, 0, 53, 53);
        net.register(
            resolver_addr,
            Do53Service::new(Authority::new(pool_zone_catalog())),
        );
        let source = PlainDnsSource::new("isp-resolver", resolver_addr);
        assert_eq!(source.source_name(), "isp-resolver");
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let addrs = source
            .fetch(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert_eq!(addrs.len(), 3);
    }

    #[test]
    fn static_source_modes() {
        let net = SimNet::new(64);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let source = StaticSource::answering(
            "stub",
            vec![
                "198.51.100.1".parse().unwrap(),
                "2001:db8::9".parse().unwrap(),
            ],
        );
        assert_eq!(
            source
                .fetch(&mut exchanger, &"x.test".parse().unwrap(), RrType::A)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            source
                .fetch(&mut exchanger, &"x.test".parse().unwrap(), RrType::Aaaa)
                .unwrap()
                .len(),
            1
        );
        let failing = StaticSource::failing("dead");
        assert!(failing
            .fetch(&mut exchanger, &"x.test".parse().unwrap(), RrType::A)
            .is_err());
    }
}
