//! The secure server-pool generation procedure (Algorithm 1 of the paper)
//! and its variants.
//!
//! [`SecurePoolGenerator`] holds the configured resolver set; the actual
//! lookup logic lives in the sans-IO [`PoolSession`](crate::PoolSession)
//! state machine, for which this type is a thin convenience driver:
//! [`SecurePoolGenerator::generate`] fans the N resolver exchanges out
//! concurrently through [`Exchanger::exchange_all`], and
//! [`SecurePoolGenerator::generate_sequential`] preserves the historical
//! one-exchange-at-a-time behaviour for comparisons.

use sdoh_dns_server::Exchanger;
use sdoh_dns_wire::Name;
use sdoh_doh::{DohMethod, ResolverDirectory};
use serde::{Deserialize, Serialize};

use crate::config::{CombinationMode, PoolConfig};
use crate::error::{PoolError, PoolResult};
use crate::pool::AddressPool;
use crate::session::{drive, drive_sequential, PoolSession};
use crate::source::{AddressSource, DohSource};

/// Outcome of querying one resolver during pool generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceOutcome {
    /// The resolver answered with this many addresses (possibly zero).
    Answered(usize),
    /// The resolver failed; the string describes why.
    Failed(String),
}

impl SourceOutcome {
    /// Returns `true` for the `Answered` variant.
    pub fn is_answered(&self) -> bool {
        matches!(self, SourceOutcome::Answered(_))
    }
}

/// A full record of one pool-generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// The generated pool.
    pub pool: AddressPool,
    /// The combination mode that was used.
    pub mode: CombinationMode,
    /// Per-resolver outcomes, in configuration order: `(name, outcome)`.
    pub sources: Vec<(String, SourceOutcome)>,
    /// The truncation length applied per queried record type
    /// (`("A", len)` / `("AAAA", len)` / `("A+AAAA", len)`); empty for the
    /// majority-vote mode.
    pub truncate_lengths: Vec<(String, usize)>,
}

impl GenerationReport {
    /// Number of resolvers that produced a usable answer.
    pub fn answered(&self) -> usize {
        self.sources.iter().filter(|(_, o)| o.is_answered()).count()
    }

    /// Number of resolvers that failed.
    pub fn failed(&self) -> usize {
        self.sources.len() - self.answered()
    }

    /// Returns the pool, or [`PoolError::EmptyPool`] when generation
    /// produced no usable addresses (e.g. the empty-answer DoS of
    /// footnote 2).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::EmptyPool`] when the pool has no entries.
    pub fn require_non_empty(&self) -> PoolResult<&AddressPool> {
        if self.pool.is_empty() {
            Err(PoolError::EmptyPool)
        } else {
            Ok(&self.pool)
        }
    }
}

/// The secure pool generator: a set of distributed DoH resolvers plus a
/// combination policy.
pub struct SecurePoolGenerator {
    config: PoolConfig,
    sources: Vec<Box<dyn AddressSource>>,
}

impl SecurePoolGenerator {
    /// Creates a generator from a configuration and a set of sources.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::NoResolvers`] for an empty source list and
    /// configuration validation errors.
    pub fn new(config: PoolConfig, sources: Vec<Box<dyn AddressSource>>) -> PoolResult<Self> {
        config.validate()?;
        if sources.is_empty() {
            return Err(PoolError::NoResolvers);
        }
        Ok(SecurePoolGenerator { config, sources })
    }

    /// Convenience constructor: use the first `n` resolvers of a directory
    /// over DoH with the given method.
    ///
    /// # Errors
    ///
    /// Same as [`SecurePoolGenerator::new`].
    pub fn from_directory(
        config: PoolConfig,
        directory: &ResolverDirectory,
        n: usize,
        method: DohMethod,
    ) -> PoolResult<Self> {
        let sources: Vec<Box<dyn AddressSource>> = directory
            .take(n)
            .into_iter()
            .map(|info| Box::new(DohSource::new(info).method(method)) as Box<dyn AddressSource>)
            .collect();
        SecurePoolGenerator::new(config, sources)
    }

    /// The configuration in use.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Replaces the upstream resolver set on a live generator — the
    /// operational response to a compromised or retired resolver. The new
    /// set takes effect from the next generation; in-flight sessions
    /// (which borrow the old sources) are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::NoResolvers`] for an empty set, leaving the
    /// current set in place.
    pub fn replace_sources(&mut self, sources: Vec<Box<dyn AddressSource>>) -> PoolResult<()> {
        if sources.is_empty() {
            return Err(PoolError::NoResolvers);
        }
        self.sources = sources;
        Ok(())
    }

    /// Replaces the pool-generation configuration on a live generator,
    /// validating it first.
    ///
    /// # Errors
    ///
    /// Returns the validation error of [`PoolConfig::validate`], leaving
    /// the current configuration in place.
    pub fn set_config(&mut self, config: PoolConfig) -> PoolResult<()> {
        config.validate()?;
        self.config = config;
        Ok(())
    }

    /// Number of configured resolvers (`N` in the paper's analysis).
    pub fn resolver_count(&self) -> usize {
        self.sources.len()
    }

    /// Plans one lookup of `domain` as a sans-IO [`PoolSession`] without
    /// performing any I/O. `seed` feeds the deterministic DNS transaction-id
    /// stream; drivers that don't care pass any constant.
    ///
    /// # Errors
    ///
    /// Configuration validation errors (the constructor already validated,
    /// so in practice this cannot fail for a constructed generator).
    pub fn session(&self, domain: &Name, seed: u64) -> PoolResult<PoolSession<'_>> {
        PoolSession::new(self.config.clone(), &self.sources, domain, seed)
    }

    /// Runs pool generation for `domain` according to the configured
    /// dual-stack policy, querying all N resolvers **concurrently**: over a
    /// transport with in-flight concurrency (the simulator-backed
    /// exchangers), the lookup costs the slowest resolver's round trips,
    /// not the sum.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::NotEnoughResponses`] when fewer resolvers than
    /// `min_responses` produced usable answers.
    pub fn generate(
        &self,
        exchanger: &mut dyn Exchanger,
        domain: &Name,
    ) -> PoolResult<GenerationReport> {
        let mut session = self.session(domain, seed_from(exchanger))?;
        drive(&mut session, exchanger)?;
        session.finish()
    }

    /// Runs pool generation querying the resolvers **one at a time** — the
    /// pre-session behaviour, kept for latency comparisons and transports
    /// without concurrency support. Produces the same report as
    /// [`SecurePoolGenerator::generate`] whenever answers don't depend on
    /// timing.
    ///
    /// # Errors
    ///
    /// Same as [`SecurePoolGenerator::generate`].
    pub fn generate_sequential(
        &self,
        exchanger: &mut dyn Exchanger,
        domain: &Name,
    ) -> PoolResult<GenerationReport> {
        let mut session = self.session(domain, seed_from(exchanger))?;
        drive_sequential(&mut session, exchanger)?;
        session.finish()
    }
}

/// Derives the session id seed from the exchanger's randomness, keeping the
/// DNS transaction ids tied to the simulation seed.
pub(crate) fn seed_from(exchanger: &mut dyn Exchanger) -> u64 {
    (u64::from(exchanger.next_id()) << 16) | u64::from(exchanger.next_id())
}

impl std::fmt::Debug for SecurePoolGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecurePoolGenerator")
            .field("config", &self.config)
            .field("resolvers", &self.sources.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DualStackPolicy, FailurePolicy};
    use crate::source::StaticSource;
    use sdoh_dns_server::ClientExchanger;
    use sdoh_netsim::{SimAddr, SimNet};
    use std::net::IpAddr;

    fn ip(last: u8) -> IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    fn evil(last: u8) -> IpAddr {
        format!("198.18.0.{last}").parse().unwrap()
    }

    fn boxed(source: StaticSource) -> Box<dyn AddressSource> {
        Box::new(source)
    }

    fn run(
        config: PoolConfig,
        sources: Vec<Box<dyn AddressSource>>,
    ) -> PoolResult<GenerationReport> {
        let net = SimNet::new(1);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let generator = SecurePoolGenerator::new(config, sources)?;
        generator.generate(&mut exchanger, &"pool.ntp.org".parse().unwrap())
    }

    #[test]
    fn algorithm1_truncates_to_shortest_and_combines() {
        // Resolver lists of length 3, 2, 4 -> truncate to 2, pool of 6.
        let sources = vec![
            boxed(StaticSource::answering("r1", vec![ip(1), ip(2), ip(3)])),
            boxed(StaticSource::answering("r2", vec![ip(4), ip(5)])),
            boxed(StaticSource::answering(
                "r3",
                vec![ip(6), ip(7), ip(8), ip(9)],
            )),
        ];
        let report = run(PoolConfig::algorithm1(), sources).unwrap();
        assert_eq!(report.pool.len(), 6);
        assert_eq!(report.truncate_lengths, vec![("A".to_string(), 2)]);
        assert_eq!(report.pool.slots_from("r1"), 2);
        assert_eq!(report.pool.slots_from("r2"), 2);
        assert_eq!(report.pool.slots_from("r3"), 2);
        // Order preserved within each resolver's contribution.
        assert_eq!(report.pool.addresses()[..2], [ip(1), ip(2)]);
        assert_eq!(report.answered(), 3);
        assert_eq!(report.failed(), 0);
    }

    #[test]
    fn truncation_caps_an_inflating_attacker() {
        // The attacker controls r3 and inflates its answer with 16 addresses.
        let attacker_list: Vec<IpAddr> = (1..=16).map(evil).collect();
        let sources = vec![
            boxed(StaticSource::answering("r1", vec![ip(1), ip(2), ip(3)])),
            boxed(StaticSource::answering("r2", vec![ip(4), ip(5), ip(6)])),
            boxed(StaticSource::answering("r3", attacker_list.clone())),
        ];
        let report = run(PoolConfig::algorithm1(), sources).unwrap();
        // Truncated to 3 per resolver: the attacker controls exactly 1/3.
        assert_eq!(report.pool.len(), 9);
        let malicious_fraction = 1.0 - report.pool.benign_fraction(|a| !attacker_list.contains(&a));
        assert!((malicious_fraction - 1.0 / 3.0).abs() < 1e-12);

        // Ablation: without truncation the attacker owns the pool majority.
        let sources = vec![
            boxed(StaticSource::answering("r1", vec![ip(1), ip(2), ip(3)])),
            boxed(StaticSource::answering("r2", vec![ip(4), ip(5), ip(6)])),
            boxed(StaticSource::answering("r3", attacker_list.clone())),
        ];
        let report = run(
            PoolConfig::default().with_mode(CombinationMode::CombineWithoutTruncation),
            sources,
        )
        .unwrap();
        let malicious_fraction = 1.0 - report.pool.benign_fraction(|a| !attacker_list.contains(&a));
        assert!(malicious_fraction > 0.5);
    }

    #[test]
    fn empty_answer_truncates_everything_to_zero() {
        let sources = vec![
            boxed(StaticSource::answering("r1", vec![ip(1), ip(2)])),
            boxed(StaticSource::answering("r2", vec![])),
            boxed(StaticSource::answering("r3", vec![ip(3), ip(4)])),
        ];
        let report = run(PoolConfig::algorithm1(), sources).unwrap();
        assert!(report.pool.is_empty());
        assert_eq!(report.require_non_empty(), Err(PoolError::EmptyPool));
        assert_eq!(report.truncate_lengths, vec![("A".to_string(), 0)]);
    }

    #[test]
    fn failed_resolver_skipped_or_counted_empty() {
        let make = || {
            vec![
                boxed(StaticSource::answering("r1", vec![ip(1), ip(2)])),
                boxed(StaticSource::failing("r2")),
                boxed(StaticSource::answering("r3", vec![ip(3), ip(4)])),
            ]
        };
        // Default: skip the failed resolver, pool built from the other two.
        let report = run(PoolConfig::algorithm1(), make()).unwrap();
        assert_eq!(report.pool.len(), 4);
        assert_eq!(report.answered(), 2);
        assert_eq!(report.failed(), 1);

        // TreatAsEmpty: the failure truncates the pool to zero.
        let report = run(
            PoolConfig::algorithm1().with_failure_policy(FailurePolicy::TreatAsEmpty),
            make(),
        )
        .unwrap();
        assert!(report.pool.is_empty());
    }

    #[test]
    fn min_responses_is_enforced() {
        let sources = vec![
            boxed(StaticSource::answering("r1", vec![ip(1)])),
            boxed(StaticSource::failing("r2")),
            boxed(StaticSource::failing("r3")),
        ];
        let err = run(PoolConfig::algorithm1().with_min_responses(2), sources).unwrap_err();
        assert_eq!(
            err,
            PoolError::NotEnoughResponses {
                answered: 1,
                required: 2
            }
        );
    }

    #[test]
    fn majority_vote_filters_unpopular_addresses() {
        let sources = vec![
            boxed(StaticSource::answering("r1", vec![ip(1), ip(2), evil(1)])),
            boxed(StaticSource::answering("r2", vec![ip(1), ip(2)])),
            boxed(StaticSource::answering("r3", vec![ip(1), ip(3)])),
        ];
        let report = run(PoolConfig::majority_resolver(), sources).unwrap();
        let addrs = report.pool.addresses();
        assert!(addrs.contains(&ip(1)));
        assert!(addrs.contains(&ip(2)));
        assert!(!addrs.contains(&ip(3)));
        assert!(!addrs.contains(&evil(1)));
        assert!(report.truncate_lengths.is_empty());
    }

    #[test]
    fn dual_stack_policies() {
        let make = || {
            vec![
                boxed(StaticSource::answering(
                    "r1",
                    vec![ip(1), "2001:db8::1".parse().unwrap()],
                )),
                boxed(StaticSource::answering(
                    "r2",
                    vec![ip(2), ip(3), "2001:db8::2".parse().unwrap()],
                )),
            ]
        };
        let v4 = run(PoolConfig::algorithm1(), make()).unwrap();
        assert!(v4.pool.addresses().iter().all(|a| a.is_ipv4()));

        let v6 = run(
            PoolConfig::algorithm1().with_dual_stack(DualStackPolicy::Ipv6Only),
            make(),
        )
        .unwrap();
        assert!(v6.pool.addresses().iter().all(|a| a.is_ipv6()));
        assert_eq!(v6.pool.len(), 2);

        let union = run(
            PoolConfig::algorithm1().with_dual_stack(DualStackPolicy::Union),
            make(),
        )
        .unwrap();
        // Per-resolver combined lists have lengths 2 and 3 -> truncate to 2.
        assert_eq!(union.pool.len(), 4);
        assert_eq!(union.truncate_lengths, vec![("A+AAAA".to_string(), 2)]);

        let per_family = run(
            PoolConfig::algorithm1().with_dual_stack(DualStackPolicy::PerFamily),
            make(),
        )
        .unwrap();
        // A truncates to 1 (2 resolvers -> 2 slots), AAAA truncates to 1 (2 slots).
        assert_eq!(per_family.pool.len(), 4);
        assert_eq!(per_family.truncate_lengths.len(), 2);
    }

    #[test]
    fn constructor_errors() {
        assert!(matches!(
            SecurePoolGenerator::new(PoolConfig::algorithm1(), vec![]),
            Err(PoolError::NoResolvers)
        ));
        let bad_config = PoolConfig::algorithm1().with_benign_fraction(2.0);
        assert!(SecurePoolGenerator::new(
            bad_config,
            vec![boxed(StaticSource::answering("r", vec![ip(1)]))]
        )
        .is_err());
    }

    #[test]
    fn sources_and_config_swap_on_a_live_generator() {
        let net = SimNet::new(2);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut generator = SecurePoolGenerator::new(
            PoolConfig::algorithm1(),
            vec![
                boxed(StaticSource::answering("old1", vec![ip(1), ip(2)])),
                boxed(StaticSource::answering("old2", vec![ip(3), ip(4)])),
            ],
        )
        .unwrap();
        let domain: Name = "pool.ntp.org".parse().unwrap();
        let before = generator.generate(&mut exchanger, &domain).unwrap();
        assert_eq!(before.sources[0].0, "old1");

        // Rejections leave the generator untouched.
        assert!(matches!(
            generator.replace_sources(vec![]),
            Err(PoolError::NoResolvers)
        ));
        assert_eq!(generator.resolver_count(), 2);
        assert!(generator
            .set_config(PoolConfig::algorithm1().with_benign_fraction(2.0))
            .is_err());
        assert_eq!(generator.config().min_responses, 1);

        // A valid swap takes effect from the next generation.
        generator
            .replace_sources(vec![
                boxed(StaticSource::answering("new1", vec![ip(5), ip(6)])),
                boxed(StaticSource::answering("new2", vec![ip(7), ip(8)])),
                boxed(StaticSource::answering("new3", vec![ip(9), ip(10)])),
            ])
            .unwrap();
        generator
            .set_config(PoolConfig::algorithm1().with_min_responses(2))
            .unwrap();
        assert_eq!(generator.resolver_count(), 3);
        let after = generator.generate(&mut exchanger, &domain).unwrap();
        assert_eq!(after.sources.len(), 3);
        assert_eq!(after.sources[0].0, "new1");
        assert_eq!(after.pool.len(), 6);
    }

    #[test]
    fn from_directory_builds_doh_sources() {
        let directory = sdoh_doh::ResolverDirectory::well_known(5);
        let generator = SecurePoolGenerator::from_directory(
            PoolConfig::algorithm1(),
            &directory,
            3,
            DohMethod::Get,
        )
        .unwrap();
        assert_eq!(generator.resolver_count(), 3);
        assert!(format!("{generator:?}").contains("resolvers"));
        assert_eq!(generator.config().min_responses, 1);
    }
}
