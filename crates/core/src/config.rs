//! Configuration for secure pool generation.

use serde::{Deserialize, Serialize};

use crate::error::{PoolError, PoolResult};

/// How the answers from the distributed resolvers are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CombinationMode {
    /// Algorithm 1 from the paper: truncate every list to the length of the
    /// shortest list and concatenate the truncated lists. Duplicates are
    /// kept and count as individual servers.
    #[default]
    TruncateAndCombine,
    /// Combine the full (untruncated) lists. This ablation removes the
    /// defence against answer inflation and exists to reproduce the attack
    /// the truncation is there to stop (footnote 2).
    CombineWithoutTruncation,
    /// The "majority DNS resolver" mode from Section II: an address is
    /// included only when a majority of resolvers returned it.
    MajorityVote,
}

/// How addresses of the two families are treated (paper footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DualStackPolicy {
    /// Query A records only.
    #[default]
    Ipv4Only,
    /// Query AAAA records only.
    Ipv6Only,
    /// Query both and require the honest-majority property for the union.
    Union,
    /// Query both and require the honest-majority property for each family
    /// separately (each family is truncated and combined on its own).
    PerFamily,
}

/// How a resolver that fails (timeout, SERVFAIL) is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Skip the resolver: the pool is built from the resolvers that
    /// answered, and `min_responses` guards how few are acceptable.
    #[default]
    Skip,
    /// Treat the failure as an empty answer list. Under Algorithm 1 this
    /// truncates the whole pool to zero — maximally conservative, maximally
    /// DoS-able.
    TreatAsEmpty,
}

/// Configuration of the secure pool generation procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Assumed fraction of non-attacked resolvers (`x` in the paper, e.g.
    /// 1/2). Used by the guarantee checker and the analysis crate; the
    /// algorithm itself does not need it.
    pub assumed_benign_fraction: f64,
    /// How per-resolver answers are combined.
    pub mode: CombinationMode,
    /// Dual-stack handling.
    pub dual_stack: DualStackPolicy,
    /// Failure handling.
    pub failure_policy: FailurePolicy,
    /// Minimum number of resolvers that must produce a usable answer.
    pub min_responses: usize,
    /// Fraction of resolvers that must return an address for it to pass the
    /// majority vote (only used in [`CombinationMode::MajorityVote`]);
    /// strictly-greater-than comparison, so 0.5 means "more than half".
    pub majority_threshold: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            assumed_benign_fraction: 0.5,
            mode: CombinationMode::TruncateAndCombine,
            dual_stack: DualStackPolicy::Ipv4Only,
            failure_policy: FailurePolicy::Skip,
            min_responses: 1,
            majority_threshold: 0.5,
        }
    }
}

impl PoolConfig {
    /// The paper's default: Algorithm 1 with `x = 1/2` over IPv4.
    pub fn algorithm1() -> Self {
        PoolConfig::default()
    }

    /// The majority-vote resolver front-end configuration.
    pub fn majority_resolver() -> Self {
        PoolConfig {
            mode: CombinationMode::MajorityVote,
            ..PoolConfig::default()
        }
    }

    /// Sets the assumed benign fraction `x`, returning `self` for chaining.
    pub fn with_benign_fraction(mut self, x: f64) -> Self {
        self.assumed_benign_fraction = x;
        self
    }

    /// Sets the combination mode, returning `self` for chaining.
    pub fn with_mode(mut self, mode: CombinationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the dual-stack policy, returning `self` for chaining.
    pub fn with_dual_stack(mut self, policy: DualStackPolicy) -> Self {
        self.dual_stack = policy;
        self
    }

    /// Sets the failure policy, returning `self` for chaining.
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Sets the minimum number of usable responses, returning `self`.
    pub fn with_min_responses(mut self, min: usize) -> Self {
        self.min_responses = min;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::InvalidConfig`] for out-of-range fractions.
    pub fn validate(&self) -> PoolResult<()> {
        if !(0.0..=1.0).contains(&self.assumed_benign_fraction) {
            return Err(PoolError::InvalidConfig(
                "assumed_benign_fraction must be within [0, 1]".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.majority_threshold) {
            return Err(PoolError::InvalidConfig(
                "majority_threshold must be within [0, 1)".into(),
            ));
        }
        if self.min_responses == 0 {
            return Err(PoolError::InvalidConfig(
                "min_responses must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = PoolConfig::algorithm1();
        assert_eq!(config.mode, CombinationMode::TruncateAndCombine);
        assert!((config.assumed_benign_fraction - 0.5).abs() < 1e-12);
        config.validate().unwrap();
    }

    #[test]
    fn majority_preset() {
        let config = PoolConfig::majority_resolver();
        assert_eq!(config.mode, CombinationMode::MajorityVote);
        config.validate().unwrap();
    }

    #[test]
    fn builder_chain() {
        let config = PoolConfig::default()
            .with_benign_fraction(2.0 / 3.0)
            .with_mode(CombinationMode::CombineWithoutTruncation)
            .with_dual_stack(DualStackPolicy::Union)
            .with_failure_policy(FailurePolicy::TreatAsEmpty)
            .with_min_responses(3);
        assert_eq!(config.mode, CombinationMode::CombineWithoutTruncation);
        assert_eq!(config.dual_stack, DualStackPolicy::Union);
        assert_eq!(config.failure_policy, FailurePolicy::TreatAsEmpty);
        assert_eq!(config.min_responses, 3);
        config.validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PoolConfig::default()
            .with_benign_fraction(1.5)
            .validate()
            .is_err());
        assert!(PoolConfig::default()
            .with_min_responses(0)
            .validate()
            .is_err());
        let config = PoolConfig {
            majority_threshold: 1.0,
            ..PoolConfig::default()
        };
        assert!(config.validate().is_err());
    }
}
