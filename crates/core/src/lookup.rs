//! The standard-compatible DNS front end ("majority DNS resolver").
//!
//! The paper proposes deploying the mechanism "without changing the DNS
//! infrastructure, offering a standard-compatible DNS-resolver interface".
//! [`SecurePoolResolver`] is that interface: it answers ordinary A/AAAA
//! queries from unmodified stub resolvers by running distributed DoH pool
//! generation underneath and returning the combined (or majority-filtered)
//! addresses as a plain DNS response.

use std::time::Duration;

use sdoh_dns_server::{Exchanger, QueryHandler};
use sdoh_dns_wire::{Message, MessageBuilder, Question, Rcode, Record, RrType, Ttl};

use crate::generator::{GenerationReport, SecurePoolGenerator};

/// Operational counters of a [`SecurePoolResolver`], fed by real per-query
/// outcomes: a query is counted as served only once pool generation
/// actually produced an answer, failures distinguish rejected queries from
/// generation failures, and latency is the measured virtual time spent in
/// the distributed lookup (the dominant cost the overhead experiment
/// quantifies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverMetrics {
    /// Address queries received (after protocol-level rejection).
    pub queries: u64,
    /// Queries answered from a successfully generated pool.
    pub served: u64,
    /// Queries that failed because pool generation failed (SERVFAIL).
    pub failures: u64,
    /// Queries rejected before generation (no question / non-address type).
    pub rejected: u64,
    /// Per-resolver lookups (one per resolver per dual-stack pass) that
    /// produced a usable answer, counted from the session's event stream
    /// across all generations — served *and* failed.
    pub source_answers: u64,
    /// Per-resolver lookups that failed, across all generations.
    pub source_failures: u64,
    /// Virtual time the most recent pool generation took.
    pub last_generation_latency: Duration,
    /// Total virtual time spent generating pools.
    pub total_generation_latency: Duration,
}

impl ResolverMetrics {
    /// Mean virtual latency per attempted generation.
    pub fn average_generation_latency(&self) -> Duration {
        let attempts = self.served + self.failures;
        if attempts == 0 {
            Duration::ZERO
        } else {
            // `Duration` only divides by `u32`; saturate the divisor instead
            // of silently truncating it (an `as u32` cast of 2^32 attempts
            // would wrap to 0 and panic, and wrap to tiny divisors above
            // that, inflating the reported mean).
            self.total_generation_latency / u32::try_from(attempts).unwrap_or(u32::MAX)
        }
    }
}

/// Builds the DNS response serving `report`'s pool for `question`,
/// returning only addresses of the queried family (even when the generator
/// is configured for dual-stack union) with the given answer TTL. Shared by
/// [`SecurePoolResolver`] and the caching front end
/// ([`CachingPoolResolver`](crate::CachingPoolResolver)).
pub(crate) fn pool_response(
    query: &Message,
    question: &Question,
    report: &GenerationReport,
    ttl: Ttl,
) -> Message {
    let mut builder = MessageBuilder::response_to(query).recursion_available(true);
    for entry in report.pool.iter() {
        let matches_family = match question.rtype {
            RrType::A => entry.address.is_ipv4(),
            RrType::Aaaa => entry.address.is_ipv6(),
            _ => false,
        };
        if matches_family {
            builder = builder.answer(Record::address(
                question.name.clone(),
                ttl.as_secs(),
                entry.address,
            ));
        }
    }
    builder.build()
}

/// A DNS query handler backed by secure pool generation.
pub struct SecurePoolResolver {
    generator: SecurePoolGenerator,
    answer_ttl: Ttl,
    metrics: ResolverMetrics,
}

impl SecurePoolResolver {
    /// Wraps a generator as a DNS front end.
    pub fn new(generator: SecurePoolGenerator) -> Self {
        SecurePoolResolver {
            generator,
            answer_ttl: Ttl::from_secs(60),
            metrics: ResolverMetrics::default(),
        }
    }

    /// Sets the TTL attached to synthesised answer records.
    pub fn answer_ttl(mut self, ttl: impl Into<Ttl>) -> Self {
        self.answer_ttl = ttl.into();
        self
    }

    /// Access to the underlying generator.
    pub fn generator(&self) -> &SecurePoolGenerator {
        &self.generator
    }

    /// Snapshot of the operational counters.
    pub fn metrics(&self) -> ResolverMetrics {
        self.metrics
    }

    /// Number of address queries received.
    pub fn queries(&self) -> u64 {
        self.metrics.queries
    }

    /// Number of queries that could not be answered (pool generation
    /// failed).
    pub fn failures(&self) -> u64 {
        self.metrics.failures
    }
}

impl QueryHandler for SecurePoolResolver {
    fn handle_query(&mut self, exchanger: &mut dyn Exchanger, query: &Message) -> Message {
        let question = match query.question() {
            Some(q) => q.clone(),
            None => {
                self.metrics.rejected += 1;
                return Message::error_response(query, Rcode::FormErr);
            }
        };
        // The operation mode only supports address lookups (Section II).
        if !question.rtype.is_address() {
            self.metrics.rejected += 1;
            return Message::error_response(query, Rcode::NotImp);
        }
        self.metrics.queries += 1;
        let started = exchanger.now();
        // Drive the session directly (rather than through `generate`) so
        // the per-lookup SessionEvent stream is available: it carries the
        // real per-resolver outcomes even when generation ends in an error,
        // including the passes that succeeded before another pass failed.
        let seed = crate::generator::seed_from(exchanger);
        let outcome = self
            .generator
            .session(&question.name, seed)
            .and_then(|mut session| {
                let events = crate::session::drive(&mut session, exchanger)?;
                for event in &events {
                    match event {
                        crate::SessionEvent::SourceAnswered { .. } => {
                            self.metrics.source_answers += 1;
                        }
                        crate::SessionEvent::SourceFailed { .. } => {
                            self.metrics.source_failures += 1;
                        }
                    }
                }
                session.finish()
            });
        let elapsed = exchanger.now().saturating_duration_since(started);
        self.metrics.last_generation_latency = elapsed;
        self.metrics.total_generation_latency += elapsed;
        match outcome {
            Ok(report) => {
                self.metrics.served += 1;
                pool_response(query, &question, &report, self.answer_ttl)
            }
            Err(_) => {
                self.metrics.failures += 1;
                Message::error_response(query, Rcode::ServFail)
            }
        }
    }

    fn handler_name(&self) -> &str {
        "secure-pool-resolver"
    }
}

impl std::fmt::Debug for SecurePoolResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecurePoolResolver")
            .field("generator", &self.generator)
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PoolConfig;
    use crate::source::{AddressSource, StaticSource};
    use sdoh_dns_server::{ClientExchanger, DnsClient, Do53Service, StubResolver};
    use sdoh_netsim::{SimAddr, SimNet};
    use std::net::IpAddr;

    fn ip(last: u8) -> IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    fn resolver_with_static_sources(config: PoolConfig) -> SecurePoolResolver {
        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::answering("r1", vec![ip(1), ip(2)])),
            Box::new(StaticSource::answering("r2", vec![ip(2), ip(3)])),
            Box::new(StaticSource::answering("r3", vec![ip(2), ip(1)])),
        ];
        SecurePoolResolver::new(SecurePoolGenerator::new(config, sources).unwrap())
    }

    #[test]
    fn answers_a_queries_with_combined_pool() {
        let net = SimNet::new(70);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver_with_static_sources(PoolConfig::algorithm1());
        let query = Message::query(1, "pool.ntp.org".parse().unwrap(), RrType::A);
        let response = resolver.handle_query(&mut exchanger, &query);
        // 3 resolvers x 2 addresses each.
        assert_eq!(response.answer_addresses().len(), 6);
        assert!(response.header.recursion_available);
        assert_eq!(resolver.queries(), 1);
        assert_eq!(resolver.failures(), 0);
    }

    #[test]
    fn majority_mode_filters_addresses() {
        let net = SimNet::new(71);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver_with_static_sources(PoolConfig::majority_resolver());
        let query = Message::query(2, "pool.ntp.org".parse().unwrap(), RrType::A);
        let response = resolver.handle_query(&mut exchanger, &query);
        let addrs = response.answer_addresses();
        assert!(addrs.contains(&ip(1)), "2/3 resolvers returned .1");
        assert!(addrs.contains(&ip(2)), "3/3 resolvers returned .2");
        assert!(!addrs.contains(&ip(3)), "1/3 resolvers returned .3");
    }

    #[test]
    fn non_address_queries_get_notimp() {
        let net = SimNet::new(72);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let mut resolver = resolver_with_static_sources(PoolConfig::algorithm1());
        let query = Message::query(3, "pool.ntp.org".parse().unwrap(), RrType::Txt);
        let response = resolver.handle_query(&mut exchanger, &query);
        assert_eq!(response.header.rcode, Rcode::NotImp);
        assert_eq!(resolver.queries(), 0);
    }

    #[test]
    fn generation_failure_becomes_servfail() {
        let net = SimNet::new(73);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let sources: Vec<Box<dyn AddressSource>> = vec![
            Box::new(StaticSource::failing("dead1")),
            Box::new(StaticSource::failing("dead2")),
        ];
        let generator =
            SecurePoolGenerator::new(PoolConfig::algorithm1().with_min_responses(2), sources)
                .unwrap();
        let mut resolver = SecurePoolResolver::new(generator);
        let query = Message::query(4, "pool.ntp.org".parse().unwrap(), RrType::A);
        let response = resolver.handle_query(&mut exchanger, &query);
        assert_eq!(response.header.rcode, Rcode::ServFail);
        assert_eq!(resolver.failures(), 1);
    }

    #[test]
    fn works_behind_a_standard_stub_resolver() {
        // Backward compatibility: an unmodified stub resolver pointed at the
        // majority resolver on port 53 just works.
        let net = SimNet::new(74);
        let frontend_addr = SimAddr::v4(10, 0, 0, 53, 53);
        let resolver =
            resolver_with_static_sources(PoolConfig::algorithm1()).answer_ttl(Ttl::from_secs(120));
        net.register(frontend_addr, Do53Service::new(resolver));

        let stub = StubResolver::new(frontend_addr);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let addrs = stub
            .lookup_ipv4(&mut exchanger, &"pool.ntp.org".parse().unwrap())
            .unwrap();
        assert_eq!(addrs.len(), 6);

        // The answer TTL is the configured one.
        let client = DnsClient::new(frontend_addr);
        let response = client
            .query(&mut exchanger, &"pool.ntp.org".parse().unwrap(), RrType::A)
            .unwrap();
        assert!(response.answers.iter().all(|r| r.ttl == 120));
    }

    #[test]
    fn average_latency_saturates_instead_of_truncating_the_divisor() {
        // Regression: the divisor used to be cast with `as u32`, so 2^32
        // attempts wrapped to 0 (a divide-by-zero panic) and 2^32 + k
        // wrapped to k, wildly inflating the mean. The divisor now
        // saturates at u32::MAX.
        let wrapped_to_zero = ResolverMetrics {
            served: u64::from(u32::MAX) + 1,
            total_generation_latency: Duration::from_secs(1 << 33),
            ..ResolverMetrics::default()
        };
        let average = wrapped_to_zero.average_generation_latency();
        assert!(average > Duration::ZERO, "must not panic nor return junk");
        assert_eq!(average, Duration::from_secs(1 << 33) / u32::MAX);

        // 2^32 + 2 attempts used to divide by 2; with saturation the mean
        // is (slightly under) latency / 2^32, not latency / 2.
        let wrapped_to_two = ResolverMetrics {
            served: u64::from(u32::MAX) + 3,
            total_generation_latency: Duration::from_secs(1 << 33),
            ..ResolverMetrics::default()
        };
        assert!(wrapped_to_two.average_generation_latency() < Duration::from_secs(3));

        // The ordinary path is unchanged.
        let normal = ResolverMetrics {
            served: 3,
            failures: 1,
            total_generation_latency: Duration::from_secs(8),
            ..ResolverMetrics::default()
        };
        assert_eq!(normal.average_generation_latency(), Duration::from_secs(2));
        assert_eq!(
            ResolverMetrics::default().average_generation_latency(),
            Duration::ZERO
        );
    }

    #[test]
    fn debug_and_accessors() {
        let resolver = resolver_with_static_sources(PoolConfig::algorithm1());
        assert!(format!("{resolver:?}").contains("SecurePoolResolver"));
        assert_eq!(resolver.generator().resolver_count(), 3);
        assert_eq!(resolver.handler_name(), "secure-pool-resolver");
    }
}
