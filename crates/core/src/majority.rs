//! Majority voting over per-resolver address lists (paper Section II).

use std::collections::BTreeMap;
use std::net::IpAddr;

/// Counts, for every address, how many of the given answer lists contain it
/// (presence per list, not multiplicity within a list).
pub fn support_counts(lists: &[Vec<IpAddr>]) -> BTreeMap<IpAddr, usize> {
    let mut counts: BTreeMap<IpAddr, usize> = BTreeMap::new();
    for list in lists {
        let mut seen = Vec::new();
        for &addr in list {
            if !seen.contains(&addr) {
                seen.push(addr);
                *counts.entry(addr).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Returns the addresses supported by strictly more than `threshold` of the
/// `total` resolvers, in ascending address order with their support counts.
///
/// With `threshold = 0.5` this is the classic majority vote the paper
/// describes: "the majority DNS resolver only includes an address in the
/// final response, if it is given by a majority of the DoH resolvers".
///
/// The comparison `support > threshold * total` is evaluated **exactly**
/// (see [`meets_threshold`]): thresholds written as rationals — `2.0 / 3.0`,
/// `0.7` — behave as the rational they denote for every `total`, instead of
/// picking up an off-by-one where floating-point rounding lands the product
/// on the wrong side of an integer.
pub fn majority_vote(lists: &[Vec<IpAddr>], total: usize, threshold: f64) -> Vec<(IpAddr, usize)> {
    if total == 0 {
        return Vec::new();
    }
    support_counts(lists)
        .into_iter()
        .filter(|(_, support)| meets_threshold(*support, total, threshold))
        .collect()
}

/// Decides `support > threshold * total` exactly.
///
/// Floating-point evaluation of the product can land on the wrong side of
/// an integer — `floor(0.7 * total)` style computations are off by one for
/// some totals — so the comparison is done in integer arithmetic instead:
///
/// * when `threshold` is (up to one part in 2⁵⁰) a small rational `p/q`,
///   the intended comparison is `support * q > p * total`, evaluated in
///   `u128`. This recovers the rational the caller *wrote* (`2.0 / 3.0`,
///   `0.7`, …), which `f64` cannot represent exactly;
/// * otherwise the `f64` value itself is used exactly: every finite float
///   is the dyadic rational `m·2^e`, so `support > m·2^e·total` reduces to
///   an integer comparison after shifting.
pub fn meets_threshold(support: usize, total: usize, threshold: f64) -> bool {
    if threshold.is_nan() {
        return false;
    }
    if !threshold.is_finite() {
        return threshold < 0.0;
    }
    if threshold < 0.0 {
        return true;
    }
    if let Some((num, den)) = small_rational(threshold) {
        return (support as u128) * u128::from(den) > u128::from(num).saturating_mul(total as u128);
    }
    exceeds_dyadic(support, total, threshold)
}

/// Best small-denominator rational approximation of `t` (continued
/// fractions, denominators up to 2²⁰), accepted only when it matches `t` to
/// within one part in 2⁵⁰ — i.e. when `t` plausibly *is* that rational,
/// merely rounded through `f64`.
fn small_rational(t: f64) -> Option<(u64, u64)> {
    const MAX_DEN: u64 = 1 << 20;
    let tolerance = t.abs().max(1.0) * (0.5f64).powi(50);
    // Convergents p/q of the continued fraction of t.
    let (mut p_prev, mut q_prev): (u64, u64) = (0, 1);
    let (mut p, mut q): (u64, u64) = (1, 0);
    let mut x = t;
    for _ in 0..64 {
        let a = x.floor();
        if a > MAX_DEN as f64 {
            return None;
        }
        let a_int = a as u64; // sdoh-lint: allow(no-narrowing-cast, "a is a non-negative floor checked against MAX_DEN, and float-to-int as-casts saturate")
        let p_next = a_int.checked_mul(p)?.checked_add(p_prev)?;
        let q_next = a_int.checked_mul(q)?.checked_add(q_prev)?;
        if q_next > MAX_DEN {
            return None;
        }
        (p_prev, q_prev, p, q) = (p, q, p_next, q_next);
        if (p as f64 / q as f64 - t).abs() <= tolerance {
            return Some((p, q));
        }
        let frac = x - a;
        if frac <= 0.0 {
            return None;
        }
        x = 1.0 / frac;
    }
    None
}

/// Exact `support > t * total` for a finite non-negative `t`, decomposing
/// `t` into its dyadic mantissa/exponent form.
fn exceeds_dyadic(support: usize, total: usize, t: f64) -> bool {
    let bits = t.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i64; // sdoh-lint: allow(no-narrowing-cast, "masked to the 11 exponent bits before the cast")
    let frac = bits & ((1u64 << 52) - 1);
    let (mantissa, exponent) = if biased == 0 {
        (frac, -1074i64)
    } else {
        (frac | (1 << 52), biased - 1075)
    };
    // Compare support against mantissa * 2^exponent * total. The product
    // below cannot overflow: mantissa < 2^53 and total < 2^64.
    let lhs = support as u128;
    let rhs = u128::from(mantissa) * (total as u128);
    if exponent >= 0 {
        // support > rhs << exponent.
        if rhs == 0 {
            return lhs > 0;
        }
        let exp_u32 = exponent as u32; // sdoh-lint: allow(no-narrowing-cast, "only consulted when 0 <= exponent < 128")
        if exponent >= 128 || exp_u32 > rhs.leading_zeros() {
            return false; // the product is at least 2^128, beyond any support
        }
        lhs > (rhs << exponent)
    } else {
        // support << -exponent > rhs.
        if lhs == 0 {
            return false;
        }
        let shift = -exponent;
        let shift_u32 = shift as u32; // sdoh-lint: allow(no-narrowing-cast, "only consulted when 0 < shift < 128")
        if shift >= 128 || shift_u32 > lhs.leading_zeros() {
            return true; // the shifted support is at least 2^128 > rhs < 2^118
        }
        (lhs << shift) > rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    #[test]
    fn support_counts_presence_not_multiplicity() {
        let lists = vec![
            vec![ip(1), ip(1), ip(2)],
            vec![ip(1), ip(3)],
            vec![ip(2), ip(1)],
        ];
        let counts = support_counts(&lists);
        assert_eq!(counts[&ip(1)], 3, "duplicates within a list count once");
        assert_eq!(counts[&ip(2)], 2);
        assert_eq!(counts[&ip(3)], 1);
    }

    #[test]
    fn strict_majority_with_three_resolvers() {
        let lists = vec![vec![ip(1), ip(2)], vec![ip(1), ip(3)], vec![ip(1), ip(2)]];
        let winners = majority_vote(&lists, 3, 0.5);
        let addresses: Vec<IpAddr> = winners.iter().map(|(a, _)| *a).collect();
        assert!(addresses.contains(&ip(1)), "3/3 support");
        assert!(
            addresses.contains(&ip(2)),
            "2/3 support is a strict majority"
        );
        assert!(!addresses.contains(&ip(3)), "1/3 support is not");
    }

    #[test]
    fn exactly_half_is_not_a_majority() {
        let lists = vec![vec![ip(1)], vec![ip(1)], vec![ip(2)], vec![ip(3)]];
        let winners = majority_vote(&lists, 4, 0.5);
        let addresses: Vec<IpAddr> = winners.iter().map(|(a, _)| *a).collect();
        assert!(
            !addresses.contains(&ip(1)),
            "2 of 4 is not strictly more than half"
        );
    }

    #[test]
    fn higher_threshold_is_stricter() {
        let lists = vec![vec![ip(1), ip(2)], vec![ip(1), ip(2)], vec![ip(1)]];
        let half = majority_vote(&lists, 3, 0.5);
        let two_thirds = majority_vote(&lists, 3, 2.0 / 3.0);
        assert_eq!(half.len(), 2);
        assert_eq!(two_thirds.len(), 1);
        assert_eq!(two_thirds[0].0, ip(1));
        assert_eq!(two_thirds[0].1, 3);
    }

    #[test]
    fn empty_inputs() {
        assert!(majority_vote(&[], 0, 0.5).is_empty());
        assert!(majority_vote(&[vec![]], 1, 0.5).is_empty());
        assert!(support_counts(&[]).is_empty());
    }

    #[test]
    fn threshold_comparison_is_exact_for_written_rationals() {
        // 2/3 of 3 resolvers: "strictly more than 2" means 3, even though
        // f64 cannot represent 2/3 and the product 2.0/3.0 * 3.0 straddles
        // the integer.
        assert!(!meets_threshold(2, 3, 2.0 / 3.0));
        assert!(meets_threshold(3, 3, 2.0 / 3.0));
        // 0.7 of 10: 7 is not strictly more than 7.
        assert!(!meets_threshold(7, 10, 0.7));
        assert!(meets_threshold(8, 10, 0.7));
        // Exactly half of an even total never passes, at any magnitude.
        for total in [2usize, 4, 1_000, 1 << 40] {
            assert!(!meets_threshold(total / 2, total, 0.5), "total {total}");
            assert!(meets_threshold(total / 2 + 1, total, 0.5));
        }
    }

    #[test]
    fn threshold_comparison_survives_huge_totals() {
        // The old `floor(threshold * total)` evaluation loses whole units
        // once the product's floating-point error reaches integer spacing:
        // for total = 10^17 + 3 it computed "needed = 66666666666666664",
        // admitting supports four short of a strict 2/3 majority. The exact
        // comparison requires support > 2(10^17 + 3)/3 = 66666666666666668.67.
        let total = 100_000_000_000_000_003usize;
        assert!(!meets_threshold(66_666_666_666_666_668, total, 2.0 / 3.0));
        assert!(meets_threshold(66_666_666_666_666_669, total, 2.0 / 3.0));
    }

    #[test]
    fn threshold_comparison_edge_values() {
        // Degenerate thresholds keep their mathematical meaning.
        assert!(meets_threshold(1, 4, 0.0), "any support beats zero");
        assert!(!meets_threshold(0, 4, 0.0));
        assert!(!meets_threshold(4, 4, 1.0), "support cannot exceed total");
        assert!(meets_threshold(5, 4, 1.0), "unless the caller says so");
        assert!(!meets_threshold(4, 4, f64::NAN));
        assert!(!meets_threshold(4, 4, f64::INFINITY));
        assert!(meets_threshold(0, 4, f64::NEG_INFINITY));
        assert!(meets_threshold(1, 4, -0.25));
        // An arbitrary non-rational threshold falls back to the exact
        // dyadic comparison of the f64 value itself.
        let weird = 0.123_456_789_012_345_67_f64;
        assert!(meets_threshold(2, 10, weird));
        assert!(!meets_threshold(1, 10, weird));
    }
}
