//! Majority voting over per-resolver address lists (paper Section II).

use std::collections::BTreeMap;
use std::net::IpAddr;

/// Counts, for every address, how many of the given answer lists contain it
/// (presence per list, not multiplicity within a list).
pub fn support_counts(lists: &[Vec<IpAddr>]) -> BTreeMap<IpAddr, usize> {
    let mut counts: BTreeMap<IpAddr, usize> = BTreeMap::new();
    for list in lists {
        let mut seen = Vec::new();
        for &addr in list {
            if !seen.contains(&addr) {
                seen.push(addr);
                *counts.entry(addr).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Returns the addresses supported by strictly more than `threshold` of the
/// `total` resolvers, in ascending address order with their support counts.
///
/// With `threshold = 0.5` this is the classic majority vote the paper
/// describes: "the majority DNS resolver only includes an address in the
/// final response, if it is given by a majority of the DoH resolvers".
pub fn majority_vote(lists: &[Vec<IpAddr>], total: usize, threshold: f64) -> Vec<(IpAddr, usize)> {
    if total == 0 {
        return Vec::new();
    }
    let needed = (threshold * total as f64).floor() as usize;
    support_counts(lists)
        .into_iter()
        .filter(|(_, support)| *support > needed)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        format!("203.0.113.{last}").parse().unwrap()
    }

    #[test]
    fn support_counts_presence_not_multiplicity() {
        let lists = vec![
            vec![ip(1), ip(1), ip(2)],
            vec![ip(1), ip(3)],
            vec![ip(2), ip(1)],
        ];
        let counts = support_counts(&lists);
        assert_eq!(counts[&ip(1)], 3, "duplicates within a list count once");
        assert_eq!(counts[&ip(2)], 2);
        assert_eq!(counts[&ip(3)], 1);
    }

    #[test]
    fn strict_majority_with_three_resolvers() {
        let lists = vec![vec![ip(1), ip(2)], vec![ip(1), ip(3)], vec![ip(1), ip(2)]];
        let winners = majority_vote(&lists, 3, 0.5);
        let addresses: Vec<IpAddr> = winners.iter().map(|(a, _)| *a).collect();
        assert!(addresses.contains(&ip(1)), "3/3 support");
        assert!(
            addresses.contains(&ip(2)),
            "2/3 support is a strict majority"
        );
        assert!(!addresses.contains(&ip(3)), "1/3 support is not");
    }

    #[test]
    fn exactly_half_is_not_a_majority() {
        let lists = vec![vec![ip(1)], vec![ip(1)], vec![ip(2)], vec![ip(3)]];
        let winners = majority_vote(&lists, 4, 0.5);
        let addresses: Vec<IpAddr> = winners.iter().map(|(a, _)| *a).collect();
        assert!(
            !addresses.contains(&ip(1)),
            "2 of 4 is not strictly more than half"
        );
    }

    #[test]
    fn higher_threshold_is_stricter() {
        let lists = vec![vec![ip(1), ip(2)], vec![ip(1), ip(2)], vec![ip(1)]];
        let half = majority_vote(&lists, 3, 0.5);
        let two_thirds = majority_vote(&lists, 3, 2.0 / 3.0);
        assert_eq!(half.len(), 2);
        assert_eq!(two_thirds.len(), 1);
        assert_eq!(two_thirds[0].0, ip(1));
        assert_eq!(two_thirds[0].1, 3);
    }

    #[test]
    fn empty_inputs() {
        assert!(majority_vote(&[], 0, 0.5).is_empty());
        assert!(majority_vote(&[vec![]], 1, 0.5).is_empty());
        assert!(support_counts(&[]).is_empty());
    }
}
