//! Error types for secure pool generation.

use std::error::Error;
use std::fmt;

/// Errors produced while generating a server address pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// No resolvers are configured.
    NoResolvers,
    /// Fewer resolvers answered than the configuration requires.
    NotEnoughResponses {
        /// Resolvers that returned a usable answer.
        answered: usize,
        /// Minimum required by the configuration.
        required: usize,
    },
    /// Every resolver answered but the combined pool is empty (for example
    /// because one compromised resolver returned an empty list and
    /// truncation reduced everything to zero — the DoS cost the paper
    /// acknowledges in footnote 2).
    EmptyPool,
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// A pool generation behind the serving front end failed (the condition
    /// a DNS client would observe as SERVFAIL, possibly negatively cached).
    Generation(String),
    /// A driver misused the sans-IO session API (responded to an unknown or
    /// completed transaction, or finished with exchanges outstanding).
    Session(String),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoResolvers => write!(f, "no DoH resolvers configured"),
            PoolError::NotEnoughResponses { answered, required } => {
                write!(f, "only {answered} resolvers answered, {required} required")
            }
            PoolError::EmptyPool => write!(f, "the combined address pool is empty"),
            PoolError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PoolError::Generation(msg) => write!(f, "pool generation failed: {msg}"),
            PoolError::Session(msg) => write!(f, "session misuse: {msg}"),
        }
    }
}

impl Error for PoolError {}

/// Result alias for pool generation.
pub type PoolResult<T> = Result<T, PoolError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases = [
            PoolError::NoResolvers,
            PoolError::NotEnoughResponses {
                answered: 1,
                required: 3,
            },
            PoolError::EmptyPool,
            PoolError::InvalidConfig("x out of range".into()),
            PoolError::Generation("upstreams unreachable".into()),
            PoolError::Session("unknown transaction".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn is_an_error_trait_object() {
        let e: Box<dyn Error> = Box::new(PoolError::EmptyPool);
        assert!(e.source().is_none());
    }
}
