//! Error types for secure pool generation.

use std::error::Error;
use std::fmt;

/// Errors produced while generating a server address pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// No resolvers are configured.
    NoResolvers,
    /// Fewer resolvers answered than the configuration requires.
    NotEnoughResponses {
        /// Resolvers that returned a usable answer.
        answered: usize,
        /// Minimum required by the configuration.
        required: usize,
    },
    /// Every resolver answered but the combined pool is empty (for example
    /// because one compromised resolver returned an empty list and
    /// truncation reduced everything to zero — the DoS cost the paper
    /// acknowledges in footnote 2).
    EmptyPool,
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// A pool generation behind the serving front end failed (the condition
    /// a DNS client would observe as SERVFAIL, possibly negatively cached).
    Generation(String),
    /// A driver misused the sans-IO session API (responded to an unknown or
    /// completed transaction, or finished with exchanges outstanding).
    Session(String),
    /// A driver responded to a transaction id the session does not know.
    UnknownTransaction(usize),
    /// A serve-batch route pointed at a flight that does not exist.
    UnknownFlight(usize),
    /// A driver responded to a transaction that is not in flight.
    TransactionNotInFlight(usize),
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoResolvers => write!(f, "no DoH resolvers configured"),
            PoolError::NotEnoughResponses { answered, required } => {
                write!(f, "only {answered} resolvers answered, {required} required")
            }
            PoolError::EmptyPool => write!(f, "the combined address pool is empty"),
            PoolError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PoolError::Generation(msg) => write!(f, "pool generation failed: {msg}"),
            PoolError::Session(msg) => write!(f, "session misuse: {msg}"),
            PoolError::UnknownTransaction(id) => {
                write!(f, "session misuse: unknown transaction {id}")
            }
            PoolError::UnknownFlight(flight) => {
                write!(f, "session misuse: route to unknown flight {flight}")
            }
            PoolError::TransactionNotInFlight(id) => {
                write!(f, "session misuse: transaction {id} is not in flight")
            }
        }
    }
}

impl Error for PoolError {}

/// Result alias for pool generation.
pub type PoolResult<T> = Result<T, PoolError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases = [
            PoolError::NoResolvers,
            PoolError::NotEnoughResponses {
                answered: 1,
                required: 3,
            },
            PoolError::EmptyPool,
            PoolError::InvalidConfig("x out of range".into()),
            PoolError::Generation("upstreams unreachable".into()),
            PoolError::Session("finished with exchanges outstanding".into()),
            PoolError::UnknownTransaction(7),
            PoolError::UnknownFlight(2),
            PoolError::TransactionNotInFlight(7),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn is_an_error_trait_object() {
        let e: Box<dyn Error> = Box::new(PoolError::EmptyPool);
        assert!(e.source().is_none());
    }
}
