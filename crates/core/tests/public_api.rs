//! Golden-file guard over `sdoh-core`'s public API surface.
//!
//! Scans every `src/**/*.rs` file for `pub` item declarations (functions,
//! types, traits, re-exports, fields — `pub(crate)`/`pub(super)` are
//! excluded by construction) and compares the sorted listing against
//! `tests/public_api.txt`. An API change — adding, removing or re-signing
//! anything `pub` — fails the lint gate until the golden file is updated
//! alongside it, which is exactly the review speed bump a public surface
//! deserves.
//!
//! Regenerate with `SDOH_UPDATE_PUBLIC_API=1 cargo test -p sdoh-core
//! --test public_api`.

use std::path::{Path, PathBuf};

/// Item keywords that open a `pub` declaration. Anything else after
/// `pub ` is a public struct field (`pub capacity: usize`), which is
/// part of the surface too.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "async", "unsafe", "const", "static", "struct", "enum", "union", "trait", "type", "use",
    "mod",
];

fn manifest_path(relative: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(relative)
}

/// Walks `dir` in sorted order, scanning every `.rs` file.
fn collect(dir: &Path, relative: &str, out: &mut Vec<String>) {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("readable source dir")
        .map(|entry| entry.expect("readable dir entry"))
        .collect();
    entries.sort_by_key(|entry| entry.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().into_string().expect("utf-8 file name");
        let rel = if relative.is_empty() {
            name.clone()
        } else {
            format!("{relative}/{name}")
        };
        if path.is_dir() {
            collect(&path, &rel, out);
        } else if name.ends_with(".rs") {
            scan(&path, &rel, out);
        }
    }
}

/// Extracts the `pub` declarations of one source file. The scan stops at
/// the first `#[cfg(test)]` — by repo convention the test module is the
/// last item of a file, and nothing in it is public API.
fn scan(path: &Path, rel: &str, out: &mut Vec<String>) {
    let source = std::fs::read_to_string(path).expect("readable source file");
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed == "#[cfg(test)]" {
            break;
        }
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        let first = rest.split_whitespace().next().unwrap_or("");
        let is_item = ITEM_KEYWORDS.contains(&first);
        let is_field = !is_item && first.contains(':');
        if !is_item && !is_field {
            continue;
        }
        // Normalize to the declaration head: everything before a body.
        let head = trimmed.split('{').next().unwrap_or(trimmed).trim_end();
        out.push(format!("{rel}: {head}"));
    }
}

#[test]
fn public_api_matches_golden_file() {
    let mut surface = Vec::new();
    collect(&manifest_path("src"), "", &mut surface);
    surface.sort();
    surface.dedup();
    let actual = surface.join("\n") + "\n";

    let golden_path = manifest_path("tests/public_api.txt");
    if std::env::var_os("SDOH_UPDATE_PUBLIC_API").is_some() {
        std::fs::write(&golden_path, &actual).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_default();
    if actual == golden {
        return;
    }

    let actual_lines: std::collections::BTreeSet<&str> = actual.lines().collect();
    let golden_lines: std::collections::BTreeSet<&str> = golden.lines().collect();
    let mut report = String::new();
    for added in actual_lines.difference(&golden_lines) {
        report.push_str(&format!("  + {added}\n"));
    }
    for removed in golden_lines.difference(&actual_lines) {
        report.push_str(&format!("  - {removed}\n"));
    }
    panic!(
        "the public API surface diverged from tests/public_api.txt:\n{report}\
         If the change is intentional, regenerate the golden file with\n\
         SDOH_UPDATE_PUBLIC_API=1 cargo test -p sdoh-core --test public_api"
    );
}
