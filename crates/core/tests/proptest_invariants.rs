//! Property-based tests on the invariants of Algorithm 1, the majority vote
//! and the pool/guarantee types.

use std::net::{IpAddr, Ipv4Addr};

use proptest::prelude::*;

use sdoh_core::{
    check_guarantee, majority_vote, support_counts, AddressPool, AddressSource, CombinationMode,
    GroundTruth, PoolConfig, SecurePoolGenerator, StaticSource,
};
use sdoh_dns_server::ClientExchanger;
use sdoh_netsim::{SimAddr, SimNet};

fn benign(i: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(203, 0, 113, i))
}

fn evil(i: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(198, 18, 0, i))
}

/// Per-resolver answer descriptions: `(is_compromised, answer_length)`.
fn arb_resolver_answers() -> impl Strategy<Value = Vec<(bool, usize)>> {
    proptest::collection::vec((any::<bool>(), 0usize..12), 1..8)
}

fn build_and_generate(
    answers: &[(bool, usize)],
    mode: CombinationMode,
) -> (sdoh_core::GenerationReport, GroundTruth) {
    let sources: Vec<Box<dyn AddressSource>> = answers
        .iter()
        .enumerate()
        .map(|(i, (compromised, len))| {
            let list: Vec<IpAddr> = (0..*len)
                .map(|j| {
                    if *compromised {
                        evil((i * 12 + j) as u8 % 250 + 1)
                    } else {
                        benign((j % 250) as u8 + 1)
                    }
                })
                .collect();
            Box::new(StaticSource::answering(format!("r{i}"), list)) as Box<dyn AddressSource>
        })
        .collect();
    let truth = GroundTruth::with_malicious((1..=255u8).map(evil));
    let generator =
        SecurePoolGenerator::new(PoolConfig::default().with_mode(mode), sources).unwrap();
    let net = SimNet::new(7);
    let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
    let report = generator
        .generate(&mut exchanger, &"pool.ntpns.org".parse().unwrap())
        .unwrap();
    (report, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1: every resolver contributes exactly the truncation
    /// length, so the pool size is N * min(len).
    #[test]
    fn algorithm1_pool_size_is_n_times_shortest(answers in arb_resolver_answers()) {
        let (report, _) = build_and_generate(&answers, CombinationMode::TruncateAndCombine);
        let shortest = answers.iter().map(|(_, len)| *len).min().unwrap_or(0);
        prop_assert_eq!(report.pool.len(), shortest * answers.len());
        for (i, _) in answers.iter().enumerate() {
            prop_assert_eq!(report.pool.slots_from(&format!("r{i}")), shortest);
        }
    }

    /// Algorithm 1: the attacker's share of the pool never exceeds the
    /// share of compromised resolvers (Section III-a), provided the pool is
    /// non-empty.
    #[test]
    fn attacker_share_is_bounded_by_resolver_share(answers in arb_resolver_answers()) {
        let (report, truth) = build_and_generate(&answers, CombinationMode::TruncateAndCombine);
        if !report.pool.is_empty() {
            let compromised = answers.iter().filter(|(c, _)| *c).count();
            let resolver_share = compromised as f64 / answers.len() as f64;
            let check = check_guarantee(&report.pool, &truth, 0.5);
            prop_assert!(check.malicious_fraction <= resolver_share + 1e-9,
                "pool share {} vs resolver share {}", check.malicious_fraction, resolver_share);
        }
    }

    /// The majority-vote output only contains addresses supported by a
    /// strict majority, and never an address that only compromised
    /// resolvers returned while they are a minority.
    #[test]
    fn majority_vote_requires_strict_majority(answers in arb_resolver_answers()) {
        let (report, truth) = build_and_generate(&answers, CombinationMode::MajorityVote);
        let compromised = answers.iter().filter(|(c, _)| *c).count();
        if compromised * 2 < answers.len() {
            for entry in report.pool.iter() {
                prop_assert!(!truth.is_malicious(entry.address),
                    "attacker address {} passed the vote with a compromised minority",
                    entry.address);
            }
        }
    }

    /// Benign fraction is always within [0, 1] and consistent with its
    /// complement.
    #[test]
    fn benign_fraction_is_a_fraction(
        slots in proptest::collection::vec((any::<bool>(), 1u8..200), 0..64)
    ) {
        let mut pool = AddressPool::new();
        for (is_evil, i) in &slots {
            pool.push(if *is_evil { evil(*i) } else { benign(*i) }, "r");
        }
        let truth = GroundTruth::with_malicious((1..=255u8).map(evil));
        let fraction = pool.benign_fraction(|a| !truth.is_malicious(a));
        prop_assert!((0.0..=1.0).contains(&fraction));
        let check = check_guarantee(&pool, &truth, 0.5);
        if !pool.is_empty() {
            prop_assert!((check.benign_fraction + check.malicious_fraction - 1.0).abs() < 1e-9);
        }
        prop_assert_eq!(check.pool_size, pool.len());
    }

    /// Support counts never exceed the number of lists, and majority-vote
    /// winners are a subset of the counted addresses.
    #[test]
    fn support_counts_are_bounded(
        lists in proptest::collection::vec(
            proptest::collection::vec(1u8..30, 0..10), 0..8)
    ) {
        let lists: Vec<Vec<IpAddr>> = lists
            .into_iter()
            .map(|l| l.into_iter().map(benign).collect())
            .collect();
        let counts = support_counts(&lists);
        for support in counts.values() {
            prop_assert!(*support <= lists.len());
            prop_assert!(*support >= 1);
        }
        let winners = majority_vote(&lists, lists.len(), 0.5);
        for (addr, support) in winners {
            prop_assert_eq!(counts.get(&addr), Some(&support));
            prop_assert!(support * 2 > lists.len());
        }
    }

    /// The threshold comparison matches exact-rational evaluation: for any
    /// rational threshold `num/den` handed over as `num as f64 / den as f64`
    /// and any support/total, `majority_vote` admits exactly the addresses
    /// with `support * den > num * total` — no floating-point off-by-one.
    #[test]
    fn majority_vote_matches_exact_rational_thresholds(
        lists in proptest::collection::vec(
            proptest::collection::vec(1u8..30, 0..10), 0..8),
        num in 0u64..1000,
        den in 1u64..1000,
    ) {
        let lists: Vec<Vec<IpAddr>> = lists
            .into_iter()
            .map(|l| l.into_iter().map(benign).collect())
            .collect();
        let total = lists.len();
        let threshold = num as f64 / den as f64;
        let winners = majority_vote(&lists, total, threshold);
        let counts = support_counts(&lists);
        let expected: Vec<(IpAddr, usize)> = counts
            .into_iter()
            .filter(|(_, support)| {
                (*support as u128) * u128::from(den) > u128::from(num) * (total as u128)
            })
            .collect();
        prop_assert_eq!(winners, expected, "threshold {}/{}", num, den);
    }

    /// Splitting a pool by family loses no entries and unions back to the
    /// original multiset size.
    #[test]
    fn split_by_family_partitions_the_pool(
        v4 in 0usize..30, v6 in 0usize..30
    ) {
        let mut pool = AddressPool::new();
        for i in 0..v4 {
            pool.push(benign((i % 250) as u8 + 1), "a");
        }
        for i in 0..v6 {
            pool.push(format!("2001:db8::{}", i + 1).parse().unwrap(), "b");
        }
        let (p4, p6) = pool.split_by_family();
        prop_assert_eq!(p4.len(), v4);
        prop_assert_eq!(p6.len(), v6);
        prop_assert_eq!(p4.len() + p6.len(), pool.len());
    }
}
