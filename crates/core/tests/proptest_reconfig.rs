//! Property-based tests on config-epoch transitions: however queries,
//! background refresh pumps, clock advances and [`ServeConfig`] epoch
//! switches interleave, the serving layer never exposes an answer older
//! than the *maximum* of the old and new `TTL + stale window` horizons —
//! cached entries survive a reconfiguration (no flush), but the served
//! age stays bounded by the widest horizon any applied epoch allowed.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use sdoh_core::{
    AddressSource, CacheConfig, CachingPoolResolver, EntryState, PoolConfig, SecurePoolGenerator,
    ServeConfig, StaticSource,
};
use sdoh_dns_server::{ClientExchanger, QueryHandler};
use sdoh_dns_wire::{Message, Rcode, RrType, Ttl};
use sdoh_netsim::{SimAddr, SimNet};

const DOMAINS: [&str; 3] = ["pool.ntpns.org", "time.example.org", "ntp.example.net"];

#[derive(Debug, Clone)]
enum Op {
    /// Serve one query for the indexed domain.
    Query(u8),
    /// Run due background refreshes.
    Pump,
    /// Advance the virtual clock by this many seconds.
    Advance(u16),
    /// Apply the indexed palette config as the next epoch.
    Apply(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..DOMAINS.len() as u8).prop_map(Op::Query),
            Just(Op::Pump),
            (1u16..120).prop_map(Op::Advance),
            (0u8..5).prop_map(Op::Apply),
        ],
        1..48,
    )
}

/// A palette of valid serving configs with very different horizons — from
/// a 5 s hard-TTL with no stale window to a 1 s TTL with a two-minute
/// stale window.
fn palette(index: u8) -> CacheConfig {
    let (ttl, stale) = match index % 5 {
        0 => (60, 30),
        1 => (5, 0),
        2 => (1, 120),
        3 => (30, 300),
        _ => (10, 5),
    };
    CacheConfig::default()
        .with_ttl(Ttl::from_secs(ttl))
        .with_stale_window(Duration::from_secs(stale))
}

fn horizon(config: &CacheConfig) -> Duration {
    config.ttl.as_duration() + config.stale_window
}

fn build_resolver(config: CacheConfig) -> CachingPoolResolver {
    let sources: Vec<Box<dyn AddressSource>> = (0..3)
        .map(|i| {
            Box::new(StaticSource::answering(
                format!("r{i}"),
                vec![format!("203.0.113.{}", i + 1).parse().unwrap()],
            )) as Box<dyn AddressSource>
        })
        .collect();
    let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
    CachingPoolResolver::new(generator, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any interleaving of queries, refresh pumps, clock advances and
    /// epoch switches keeps every servable (non-dead) cache entry's age
    /// within the widest `TTL + stale window` horizon seen so far, and
    /// every query is still answered.
    #[test]
    fn served_age_is_bounded_by_the_widest_applied_horizon(ops in arb_ops()) {
        let net = SimNet::new(90);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let initial = palette(0);
        let mut resolver = build_resolver(initial);
        let mut config = Arc::new(ServeConfig::new(initial).unwrap());
        let mut widest = horizon(&initial);
        let mut id: u16 = 0;

        for op in &ops {
            match op {
                Op::Query(domain) => {
                    id = id.wrapping_add(1);
                    let query = Message::query(
                        id,
                        DOMAINS[*domain as usize].parse().unwrap(),
                        RrType::A,
                    );
                    let response = resolver.handle_query(&mut exchanger, &query);
                    prop_assert_eq!(response.header.rcode, Rcode::NoError);
                    prop_assert!(
                        !response.answer_addresses().is_empty(),
                        "static upstreams always produce a pool"
                    );
                }
                Op::Pump => {
                    resolver.run_due_refreshes(&mut exchanger);
                }
                Op::Advance(secs) => {
                    net.clock().advance(Duration::from_secs(u64::from(*secs)));
                }
                Op::Apply(index) => {
                    let cache = palette(*index);
                    config = Arc::new(config.next(cache).unwrap());
                    resolver.apply_config(config.clone(), net.now());
                    widest = widest.max(horizon(&cache));
                    prop_assert_eq!(resolver.current_epoch(), config.epoch());
                }
            }
            // The invariant, checked after *every* step: nothing servable
            // is older than the widest horizon any epoch ever allowed.
            for probe in resolver.probe_entries(net.now()) {
                if probe.state != EntryState::Dead {
                    prop_assert!(
                        probe.age <= widest,
                        "{:?} servable at age {:?} > widest horizon {:?} (epoch {})",
                        probe.key, probe.age, widest, resolver.current_epoch()
                    );
                }
            }
        }
    }

    /// The exact per-entry bound across a single transition A -> B: the
    /// stamped freshness expiry (`ttl_A`) is honored, and the stale tail
    /// is judged under B but capped by B's own generation horizon — so an
    /// entry is servable strictly before
    /// `max(ttl_A, min(ttl_A, ttl_B) + stale_B)` and dead strictly after,
    /// with no gap in between.
    #[test]
    fn transition_bound_caps_the_stale_tail_by_the_new_horizon(
        a in 0u8..5, b in 0u8..5, age in 0u64..600
    ) {
        let net = SimNet::new(91);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let first = palette(a);
        let second = palette(b);
        let mut resolver = build_resolver(first);
        let config = Arc::new(ServeConfig::new(first).unwrap());

        let query = Message::query(1, DOMAINS[0].parse().unwrap(), RrType::A);
        resolver.handle_query(&mut exchanger, &query);
        resolver.apply_config(Arc::new(config.next(second).unwrap()), net.now());
        net.clock().advance(Duration::from_secs(age));

        let stale_tail =
            first.ttl.as_duration().min(second.ttl.as_duration()) + second.stale_window;
        let bound = first.ttl.as_duration().max(stale_tail);
        let servable = resolver
            .probe_entries(net.now())
            .iter()
            .any(|probe| probe.state != EntryState::Dead);
        if Duration::from_secs(age) > bound {
            prop_assert!(!servable, "entry aged {age}s outlived the {bound:?} bound");
        } else if Duration::from_secs(age) < bound {
            prop_assert!(servable, "entry aged {age}s inside the {bound:?} bound went dead");
        }
    }
}
