//! Property test of the serving subsystem's cache-coherence invariant: for
//! **any interleaving** of client queries, virtual-clock advances and
//! background refresh pumps, a served pool is never older than
//! `TTL + stale window`, and its record set is byte-identical to the pool
//! of some single generation produced within that window — the cache never
//! serves an expired-beyond-stale pool and never mixes the output of
//! different generations.

use std::net::IpAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use sdoh_core::serve::{CacheConfig, CachingPoolResolver};
use sdoh_core::{
    AddressSource, FetchError, FetchStart, PendingFetch, PoolConfig, SecurePoolGenerator,
};
use sdoh_dns_server::{ClientExchanger, QueryHandler};
use sdoh_dns_wire::{Message, Name, Rcode, RrType, Ttl};
use sdoh_netsim::{NetResult, SimAddr, SimInstant, SimNet};

const TTL_SECS: u64 = 30;
const STALE_SECS: u64 = 30;
const DOMAINS: usize = 3;

/// Encodes generation `epoch` as the two addresses of its answer.
fn epoch_addresses(epoch: u32) -> Vec<IpAddr> {
    let encode = |tag: u8| {
        IpAddr::V4(std::net::Ipv4Addr::new(
            10 + tag,
            (epoch >> 16) as u8,
            (epoch >> 8) as u8,
            epoch as u8,
        ))
    };
    vec![encode(0), encode(1)]
}

/// Recovers the generation epoch from a served address.
fn decode_epoch(addr: IpAddr) -> u32 {
    match addr {
        IpAddr::V4(v4) => {
            let [_, a, b, c] = v4.octets();
            (u32::from(a) << 16) | (u32::from(b) << 8) | u32::from(c)
        }
        IpAddr::V6(_) => panic!("epoch sources answer IPv4 only"),
    }
}

/// An [`AddressSource`] whose answer identifies the generation that fetched
/// it: fetch number `i` (shared across domains) answers the two addresses
/// of epoch `i`. Immediate (no I/O), so every operation of the property
/// test happens at a single frozen virtual instant. (`Arc` + atomic rather
/// than `Rc<Cell<_>>`: `AddressSource` is `Send` so the serve layer can
/// cross threads.)
struct EpochSource {
    counter: Arc<AtomicU32>,
}

impl AddressSource for EpochSource {
    fn source_name(&self) -> String {
        "epoch".into()
    }

    fn start_fetch(&self, _domain: &Name, _rtype: RrType, _id: u16) -> FetchStart {
        let epoch = self.counter.fetch_add(1, Ordering::Relaxed);
        FetchStart::Immediate(Ok(epoch_addresses(epoch)))
    }

    fn handle_response(
        &self,
        _pending: PendingFetch,
        _outcome: NetResult<Vec<u8>>,
    ) -> Result<Vec<IpAddr>, FetchError> {
        unreachable!("immediate source")
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// A client queries one of the domains.
    Query(usize),
    /// Virtual time passes.
    Advance(u64),
    /// The background task pumps due refreshes.
    Pump,
}

fn decode_op(kind: u8, param: u64) -> Op {
    match kind % 5 {
        // Queries dominate the mix, like real serving traffic.
        0..=2 => Op::Query(param as usize % DOMAINS),
        3 => Op::Advance(param % 45),
        _ => Op::Pump,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn served_pools_are_within_window_and_unmixed(
        raw_ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..80),
        seed in any::<u64>(),
    ) {
        let net = SimNet::new(seed);
        let counter = Arc::new(AtomicU32::new(0));
        let sources: Vec<Box<dyn AddressSource>> = vec![Box::new(EpochSource {
            counter: Arc::clone(&counter),
        })];
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let mut resolver = CachingPoolResolver::new(
            generator,
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(TTL_SECS as u32))
                .with_stale_window(Duration::from_secs(STALE_SECS)),
        );
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let domains: Vec<Name> = (0..DOMAINS)
            .map(|i| format!("pool{i}.ntpns.org").parse().unwrap())
            .collect();

        // Virtual instant each generation ran at, by epoch. The sources are
        // immediate, so a whole operation happens at one frozen instant and
        // any generations an operation triggered ran exactly "now".
        let mut generated_at: Vec<SimInstant> = Vec::new();
        let mut query_id: u16 = 0;

        for &(kind, param) in &raw_ops {
            let now = net.now();
            let generations_before = resolver.metrics().generations;
            let mut response = None;
            match decode_op(kind, param) {
                Op::Query(domain) => {
                    query_id = query_id.wrapping_add(1);
                    let query =
                        Message::query(query_id, domains[domain].clone(), RrType::A);
                    response = Some(resolver.handle_query(&mut exchanger, &query));
                    prop_assert_eq!(net.now(), now, "immediate sources freeze the clock");
                }
                Op::Advance(secs) => net.clock().advance(Duration::from_secs(secs)),
                Op::Pump => {
                    resolver.run_due_refreshes(&mut exchanger);
                    prop_assert_eq!(net.now(), now, "immediate sources freeze the clock");
                }
            }
            let generations_after = resolver.metrics().generations;
            for _ in generations_before..generations_after {
                generated_at.push(now);
            }
            prop_assert_eq!(
                u64::from(counter.load(Ordering::Relaxed)),
                generations_after,
                "every generation fetched exactly once"
            );

            if let Some(response) = response {
                prop_assert_eq!(response.header.rcode, Rcode::NoError);
                let addresses = response.answer_addresses();
                prop_assert!(!addresses.is_empty());

                // Identify which generation produced the served pool…
                let epoch = decode_epoch(addresses[0]);
                prop_assert!((epoch as usize) < generated_at.len());

                // …it must be byte-identical to that generation's full
                // record set (no mixing across generations)…
                prop_assert_eq!(&addresses, &epoch_addresses(epoch));

                // …and that generation must have run within the coherence
                // window.
                let age = now.saturating_duration_since(generated_at[epoch as usize]);
                prop_assert!(
                    age <= Duration::from_secs(TTL_SECS + STALE_SECS),
                    "served a pool {age:?} old (limit {}s)",
                    TTL_SECS + STALE_SECS
                );
            }
        }

        // Serving accounting stays coherent over any interleaving.
        let metrics = resolver.metrics();
        prop_assert_eq!(
            metrics.hits + metrics.stale_serves + metrics.negative_hits + metrics.misses,
            metrics.queries
        );
        prop_assert_eq!(metrics.generation_failures, 0);
    }
}
