//! Property tests of the sans-IO session's core invariant: delivering the
//! resolver responses in **any permutation order** produces a pool
//! identical to the sequential driver's — determinism and
//! order-independence of the concurrent fan-out.

use proptest::prelude::*;

use sdoh_core::{
    Action, AddressSource, DohSource, DualStackPolicy, PoolConfig, PoolSession, SecurePoolGenerator,
};
use sdoh_dns_server::{Authority, Catalog, ClientExchanger, Zone};
use sdoh_doh::{DohMethod, DohServerService, ResolverDirectory, ResolverInfo};
use sdoh_netsim::{SimAddr, SimNet};

/// Deterministic permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    sdoh_netsim::SimRng::seed_from_u64(seed).shuffle(&mut order);
    order
}

fn pool_catalog() -> Catalog {
    let mut zone = Zone::new("ntpns.org".parse().unwrap());
    for i in 1..=6u8 {
        zone.add_address(
            "pool.ntpns.org".parse().unwrap(),
            format!("203.0.113.{i}").parse().unwrap(),
        );
    }
    zone.add_address(
        "pool.ntpns.org".parse().unwrap(),
        "2001:db8::7".parse().unwrap(),
    );
    let mut catalog = Catalog::new();
    catalog.add_zone(zone);
    catalog
}

/// Builds a simulation with `resolvers` DoH servers; resolver 0 is left
/// unregistered (so its exchange times out) when `first_dead` is set.
fn build_net(seed: u64, resolvers: usize, first_dead: bool) -> (SimNet, Vec<ResolverInfo>) {
    let net = SimNet::new(seed);
    let infos = ResolverDirectory::well_known(seed).take(resolvers);
    for (index, info) in infos.iter().enumerate() {
        if first_dead && index == 0 {
            continue;
        }
        net.register(
            info.addr,
            DohServerService::new(info.clone(), Authority::new(pool_catalog())),
        );
    }
    (net, infos)
}

fn sources_for(infos: &[ResolverInfo]) -> Vec<Box<dyn AddressSource>> {
    infos
        .iter()
        .map(|info| {
            Box::new(DohSource::new(info.clone()).method(DohMethod::Get)) as Box<dyn AddressSource>
        })
        .collect()
}

/// Drives a session by hand: performs every transmit in plan order, then
/// feeds the collected outcomes back in the given permutation.
fn run_permuted(
    config: PoolConfig,
    net: &SimNet,
    infos: &[ResolverInfo],
    session_seed: u64,
    perm_seed: u64,
) -> sdoh_core::PoolResult<sdoh_core::GenerationReport> {
    let sources = sources_for(infos);
    let domain = "pool.ntpns.org".parse().unwrap();
    let mut session = PoolSession::new(config, &sources, &domain, session_seed)?;

    let mut transmits = Vec::new();
    loop {
        match session.poll(net.now()) {
            Action::Transmit(t) => transmits.push(t),
            Action::Deliver(_) => {}
            Action::WaitUntil(_) | Action::Done => break,
        }
    }

    let client = SimAddr::v4(10, 0, 0, 1, 40000);
    let outcomes: Vec<_> = transmits
        .iter()
        .map(|t| {
            net.transact(
                client,
                t.request.dst,
                t.request.channel,
                &t.request.payload,
                t.request.timeout,
            )
        })
        .collect();

    for &position in &permutation(transmits.len(), perm_seed) {
        session
            .handle_response(transmits[position].transaction, outcomes[position].clone())
            .expect("valid transaction");
    }
    while let Action::Deliver(_) = session.poll(net.now()) {}
    session.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 1: every delivery permutation produces exactly the pool
    /// the sequential driver produces, slot for slot and source for source.
    #[test]
    fn any_delivery_order_matches_the_sequential_driver(
        resolvers in 1usize..5,
        net_seed in any::<u64>(),
        session_seed in any::<u64>(),
        perm_seed in any::<u64>(),
        first_dead in any::<bool>(),
    ) {
        let config = PoolConfig::algorithm1();

        let (reference_net, infos) = build_net(net_seed, resolvers, first_dead);
        let generator =
            SecurePoolGenerator::new(config.clone(), sources_for(&infos)).unwrap();
        let mut exchanger =
            ClientExchanger::new(&reference_net, SimAddr::v4(10, 0, 0, 1, 40000));
        let sequential =
            generator.generate_sequential(&mut exchanger, &"pool.ntpns.org".parse().unwrap());

        let (permuted_net, infos) = build_net(net_seed, resolvers, first_dead);
        let permuted = run_permuted(config, &permuted_net, &infos, session_seed, perm_seed);

        // Errors (a lone resolver being dead yields NotEnoughResponses)
        // must match too, not only successful reports.
        prop_assert_eq!(&permuted, &sequential);
        if first_dead {
            if let Ok(report) = &permuted {
                prop_assert_eq!(report.failed(), 1, "the dead resolver must be reported");
            }
        }
    }

    /// The invariant holds for dual-stack union lookups too, where each
    /// source contributes two interleavable transactions (A and AAAA).
    #[test]
    fn union_lookups_are_order_independent(
        resolvers in 1usize..4,
        net_seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        let config = PoolConfig::algorithm1().with_dual_stack(DualStackPolicy::Union);

        let (reference_net, infos) = build_net(net_seed, resolvers, false);
        let generator =
            SecurePoolGenerator::new(config.clone(), sources_for(&infos)).unwrap();
        let mut exchanger =
            ClientExchanger::new(&reference_net, SimAddr::v4(10, 0, 0, 1, 40000));
        let sequential = generator
            .generate_sequential(&mut exchanger, &"pool.ntpns.org".parse().unwrap())
            .unwrap();

        let (permuted_net, infos) = build_net(net_seed, resolvers, false);
        let permuted = run_permuted(config, &permuted_net, &infos, 99, perm_seed).unwrap();

        prop_assert_eq!(permuted, sequential);
    }
}
