//! Benchmarks of the core contribution: Algorithm 1 and the majority vote,
//! both over in-memory answer lists (pure algorithm cost) and end to end
//! over the full simulated DoH stack.

use std::net::IpAddr;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sdoh_core::{majority_vote, AddressSource, PoolConfig, SecurePoolGenerator, StaticSource};
use sdoh_dns_server::ClientExchanger;
use sdoh_netsim::{SimAddr, SimNet};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR};

fn answer_lists(resolvers: usize, addresses: usize) -> Vec<Vec<IpAddr>> {
    (0..resolvers)
        .map(|r| {
            (0..addresses)
                .map(|a| {
                    IpAddr::V4(std::net::Ipv4Addr::new(
                        203,
                        0,
                        113,
                        ((r * addresses + a) % 250 + 1) as u8,
                    ))
                })
                .collect()
        })
        .collect()
}

fn bench_algorithm1_pure(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool/algorithm1_static");
    for &n in &[3usize, 7, 15] {
        let sources: Vec<Box<dyn AddressSource>> = answer_lists(n, 16)
            .into_iter()
            .enumerate()
            .map(|(i, list)| {
                Box::new(StaticSource::answering(format!("r{i}"), list)) as Box<dyn AddressSource>
            })
            .collect();
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let net = SimNet::new(1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
                generator
                    .generate(&mut exchanger, &"pool.ntpns.org".parse().unwrap())
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_majority_vote(c: &mut Criterion) {
    let lists = answer_lists(15, 32);
    c.bench_function("pool/majority_vote_15x32", |b| {
        b.iter(|| majority_vote(black_box(&lists), 15, 0.5))
    });
}

fn bench_end_to_end_doh(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool/end_to_end_doh");
    group.sample_size(20);
    for &n in &[3usize, 5] {
        let scenario = Scenario::build(ScenarioConfig {
            seed: 1,
            resolvers: n,
            ntp_servers: 8,
            ..ScenarioConfig::default()
        });
        let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
                generator
                    .generate(&mut exchanger, &scenario.pool_domain)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Sequential vs concurrent fan-out over the same 5-resolver scenario: the
/// host-time cost of the session batch driver against driving the same
/// exchanges one at a time, plus the virtual-latency gap printed once as a
/// side channel (the concurrency win the redesign exists for).
fn bench_fanout_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool/fanout");
    group.sample_size(20);
    for &n in &[3usize, 5] {
        let scenario = Scenario::build(ScenarioConfig {
            seed: 2,
            resolvers: n,
            ntp_servers: 8,
            ..ScenarioConfig::default()
        });
        let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();
        group.bench_with_input(BenchmarkId::new("concurrent", n), &n, |b, _| {
            b.iter(|| {
                let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
                generator
                    .generate(&mut exchanger, &scenario.pool_domain)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
                generator
                    .generate_sequential(&mut exchanger, &scenario.pool_domain)
                    .unwrap()
            })
        });

        // Virtual latency (simulated wall clock) is the quantity the
        // concurrency redesign improves; report it alongside host time.
        let (_, concurrent) = scenario.generate_pool(PoolConfig::algorithm1()).unwrap();
        let (_, sequential) = scenario
            .generate_pool_sequential(PoolConfig::algorithm1())
            .unwrap();
        println!(
            "pool/fanout/virtual_latency/{n}: concurrent {:.1} ms vs sequential {:.1} ms",
            concurrent.as_secs_f64() * 1000.0,
            sequential.as_secs_f64() * 1000.0,
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1_pure,
    bench_majority_vote,
    bench_end_to_end_doh,
    bench_fanout_modes
);
criterion_main!(benches);
