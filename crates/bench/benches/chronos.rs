//! Benchmarks of the NTP/Chronos application layer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdoh_netsim::{SimAddr, SimNet};
use sdoh_ntp::{
    register_pool, ChronosClient, ChronosConfig, LocalClock, NtpClient, NtpPacket, NtpTimestamp,
};

fn bench_packet_codec(c: &mut Criterion) {
    let packet = NtpPacket::client_request(NtpTimestamp::from_seconds_f64(3_900_000_123.5));
    let wire = packet.encode();
    c.bench_function("ntp/packet_encode", |b| {
        b.iter(|| black_box(&packet).encode())
    });
    c.bench_function("ntp/packet_decode", |b| {
        b.iter(|| NtpPacket::decode(black_box(&wire)).unwrap())
    });
}

fn bench_chronos_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntp/chronos_update");
    group.sample_size(30);
    for &pool_size in &[12usize, 24, 48] {
        let net = SimNet::new(9);
        let addrs: Vec<SimAddr> = (0..pool_size)
            .map(|i| SimAddr::v4(203, 0, (113 + i / 250) as u8, (i % 250 + 1) as u8, 123))
            .collect();
        register_pool(&net, &addrs, 0, 0.0, 9);
        let pool: Vec<std::net::IpAddr> = addrs.iter().map(|a| a.ip).collect();
        group.bench_function(format!("pool_{pool_size}"), |b| {
            b.iter(|| {
                let mut clock = LocalClock::new(net.clock(), 0.0);
                let mut chronos = ChronosClient::new(
                    ChronosConfig::default(),
                    NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)),
                    9,
                )
                .unwrap();
                chronos.update(&net, &mut clock, &pool).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packet_codec, bench_chronos_round);
criterion_main!(benches);
