//! Benchmarks of the DNS wire-format hot paths: message encode/decode,
//! name compression and the base64url codec used by DoH GET.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdoh_dns_wire::{base64url, Message, MessageBuilder, RrType};

fn pool_response(addresses: u8) -> Message {
    let query = Message::query(0x5555, "pool.ntpns.org".parse().unwrap(), RrType::A);
    let mut builder = MessageBuilder::response_to(&query).authoritative(true);
    for i in 0..addresses {
        builder = builder.answer_address(300, format!("203.0.113.{}", i + 1).parse().unwrap());
    }
    builder.build()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_wire/encode");
    for &n in &[1u8, 8, 32] {
        let message = pool_response(n);
        group.bench_function(format!("{n}_answers"), |b| {
            b.iter(|| black_box(&message).encode().unwrap())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("dns_wire/decode");
    for &n in &[1u8, 8, 32] {
        let wire = pool_response(n).encode().unwrap();
        group.bench_function(format!("{n}_answers"), |b| {
            b.iter(|| Message::decode(black_box(&wire)).unwrap())
        });
    }
    group.finish();
}

fn bench_base64url(c: &mut Criterion) {
    let wire = pool_response(8).encode().unwrap();
    let encoded = base64url::encode(&wire);
    c.bench_function("dns_wire/base64url_encode", |b| {
        b.iter(|| base64url::encode(black_box(&wire)))
    });
    c.bench_function("dns_wire/base64url_decode", |b| {
        b.iter(|| base64url::decode(black_box(&encoded)).unwrap())
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_base64url);
criterion_main!(benches);
