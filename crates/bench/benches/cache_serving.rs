//! Benchmarks of the pool-serving subsystem: per-query host cost of the
//! cached front end against the uncached generate-per-query baseline, and
//! the coalesced batch path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdoh_core::{CacheConfig, CachingPoolResolver, PoolConfig, SecurePoolResolver};
use sdoh_dns_server::{ClientExchanger, QueryHandler};
use sdoh_dns_wire::{Message, RrType, Ttl};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR};

const DOMAINS: usize = 4;

fn scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        seed: 3,
        resolvers: 3,
        ntp_servers: 8,
        pool_domains: DOMAINS,
        ..ScenarioConfig::default()
    })
}

fn query(id: u16, scenario: &Scenario, client: usize) -> Message {
    Message::query(
        id,
        scenario.pool_domains[client % DOMAINS].clone(),
        RrType::A,
    )
}

/// One query against the uncached baseline: a full distributed generation
/// every iteration.
fn bench_uncached_query(c: &mut Criterion) {
    let scenario = scenario();
    let mut resolver =
        SecurePoolResolver::new(scenario.pool_generator(PoolConfig::algorithm1()).unwrap());
    let mut id: u16 = 0;
    c.bench_function("serve/uncached_query", |b| {
        b.iter(|| {
            id = id.wrapping_add(1);
            let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
            resolver.handle_query(&mut exchanger, &query(id, &scenario, id as usize))
        })
    });
}

/// One query against the warm cache: the steady-state serving cost.
fn bench_cached_hit(c: &mut Criterion) {
    let scenario = scenario();
    // A TTL far beyond the measured virtual time keeps every iteration a
    // fresh hit.
    let config = CacheConfig::default()
        .with_ttl(Ttl::from_secs(u32::MAX))
        .with_stale_window(Duration::ZERO);
    let mut resolver = CachingPoolResolver::new(
        scenario.pool_generator(PoolConfig::algorithm1()).unwrap(),
        config,
    );
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    for i in 0..DOMAINS as u16 {
        resolver.handle_query(&mut exchanger, &query(i + 1, &scenario, i as usize));
    }
    let mut id: u16 = 100;
    c.bench_function("serve/cached_hit", |b| {
        b.iter(|| {
            id = id.wrapping_add(1);
            let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
            resolver.handle_query(&mut exchanger, &query(id, &scenario, id as usize))
        })
    });
}

/// A cold burst of coalesced queries: N clients, DOMAINS flights.
fn bench_coalesced_cold_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/coalesced_cold_burst");
    group.sample_size(20);
    for &clients in &[16usize, 64] {
        let scenario = scenario();
        let generator = scenario.pool_generator(PoolConfig::algorithm1()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, _| {
            b.iter(|| {
                // Zero TTL: nothing is cached, every burst is cold and every
                // iteration pays exactly DOMAINS coalesced generations.
                let mut resolver = CachingPoolResolver::new(
                    scenario.pool_generator(PoolConfig::algorithm1()).unwrap(),
                    CacheConfig::default()
                        .with_ttl(Ttl::ZERO)
                        .with_negative_ttl(Ttl::ZERO),
                );
                let queries: Vec<Message> = (0..clients)
                    .map(|i| query(i as u16 + 1, &scenario, i))
                    .collect();
                let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
                resolver.serve_batch(&mut exchanger, &queries)
            })
        });
        let _ = generator;
    }
    group.finish();

    // Side channel: the serving economics in virtual time, printed once —
    // the quantity E11 (exp_cache_serving) tabulates in full.
    let table = sdoh_bench::cache_serving::run(&[100], 3, 3);
    for row in table.rows() {
        println!(
            "serve/economics/{}: {} queries, {} generations, {} q/gen, {} ms mean",
            row[0], row[2], row[3], row[5], row[6]
        );
    }
}

criterion_group!(
    benches,
    bench_uncached_query,
    bench_cached_hit,
    bench_coalesced_cold_burst
);
criterion_main!(benches);
