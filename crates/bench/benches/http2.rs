//! Benchmarks of the HTTP/2 + HPACK + secure-channel transport that carries
//! DoH exchanges.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdoh_doh::h2::{hpack, ClientConnection, ServerConnection};
use sdoh_doh::http::{Request, Response};
use sdoh_doh::secure::{self, SecretKey};

fn bench_hpack(c: &mut Criterion) {
    let headers: Vec<(String, String)> = vec![
        (":method".into(), "GET".into()),
        (":scheme".into(), "https".into()),
        (":authority".into(), "dns.google".into()),
        (
            ":path".into(),
            "/dns-query?dns=AAABAAABAAAAAAAAA2ZvbwNiYXIAAAEAAQ".into(),
        ),
        ("accept".into(), "application/dns-message".into()),
    ];
    let block = hpack::encode(&headers);
    c.bench_function("h2/hpack_encode", |b| {
        b.iter(|| hpack::encode(black_box(&headers)))
    });
    c.bench_function("h2/hpack_decode", |b| {
        b.iter(|| hpack::decode(black_box(&block)).unwrap())
    });
}

fn bench_request_response_exchange(c: &mut Criterion) {
    c.bench_function("h2/get_exchange", |b| {
        b.iter(|| {
            let mut client = ClientConnection::new();
            let mut server = ServerConnection::new();
            let request = Request::get("dns.google", "/dns-query?dns=AAAB")
                .with_header("accept", "application/dns-message");
            let sid = client.send_request(&request);
            let requests = server.receive(&client.take_output()).unwrap();
            let (rid, _req) = &requests[0];
            server.send_response(
                *rid,
                &Response::ok("application/dns-message", vec![0u8; 64]),
            );
            let responses = client.receive(&server.take_output()).unwrap();
            assert_eq!(responses[0].0, sid);
        })
    });
}

fn bench_secure_channel(c: &mut Criterion) {
    let key = SecretKey::derive(1, "dns.google");
    let payload = vec![0xAAu8; 512];
    let sealed = secure::seal(&key, secure::SEQ_CLIENT, &payload);
    c.bench_function("secure/seal_512B", |b| {
        b.iter(|| secure::seal(black_box(&key), secure::SEQ_CLIENT, black_box(&payload)))
    });
    c.bench_function("secure/open_512B", |b| {
        b.iter(|| secure::open(black_box(&key), secure::SEQ_CLIENT, black_box(&sealed)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_hpack,
    bench_request_response_exchange,
    bench_secure_channel
);
criterion_main!(benches);
