//! Benchmarks of the security-analysis machinery (exact binomial tails and
//! Monte-Carlo throughput), which the larger sweeps rely on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdoh_analysis::{
    attack_probability_exact, attack_probability_paper, estimate_resolver_compromise, AttackModel,
};

fn bench_closed_forms(c: &mut Criterion) {
    let model = AttackModel::new(31, 0.2, 0.5);
    c.bench_function("analysis/paper_bound", |b| {
        b.iter(|| attack_probability_paper(black_box(&model)))
    });
    c.bench_function("analysis/exact_tail_n31", |b| {
        b.iter(|| attack_probability_exact(black_box(&model)))
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let model = AttackModel::new(15, 0.2, 0.5);
    c.bench_function("analysis/monte_carlo_10k_trials", |b| {
        b.iter(|| estimate_resolver_compromise(black_box(&model), 10_000, 7))
    });
}

criterion_group!(benches, bench_closed_forms, bench_monte_carlo);
criterion_main!(benches);
