//! E4 — the off-path attack of \[1\] against plain-DNS pool generation vs.
//! the distributed DoH proposal.
//!
//! The attacker spoofs DNS answers on plain (Do53) paths with a per-query
//! success probability `p`. Against the baseline it targets the client's
//! query to its ISP resolver; against the proposal the only plain-DNS left
//! is each DoH resolver's own upstream lookup, so `p` plays the role of
//! `p_attack` per resolver and the attacker needs a majority of them.

use sdoh_analysis::{fmt_probability, Table};
use sdoh_core::{attacker_controls_fraction, AddressPool, PoolConfig};
use sdoh_dns_server::{ClientExchanger, StubResolver};
use sdoh_netsim::SimAddr;
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER, NTPNS_SERVER};

use super::pool_spoofer;

/// One configuration of the experiment.
#[derive(Debug, Clone, Copy)]
enum Setup {
    PlainDns,
    DistributedDoh { resolvers: usize },
}

/// Runs `trials` independent scenarios per spoof-probability point and
/// reports the empirical probability that the attacker ends up controlling
/// at least half of the generated pool.
pub fn run(spoof_probabilities: &[f64], trials: u64, seed: u64) -> Table {
    let mut table = Table::new(
        "E4: off-path attacker success against pool generation (goal: >= 1/2 of the pool)",
        &[
            "per-query spoof probability",
            "plain DNS (1 resolver)",
            "distributed DoH (N=3)",
            "distributed DoH (N=5)",
            "analytic binomial tail (N=3)",
        ],
    );
    for (i, &p) in spoof_probabilities.iter().enumerate() {
        let plain = success_rate(Setup::PlainDns, p, trials, seed + i as u64 * 1000);
        let doh3 = success_rate(
            Setup::DistributedDoh { resolvers: 3 },
            p,
            trials,
            seed + i as u64 * 1000 + 300,
        );
        let doh5 = success_rate(
            Setup::DistributedDoh { resolvers: 5 },
            p,
            trials,
            seed + i as u64 * 1000 + 500,
        );
        let analytic =
            sdoh_analysis::attack_probability_exact(&sdoh_analysis::AttackModel::new(3, p, 0.5));
        table.push_row([
            format!("{p:.2}"),
            fmt_probability(plain),
            fmt_probability(doh3),
            fmt_probability(doh5),
            fmt_probability(analytic),
        ]);
    }
    table
}

fn success_rate(setup: Setup, p: f64, trials: u64, seed: u64) -> f64 {
    let mut successes = 0u64;
    for trial in 0..trials {
        if run_trial(setup, p, seed + trial) {
            successes += 1;
        }
    }
    successes as f64 / trials.max(1) as f64
}

fn run_trial(setup: Setup, p: f64, seed: u64) -> bool {
    let resolvers = match setup {
        Setup::PlainDns => 1,
        Setup::DistributedDoh { resolvers } => resolvers,
    };
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    let truth = scenario.ground_truth();
    let attacker_pool: Vec<std::net::IpAddr> =
        scenario.attacker_ntp.iter().take(8).copied().collect();

    // Victim paths: the client->ISP path for the baseline, every resolver's
    // upstream path to the pool-domain authoritative server for the
    // proposal (the resolvers themselves are what the attacker must beat).
    let victims: Vec<SimAddr> = match setup {
        Setup::PlainDns => vec![ISP_RESOLVER],
        Setup::DistributedDoh { .. } => vec![NTPNS_SERVER],
    };
    scenario.net.set_adversary(pool_spoofer(
        p,
        victims,
        scenario.pool_domain.clone(),
        attacker_pool,
    ));

    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let pool = match setup {
        Setup::PlainDns => {
            let stub = StubResolver::new(ISP_RESOLVER);
            match stub.lookup_ipv4(&mut exchanger, &scenario.pool_domain) {
                Ok(addresses) => {
                    let mut pool = AddressPool::new();
                    for addr in addresses {
                        pool.push(addr, "isp-resolver");
                    }
                    pool
                }
                Err(_) => AddressPool::new(),
            }
        }
        Setup::DistributedDoh { .. } => scenario
            .pool_generator(PoolConfig::algorithm1())
            .expect("generator")
            .generate(&mut exchanger, &scenario.pool_domain)
            .map(|report| report.pool)
            .unwrap_or_default(),
    };
    attacker_controls_fraction(&pool, &truth, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certain_spoofing_always_beats_plain_dns_never_beats_doh_majority() {
        // p = 1.0: the plain baseline is always captured; with independent
        // per-query spoofing of resolver upstreams the DoH pool is also
        // captured (every resolver is poisoned) — the protection comes from
        // p < 1 per resolver, tested below.
        assert_eq!(success_rate(Setup::PlainDns, 1.0, 3, 42), 1.0);

        // p = 0: nobody is captured.
        assert_eq!(success_rate(Setup::PlainDns, 0.0, 3, 43), 0.0);
        assert_eq!(
            success_rate(Setup::DistributedDoh { resolvers: 3 }, 0.0, 3, 44),
            0.0
        );
    }

    #[test]
    fn moderate_spoofing_hurts_plain_dns_much_more_than_doh() {
        // Below the honest-majority threshold (p < 1/2) the distributed
        // scheme suppresses the attack quadratically while the plain
        // baseline fails linearly. The bounds are loose enough to make the
        // statistical test robust (expected rates: plain ~0.9, DoH ~0.16).
        let trials = 40;
        let plain = success_rate(Setup::PlainDns, 0.9, trials, 7);
        let doh = success_rate(Setup::DistributedDoh { resolvers: 3 }, 0.3, trials, 8);
        assert!(
            plain > 0.6,
            "plain DNS with a 0.9 spoof rate should usually be captured ({plain})"
        );
        assert!(
            doh < 0.75,
            "DoH with p_attack = 0.3 should usually survive ({doh})"
        );
    }

    #[test]
    fn table_has_one_row_per_probability() {
        let table = run(&[0.0, 1.0], 2, 5);
        assert_eq!(table.len(), 2);
    }
}
