//! E12 — real-socket serving scalability: the threaded runtime over
//! loopback UDP, multi-shard against the single-shard baseline.
//!
//! Unlike E1–E11, which measure *virtual* time inside the deterministic
//! simulator, this experiment measures **host wall-clock time of real
//! I/O**: client threads send actual UDP datagrams to a
//! [`PoolRuntime`], whose worker threads
//! decode, serve from their per-shard pool caches and reply. Two phases
//! per configuration:
//!
//! 1. **Cold sweep** — one concurrent client per pool domain hits the
//!    empty cache at once, each query paying a full distributed
//!    generation against upstream DoH terminators that add a realistic
//!    per-exchange round-trip latency. A single shard serializes all
//!    those generations behind one worker (head-of-line blocking); N
//!    shards overlap them, so the sweep completes up to N× faster. This
//!    is the scaling claim of per-shard cache ownership, and it holds
//!    even on a single-core host because generation time is upstream
//!    wait, not CPU.
//! 2. **Warm throughput** — the same clients then hammer the warm caches;
//!    every query is a hit. This measures the pure serving path
//!    (decode → shard cache → encode → send). On a multi-core host it
//!    scales with shards too; on a single-core host it is CPU-bound and
//!    flat across shard counts.
//!
//! Numbers are host-dependent (recorded ones come from the machine that
//! produced `BENCH_runtime_throughput.json`); the *shape* — the
//! multi-shard cold sweep beating the single-shard one — is the claim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdoh_analysis::Table;
use sdoh_core::{CacheConfig, PoolConfig};
use sdoh_runtime::{LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig};
use secure_doh::wire::{Message, RrType};

/// Pool domains the load is spread over (enough to populate every shard).
const DOMAINS: usize = 16;

/// One-way latency each in-process DoH exchange pays — the realistic
/// upstream round trip that makes generations expensive, like the
/// scenario layer's simulated links do.
const UPSTREAM_LATENCY: Duration = Duration::from_millis(5);

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Worker shard count.
    pub shards: usize,
    /// Concurrent client threads of the warm phase.
    pub clients: usize,
    /// Wall-clock time for the cold sweep: one concurrent client per
    /// domain, every query paying a generation.
    pub cold_sweep: Duration,
    /// Queries sent (and answered) in the warm phase.
    pub queries: u64,
    /// Wall-clock time for the warm phase.
    pub elapsed: Duration,
    /// Warm queries per second of host time.
    pub throughput: f64,
    /// Mean warm per-query round-trip latency in microseconds.
    pub mean_latency_us: f64,
    /// Pool generations the runtime performed (the cold-sweep misses).
    pub generations: u64,
    /// Fraction of queries served without a generation on the query path.
    pub hit_ratio: f64,
}

/// Measures one configuration: the concurrent cold sweep over every
/// domain, then `clients` threads send `queries_per_client` warm queries
/// each.
pub fn measure(
    shards: usize,
    clients: usize,
    queries_per_client: usize,
    seed: u64,
) -> ThroughputRow {
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: DOMAINS,
        addresses_per_domain: 8,
        upstream_latency: UPSTREAM_LATENCY,
        seed,
        ..LoopbackConfig::default()
    });
    let shard_set = fleet
        .shards(
            shards,
            PoolConfig::algorithm1(),
            // A TTL far beyond the run keeps the warm phase all cache hits.
            CacheConfig::default()
                .with_ttl(secure_doh::wire::Ttl::from_secs(3600))
                .with_stale_window(Duration::from_secs(3600)),
        )
        .expect("valid configuration");
    let runtime = PoolRuntime::start(RuntimeConfig::default(), shard_set).expect("bind loopback");
    let udp = runtime.udp_addr();
    let tcp = runtime.tcp_addr();

    // Cold sweep: every domain queried at once against the empty cache. A
    // single shard serializes the generations; N shards overlap them.
    let cold_started = Instant::now();
    let sweepers: Vec<_> = fleet
        .domains
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, domain)| {
            std::thread::spawn(move || {
                let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
                stub.query(&Message::query(i as u16, domain, RrType::A))
                    .expect("cold query answered");
            })
        })
        .collect();
    for sweeper in sweepers {
        sweeper.join().expect("sweep client");
    }
    let cold_sweep = cold_started.elapsed();

    let latency_ns = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let domains = fleet.domains.clone();
            let latency_ns = Arc::clone(&latency_ns);
            std::thread::spawn(move || {
                let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
                for i in 0..queries_per_client {
                    let id = (client * queries_per_client + i) as u16;
                    let domain = domains[(client + i) % domains.len()].clone();
                    let sent = Instant::now();
                    stub.query(&Message::query(id, domain, RrType::A))
                        .expect("query answered");
                    latency_ns.fetch_add(sent.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    let elapsed = started.elapsed();
    let stats = runtime.shutdown();

    let queries = (clients * queries_per_client) as u64;
    assert_eq!(
        stats.total.serve.queries,
        queries + fleet.domains.len() as u64,
        "every sent query was served exactly once"
    );
    ThroughputRow {
        shards,
        clients,
        cold_sweep,
        queries,
        elapsed,
        throughput: queries as f64 / elapsed.as_secs_f64(),
        mean_latency_us: latency_ns.load(Ordering::Relaxed) as f64 / queries as f64 / 1000.0,
        generations: stats.total.serve.generations,
        hit_ratio: stats.total.serve.hit_ratio(),
    }
}

/// Runs the sweep over `shard_counts` and tabulates it.
pub fn run(
    shard_counts: &[usize],
    clients: usize,
    queries_per_client: usize,
    seed: u64,
) -> (Table, Vec<ThroughputRow>) {
    let mut table = Table::new(
        "E12: real-socket serving scalability over loopback UDP vs shard count",
        &[
            "shards",
            "cold sweep (ms)",
            "sweep speedup",
            "clients",
            "warm queries",
            "warm throughput (q/s)",
            "mean latency (us)",
            "generations",
            "hit ratio",
        ],
    );
    let mut rows: Vec<ThroughputRow> = Vec::new();
    for &shards in shard_counts {
        let row = measure(shards, clients, queries_per_client, seed);
        let speedup = rows
            .first()
            .map(|baseline| baseline.cold_sweep.as_secs_f64() / row.cold_sweep.as_secs_f64())
            .unwrap_or(1.0);
        table.push_row([
            row.shards.to_string(),
            format!("{:.0}", row.cold_sweep.as_secs_f64() * 1000.0),
            format!("{speedup:.1}x"),
            row.clients.to_string(),
            row.queries.to_string(),
            format!("{:.0}", row.throughput),
            format!("{:.1}", row.mean_latency_us),
            row.generations.to_string(),
            format!("{:.3}", row.hit_ratio),
        ]);
        rows.push(row);
    }
    (table, rows)
}

/// Serializes the sweep as the repo's `BENCH_*.json` shape.
pub fn to_json(rows: &[ThroughputRow], recorded: &str, notes: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"runtime_throughput\",\n");
    out.push_str(&format!("  \"recorded\": \"{recorded}\",\n"));
    out.push_str(&format!("  \"notes\": \"{notes}\",\n"));
    out.push_str("  \"throughput\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"shards\": {},\n      \"cold_sweep_ms\": {:.1},\n      \
             \"clients\": {},\n      \"warm_queries\": {},\n      \
             \"warm_elapsed_ms\": {:.1},\n      \"warm_throughput_qps\": {:.0},\n      \
             \"mean_latency_us\": {:.1},\n      \"generations\": {},\n      \
             \"hit_ratio\": {:.4}\n    }}{}\n",
            row.shards,
            row.cold_sweep.as_secs_f64() * 1000.0,
            row.clients,
            row.queries,
            row.elapsed.as_secs_f64() * 1000.0,
            row.throughput,
            row.mean_latency_us,
            row.generations,
            row.hit_ratio,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_serves_everything_and_scales_shards() {
        // Smoke scale: harness correctness plus the one host-robust
        // performance claim — the multi-shard cold sweep overlaps its
        // generations (upstream wait, not CPU) and beats one shard.
        let (table, rows) = run(&[1, 8], 3, 20, 12);
        assert_eq!(rows.len(), 2);
        assert_eq!(table.rows().len(), 2);
        for row in &rows {
            assert_eq!(row.queries, 60);
            assert_eq!(row.generations as usize, DOMAINS, "cold-sweep misses only");
            assert!(row.hit_ratio > 0.7, "warm phase is cache-served");
            assert!(row.throughput > 0.0);
        }
        assert_eq!(rows[0].shards, 1);
        assert_eq!(rows[1].shards, 8);
        assert!(
            rows[1].cold_sweep < rows[0].cold_sweep,
            "8 shards ({:?}) must sweep faster than 1 ({:?})",
            rows[1].cold_sweep,
            rows[0].cold_sweep
        );

        let json = to_json(&rows, "test", "smoke");
        assert!(json.contains("\"benchmark\": \"runtime_throughput\""));
        assert!(json.contains("\"shards\": 8"));
        assert!(json.contains("cold_sweep_ms"));
    }
}
