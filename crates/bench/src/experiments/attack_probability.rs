//! E3 — Section III-b: the probability of a successful attack is
//! `p_attack^M`, exponentially small in the number of resolvers.

use sdoh_analysis::{
    resolvers_for_security_gain, sweep_attack_probability, sweep_resolver_count, sweep_table, Table,
};

/// Regenerates the attack-probability series: sweep over the number of
/// resolvers and over `p_attack`, comparing the paper's bound, the exact
/// binomial tail and a Monte-Carlo simulation.
pub fn run(trials: u64, seed: u64) -> Vec<Table> {
    let by_n = sweep_resolver_count(&[1, 3, 5, 7, 9, 15, 31], 0.2, 2.0 / 3.0, trials, seed);
    let by_p = sweep_attack_probability(
        3,
        &[0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9],
        2.0 / 3.0,
        trials,
        seed + 1,
    );

    let mut gain = Table::new(
        "E3c: resolvers needed per factor-1000 security gain (\"key size\" analogy)",
        &["p_attack", "extra resolvers for 10^-3"],
    );
    for p in [0.01, 0.1, 0.3, 0.5, 0.9] {
        gain.push_row([
            format!("{p:.2}"),
            resolvers_for_security_gain(p, 3.0).to_string(),
        ]);
    }

    vec![
        sweep_table(
            "E3a: attack probability vs. number of resolvers (p_attack = 0.2, x = 2/3)",
            &by_n,
        ),
        sweep_table(
            "E3b: attack probability vs. p_attack (N = 3, x = 2/3; paper: p^2)",
            &by_p,
        ),
        gain,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_tables_with_expected_shapes() {
        let tables = run(2_000, 3);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 7);
        assert_eq!(tables[1].len(), 8);
        assert_eq!(tables[2].len(), 5);
    }
}
