//! E11 — serving at scale: the pool-serving subsystem (sharded TTL cache,
//! singleflight, stale-while-revalidate) against the uncached baseline
//! under a client-population load.
//!
//! The uncached [`SecurePoolResolver`] performs one full distributed
//! generation per client query, so its serving cost grows linearly with
//! traffic; the [`CachingPoolResolver`] performs at most one generation per
//! `(domain, TTL window)` regardless of the client count. The table makes
//! both visible: queries-per-generation stays ~1 for the baseline and grows
//! with the population for the cached subsystem, while the mean client
//! latency drops from a full fan-out to a single front-end round trip.
//!
//! [`SecurePoolResolver`]: sdoh_core::SecurePoolResolver
//! [`CachingPoolResolver`]: sdoh_core::CachingPoolResolver

use std::time::Duration;

use sdoh_analysis::Table;
use sdoh_core::{CacheConfig, PoolConfig};
use sdoh_netsim::{ChannelKind, ClientPopulation, ConcurrentRequest, LoadDriver, LoadStats};
use secure_doh::scenario::{Scenario, ScenarioConfig, FRONTEND_ADDR};
use secure_doh::wire::{Message, RrType};

/// Pool domains the load is spread over.
const DOMAINS: usize = 4;
/// Virtual pause between load rounds.
const THINK_TIME: Duration = Duration::from_secs(2);
/// Per-query client timeout.
const QUERY_TIMEOUT: Duration = Duration::from_secs(5);

fn build_scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 8,
        pool_domains: DOMAINS,
        ..ScenarioConfig::default()
    })
}

/// Drives `clients` concurrent clients for `rounds` rounds against the
/// front end installed at [`FRONTEND_ADDR`], client `i` querying pool
/// domain `i % DOMAINS`.
fn drive_load(scenario: &Scenario, clients: usize, rounds: usize) -> LoadStats {
    let domains = scenario.pool_domains.clone();
    let mut next_id: u16 = 1;
    LoadDriver::new(&scenario.net, ClientPopulation::spread(clients))
        .think_time(THINK_TIME)
        .run(
            rounds,
            |_round, client, _addr| {
                let id = next_id;
                next_id = next_id.wrapping_add(1);
                let query = Message::query(id, domains[client % DOMAINS].clone(), RrType::A);
                Some(ConcurrentRequest::new(
                    FRONTEND_ADDR,
                    ChannelKind::Plain,
                    query.encode().expect("encodable query"),
                    QUERY_TIMEOUT,
                ))
            },
            |_round, _client, _result| {},
        )
}

/// Runs the cached and uncached workload per client count and tabulates
/// the serving economics.
pub fn run(client_counts: &[usize], rounds: usize, seed: u64) -> Table {
    let mut table = Table::new(
        "E11: cached vs uncached pool serving under client-population load",
        &[
            "configuration",
            "clients",
            "queries",
            "generations",
            "DoH requests",
            "queries/generation",
            "mean latency (ms)",
            "throughput (q/s)",
        ],
    );

    for &clients in client_counts {
        // Baseline: every query runs its own generation.
        let scenario = build_scenario(seed);
        let resolver = scenario
            .install_uncached_frontend(PoolConfig::algorithm1())
            .expect("valid config");
        scenario.net.reset_metrics();
        let stats = drive_load(&scenario, clients, rounds);
        let metrics = resolver.lock().metrics();
        let generations = metrics.served + metrics.failures;
        push_row(
            &mut table,
            &RunRow {
                configuration: "uncached baseline",
                clients,
                stats: &stats,
                queries: metrics.queries,
                generations,
                doh_requests: scenario.net.metrics().secure_requests,
            },
        );

        // The serving subsystem: one generation per (domain, TTL window).
        let scenario = build_scenario(seed);
        let resolver = scenario
            .install_caching_frontend(PoolConfig::algorithm1(), CacheConfig::default())
            .expect("valid config");
        scenario.net.reset_metrics();
        let stats = drive_load(&scenario, clients, rounds);
        let metrics = resolver.lock().metrics();
        push_row(
            &mut table,
            &RunRow {
                configuration: "caching subsystem",
                clients,
                stats: &stats,
                queries: metrics.queries,
                generations: metrics.generations,
                doh_requests: scenario.net.metrics().secure_requests,
            },
        );
    }
    table
}

/// One measured configuration of the experiment, ready for tabulation.
struct RunRow<'a> {
    configuration: &'a str,
    clients: usize,
    stats: &'a LoadStats,
    queries: u64,
    generations: u64,
    doh_requests: u64,
}

fn push_row(table: &mut Table, row: &RunRow<'_>) {
    let per_generation = if row.generations == 0 {
        f64::INFINITY
    } else {
        row.queries as f64 / row.generations as f64
    };
    table.push_row([
        row.configuration.to_string(),
        row.clients.to_string(),
        row.queries.to_string(),
        row.generations.to_string(),
        row.doh_requests.to_string(),
        format!("{per_generation:.1}"),
        format!("{:.2}", row.stats.mean_latency().as_secs_f64() * 1000.0),
        format!("{:.0}", row.stats.throughput()),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_amortises_while_the_baseline_scales_linearly() {
        let table = run(&[40], 3, 7);
        let rows = table.rows();
        assert_eq!(rows.len(), 2);
        let queries: Vec<u64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let generations: Vec<u64> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // Baseline: one generation per query.
        assert_eq!(generations[0], queries[0]);
        assert_eq!(queries[0], 40 * 3);
        // Cached: one generation per domain for the whole run (the rounds
        // fit inside one TTL window).
        assert_eq!(generations[1], DOMAINS as u64);
        // The economics gap the subsystem exists for.
        assert!(generations[0] >= generations[1] * 10);
    }

    #[test]
    fn cached_latency_beats_the_baseline() {
        // The mean includes the cold first round (which pays the fan-out on
        // both sides), so the gap here is smaller than the steady-state 2x+
        // asserted by the integration test — but it must exist.
        let table = run(&[40], 2, 9);
        let rows = table.rows();
        let latency: Vec<f64> = rows.iter().map(|r| r[6].parse().unwrap()).collect();
        assert!(
            latency[1] < latency[0],
            "cached {} ms vs uncached {} ms",
            latency[1],
            latency[0]
        );
    }
}
