//! E17 — the fleet observability plane, reconciled against ground truth.
//!
//! A loopback fleet of **N independent [`PoolRuntime`] instances**, each
//! with its own stats listener, is driven by client threads that keep an
//! exact record of what they sent and how long each query took. The
//! fleet aggregator then scrapes every instance's `/metrics` endpoint
//! (the same [`scrape_fleet`] path the `fleet-aggregator` binary uses)
//! and the experiment checks that the exported numbers *reconcile*:
//!
//! 1. **Counter exactness** — the fleet-aggregated `sdoh_udp_queries_total`
//!    and `sdoh_serve_queries_total` equal the number of queries the
//!    clients actually sent. Not approximately: exactly.
//! 2. **Histogram fidelity** — the merged `sdoh_serve_latency_seconds`
//!    histogram counts every query, and a histogram fed the clients'
//!    exact latencies extracts a p99 within one power-of-two bucket of
//!    the true (sorted) p99.
//! 3. **Health** — every instance reports `/healthz` 200 while alive.
//! 4. **Overhead** — the per-query cost of latency recording (the
//!    `Instant::now()` pair plus the histogram's two relaxed atomic
//!    adds) measured directly in a tight loop and expressed as a
//!    fraction of the observed per-query serving time. An A/B warm
//!    throughput comparison with [`RuntimeConfig::record_latency`] on
//!    vs off rides along as supplementary data — on a shared host its
//!    run-to-run noise (several percent either direction) dwarfs the
//!    sub-microsecond recording cost, which is why the direct
//!    measurement is the one the ≤3 % claim rests on.
//!
//! Counter reconciliation is host-independent and asserted; throughput
//! numbers are host wall-clock and recorded as-is.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use sdoh_analysis::Table;
use sdoh_core::{CacheConfig, PoolConfig};
use sdoh_metrics::{bucket_index, scrape_fleet, FleetRollup, Histogram};
use sdoh_runtime::{LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig};
use secure_doh::wire::{Message, RrType, Ttl};

/// Pool domains each instance publishes.
const DOMAINS: usize = 8;

/// Per-exchange upstream latency for the cold generations (kept small:
/// E17 is about accounting, not generation cost).
const UPSTREAM_LATENCY: Duration = Duration::from_millis(1);

/// Scrape timeout for `/metrics` and `/healthz`.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// Interleaved trials per arm of the supplementary A/B throughput
/// comparison; each arm keeps its best trial.
const OVERHEAD_TRIALS: usize = 3;

/// The A/B arms run this many times the reconciliation's warm load, so
/// each trial is long enough to mean something.
const OVERHEAD_LOAD_FACTOR: usize = 4;

/// Iterations of the tight loop that measures the recording cost
/// directly.
const RECORD_COST_ITERATIONS: u32 = 200_000;

/// One instance of the loopback fleet, alive for the measurement.
struct Instance {
    runtime: PoolRuntime,
    domains: Vec<secure_doh::wire::Name>,
    // Keeps the in-process DoH backends alive for the runtime's lifetime.
    _fleet: LoopbackFleet,
}

/// The measured fleet reconciliation.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Runtime instances in the fleet.
    pub instances: usize,
    /// Worker shards per instance.
    pub shards: usize,
    /// Queries the clients sent (cold sweeps + warm load), exactly.
    pub queries_sent: u64,
    /// Fleet-aggregated `sdoh_udp_queries_total`.
    pub fleet_udp_queries: u64,
    /// Fleet-aggregated `sdoh_serve_queries_total`.
    pub fleet_serve_queries: u64,
    /// Observation count of the merged serve-latency histogram.
    pub latency_observations: u64,
    /// True p99 of the client-side round-trip latencies (sorted exact
    /// values), in microseconds.
    pub exact_p99_us: f64,
    /// p99 extracted from a histogram fed those same exact latencies, in
    /// microseconds (the bucket upper bound).
    pub histogram_p99_us: f64,
    /// Bucket distance between the two p99s (0 = same bucket).
    pub p99_bucket_distance: usize,
    /// Instances whose `/healthz` returned 200 at scrape time.
    pub healthy_instances: usize,
    /// Directly measured cost of one latency recording (the
    /// `Instant::now()` pair plus `Histogram::record`), in nanoseconds.
    pub record_cost_ns: f64,
    /// The recording cost as a percent of the observed per-query serving
    /// time (`record_cost_ns * qps / 1e9`): the share of the serving
    /// path spent on metrics. This is the number behind the ≤3 % claim.
    pub overhead_percent: f64,
    /// Warm throughput with latency recording on (q/s, host wall-clock).
    pub qps_recording_on: f64,
    /// Warm throughput with latency recording off (q/s, host wall-clock).
    pub qps_recording_off: f64,
    /// Supplementary A/B delta `(off - on) / off` as a percent. On a
    /// shared host this is dominated by run-to-run noise in either
    /// direction; it is recorded, not asserted.
    pub ab_delta_percent: f64,
}

/// Starts one runtime instance with a stats listener on an ephemeral
/// loopback port.
fn start_instance(shards: usize, seed: u64, record_latency: bool) -> Instance {
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: DOMAINS,
        addresses_per_domain: 8,
        upstream_latency: UPSTREAM_LATENCY,
        seed,
        ..LoopbackConfig::default()
    });
    let shard_set = fleet
        .shards(
            shards,
            PoolConfig::algorithm1(),
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(3600))
                .with_stale_window(Duration::from_secs(3600)),
        )
        .expect("valid configuration");
    let config = RuntimeConfig::default()
        .with_stats_bind(Some("127.0.0.1:0".parse().expect("loopback addr")))
        .with_record_latency(record_latency);
    let runtime = PoolRuntime::start(config, shard_set).expect("bind loopback");
    let domains = fleet.domains.clone();
    Instance {
        runtime,
        domains,
        _fleet: fleet,
    }
}

/// Warms an instance (one query per domain) and then drives `clients`
/// threads of `queries_per_client` warm queries each, returning every
/// exact client-side round-trip latency. The returned count is the
/// ground truth: cold sweep + warm load.
fn drive_load(
    instance: &Instance,
    clients: usize,
    queries_per_client: usize,
) -> (u64, Vec<Duration>) {
    let udp = instance.runtime.udp_addr();
    let tcp = instance.runtime.tcp_addr();

    let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
    for (i, domain) in instance.domains.iter().enumerate() {
        stub.query(&Message::query(i as u16, domain.clone(), RrType::A))
            .expect("cold query answered");
    }

    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let domains = instance.domains.clone();
            std::thread::spawn(move || {
                let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
                let mut latencies = Vec::with_capacity(queries_per_client);
                for i in 0..queries_per_client {
                    let id = (client * queries_per_client + i) as u16;
                    let domain = domains[(client + i) % domains.len()].clone();
                    let sent = Instant::now();
                    stub.query(&Message::query(id, domain, RrType::A))
                        .expect("warm query answered");
                    latencies.push(sent.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(clients * queries_per_client);
    for worker in workers {
        latencies.extend(worker.join().expect("client thread"));
    }
    let sent = (instance.domains.len() + clients * queries_per_client) as u64;
    (sent, latencies)
}

/// Warm throughput of a single instance, used for the recording-overhead
/// comparison. Runs its own fleet so the measured runtime is untouched.
fn warm_qps(
    shards: usize,
    clients: usize,
    queries_per_client: usize,
    seed: u64,
    record_latency: bool,
) -> f64 {
    let instance = start_instance(shards, seed, record_latency);
    let udp = instance.runtime.udp_addr();
    let tcp = instance.runtime.tcp_addr();
    let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
    for (i, domain) in instance.domains.iter().enumerate() {
        stub.query(&Message::query(i as u16, domain.clone(), RrType::A))
            .expect("cold query answered");
    }
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let domains = instance.domains.clone();
            std::thread::spawn(move || {
                let stub = RuntimeClient::connect(udp, tcp).expect("client socket");
                for i in 0..queries_per_client {
                    let id = (client * queries_per_client + i) as u16;
                    let domain = domains[(client + i) % domains.len()].clone();
                    stub.query(&Message::query(id, domain, RrType::A))
                        .expect("warm query answered");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    let elapsed = started.elapsed();
    instance.runtime.shutdown();
    (clients * queries_per_client) as f64 / elapsed.as_secs_f64()
}

/// Runs the full reconciliation: `instances` runtimes under load, one
/// fleet scrape, exact accounting checks, and the recording-overhead
/// comparison. Panics if any exported number fails to reconcile — that
/// is the experiment's claim.
pub fn measure(
    instances: usize,
    shards: usize,
    clients: usize,
    queries_per_client: usize,
    seed: u64,
) -> FleetReport {
    assert!(
        instances >= 2,
        "E17 is a fleet experiment: need >= 2 instances"
    );
    let fleet: Vec<Instance> = (0..instances)
        .map(|i| start_instance(shards, seed + i as u64, true))
        .collect();
    let stats_addrs: Vec<SocketAddr> = fleet
        .iter()
        .map(|inst| inst.runtime.stats_addr().expect("stats listener bound"))
        .collect();

    let mut queries_sent = 0u64;
    let mut exact_latencies: Vec<Duration> = Vec::new();
    for instance in &fleet {
        let (sent, latencies) = drive_load(instance, clients, queries_per_client);
        queries_sent += sent;
        exact_latencies.extend(latencies);
    }

    // One aggregator pass over every instance — the same code path the
    // fleet-aggregator binary runs.
    let rollup = scrape_fleet(&stats_addrs, SCRAPE_TIMEOUT);
    let report = reconcile(&rollup, instances, shards, queries_sent, &exact_latencies);
    for instance in fleet {
        instance.runtime.shutdown();
    }

    // Recording overhead, measured directly: the exact hot-path addition
    // (an `Instant::now()` pair plus `Histogram::record`) in a tight
    // loop, then expressed as a share of the observed per-query time.
    let probe = Histogram::new();
    let cost_started = Instant::now();
    for _ in 0..RECORD_COST_ITERATIONS {
        let started = Instant::now();
        probe.record(started.elapsed());
    }
    let record_cost_ns =
        cost_started.elapsed().as_nanos() as f64 / f64::from(RECORD_COST_ITERATIONS);
    assert_eq!(probe.count(), u64::from(RECORD_COST_ITERATIONS));

    // Supplementary A/B: warm throughput with recording on vs off,
    // interleaved best-of-N so one noisy trial cannot decide either arm.
    let mut qps_recording_on = 0.0f64;
    let mut qps_recording_off = 0.0f64;
    for trial in 0..OVERHEAD_TRIALS {
        let seed = seed + 1000 + trial as u64;
        // Alternate which arm goes first: on a loaded host the first run
        // of a pair can be systematically favoured or penalised.
        for &recording in if trial % 2 == 0 {
            &[true, false]
        } else {
            &[false, true]
        } {
            let qps = warm_qps(
                shards,
                clients,
                queries_per_client * OVERHEAD_LOAD_FACTOR,
                seed,
                recording,
            );
            if recording {
                qps_recording_on = qps_recording_on.max(qps);
            } else {
                qps_recording_off = qps_recording_off.max(qps);
            }
        }
    }
    // Share of the serving path spent recording, at the observed
    // per-query rate (exact on a saturated single core; an upper-bound
    // style estimate elsewhere).
    let overhead_percent = record_cost_ns * qps_recording_on / 1e9 * 100.0;
    let ab_delta_percent = (qps_recording_off - qps_recording_on) / qps_recording_off * 100.0;
    FleetReport {
        record_cost_ns,
        overhead_percent,
        qps_recording_on,
        qps_recording_off,
        ab_delta_percent,
        ..report
    }
}

/// Checks the rollup against the clients' ground truth.
fn reconcile(
    rollup: &FleetRollup,
    instances: usize,
    shards: usize,
    queries_sent: u64,
    exact_latencies: &[Duration],
) -> FleetReport {
    assert_eq!(
        rollup.instances_scraped(),
        instances,
        "every instance scraped"
    );
    let healthy_instances = rollup
        .health
        .iter()
        .filter(|h| h.healthy == Some(true))
        .count();
    assert_eq!(healthy_instances, instances, "every instance healthy");

    let fleet_udp_queries = rollup
        .counter_total("sdoh_udp_queries_total")
        .expect("fleet exports sdoh_udp_queries_total");
    let fleet_serve_queries = rollup
        .counter_total("sdoh_serve_queries_total")
        .expect("fleet exports sdoh_serve_queries_total");
    assert_eq!(
        fleet_udp_queries, queries_sent,
        "exported UDP query count equals client sends exactly"
    );
    assert_eq!(
        fleet_serve_queries, queries_sent,
        "exported serve count equals client sends exactly"
    );

    let merged = rollup
        .histogram_merged("sdoh_serve_latency_seconds")
        .expect("fleet exports per-shard latency histograms");
    let latency_observations = merged.count();
    assert_eq!(
        latency_observations, queries_sent,
        "every served query was observed by a latency histogram"
    );

    // Histogram p99 fidelity on ground-truth data: feed the exact
    // client-side latencies into a histogram and compare its p99 with the
    // true sorted p99. The extraction reports a bucket upper bound, so
    // the two must land in the same power-of-two bucket (distance 0; we
    // allow 1 for an exact-boundary value).
    let mut sorted = exact_latencies.to_vec();
    sorted.sort();
    let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len());
    let exact_p99 = sorted[rank - 1];
    let client_histogram = Histogram::new();
    for &latency in exact_latencies {
        client_histogram.record(latency);
    }
    let histogram_p99 = client_histogram
        .snapshot()
        .quantile(0.99)
        .expect("non-empty histogram");
    let p99_bucket_distance = bucket_index(histogram_p99).abs_diff(bucket_index(exact_p99));
    assert!(
        p99_bucket_distance <= 1,
        "histogram p99 ({histogram_p99:?}) within one bucket of exact p99 ({exact_p99:?})"
    );

    FleetReport {
        instances,
        shards,
        queries_sent,
        fleet_udp_queries,
        fleet_serve_queries,
        latency_observations,
        exact_p99_us: exact_p99.as_secs_f64() * 1e6,
        histogram_p99_us: histogram_p99.as_secs_f64() * 1e6,
        p99_bucket_distance,
        healthy_instances,
        record_cost_ns: 0.0,
        overhead_percent: 0.0,
        qps_recording_on: 0.0,
        qps_recording_off: 0.0,
        ab_delta_percent: 0.0,
    }
}

/// Runs the experiment and tabulates the reconciliation.
pub fn run(
    instances: usize,
    shards: usize,
    clients: usize,
    queries_per_client: usize,
    seed: u64,
) -> (Table, FleetReport) {
    let report = measure(instances, shards, clients, queries_per_client, seed);
    let mut table = Table::new(
        "E17: fleet observability — exported metrics vs client ground truth",
        &["check", "ground truth", "exported", "verdict"],
    );
    table.push_row([
        "udp queries (fleet sum)".to_string(),
        report.queries_sent.to_string(),
        report.fleet_udp_queries.to_string(),
        verdict(report.fleet_udp_queries == report.queries_sent),
    ]);
    table.push_row([
        "serve queries (fleet sum)".to_string(),
        report.queries_sent.to_string(),
        report.fleet_serve_queries.to_string(),
        verdict(report.fleet_serve_queries == report.queries_sent),
    ]);
    table.push_row([
        "latency observations".to_string(),
        report.queries_sent.to_string(),
        report.latency_observations.to_string(),
        verdict(report.latency_observations == report.queries_sent),
    ]);
    table.push_row([
        "p99 (us)".to_string(),
        format!("{:.1}", report.exact_p99_us),
        format!("{:.1}", report.histogram_p99_us),
        format!("bucket distance {}", report.p99_bucket_distance),
    ]);
    table.push_row([
        "healthy instances".to_string(),
        report.instances.to_string(),
        report.healthy_instances.to_string(),
        verdict(report.healthy_instances == report.instances),
    ]);
    table.push_row([
        "recording cost".to_string(),
        format!("{:.0} ns/query", report.record_cost_ns),
        format!("{:.2}% of serving path", report.overhead_percent),
        if report.overhead_percent <= 3.0 {
            "within 3% budget".to_string()
        } else {
            "OVER BUDGET".to_string()
        },
    ]);
    table.push_row([
        "A/B warm q/s (noisy)".to_string(),
        format!("{:.0} q/s off", report.qps_recording_off),
        format!("{:.0} q/s on", report.qps_recording_on),
        format!("{:+.1}%", report.ab_delta_percent),
    ]);
    (table, report)
}

fn verdict(ok: bool) -> String {
    if ok { "exact" } else { "MISMATCH" }.to_string()
}

/// Serializes the report as the repo's `BENCH_*.json` shape.
pub fn to_json(report: &FleetReport, recorded: &str, notes: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"observability\",\n");
    out.push_str(&format!("  \"recorded\": \"{recorded}\",\n"));
    out.push_str(&format!("  \"notes\": \"{notes}\",\n"));
    out.push_str("  \"fleet\": {\n");
    out.push_str(&format!("    \"instances\": {},\n", report.instances));
    out.push_str(&format!(
        "    \"shards_per_instance\": {},\n",
        report.shards
    ));
    out.push_str(&format!("    \"queries_sent\": {},\n", report.queries_sent));
    out.push_str(&format!(
        "    \"fleet_udp_queries\": {},\n",
        report.fleet_udp_queries
    ));
    out.push_str(&format!(
        "    \"fleet_serve_queries\": {},\n",
        report.fleet_serve_queries
    ));
    out.push_str(&format!(
        "    \"latency_observations\": {},\n",
        report.latency_observations
    ));
    out.push_str(&format!(
        "    \"healthy_instances\": {}\n",
        report.healthy_instances
    ));
    out.push_str("  },\n");
    out.push_str("  \"p99\": {\n");
    out.push_str(&format!("    \"exact_us\": {:.1},\n", report.exact_p99_us));
    out.push_str(&format!(
        "    \"histogram_us\": {:.1},\n",
        report.histogram_p99_us
    ));
    out.push_str(&format!(
        "    \"bucket_distance\": {}\n",
        report.p99_bucket_distance
    ));
    out.push_str("  },\n");
    out.push_str("  \"recording_overhead\": {\n");
    out.push_str(&format!(
        "    \"record_cost_ns\": {:.0},\n",
        report.record_cost_ns
    ));
    out.push_str(&format!(
        "    \"overhead_percent\": {:.2},\n",
        report.overhead_percent
    ));
    out.push_str(&format!(
        "    \"qps_recording_on\": {:.0},\n",
        report.qps_recording_on
    ));
    out.push_str(&format!(
        "    \"qps_recording_off\": {:.0},\n",
        report.qps_recording_off
    ));
    out.push_str(&format!(
        "    \"ab_delta_percent\": {:.2}\n",
        report.ab_delta_percent
    ));
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_counters_reconcile_exactly() {
        // Smoke scale: 2 instances x 2 shards, 3 clients x 15 queries
        // each. measure() itself asserts the reconciliation; the test
        // checks the report and JSON plumbing on top.
        let (table, report) = run(2, 2, 3, 15, 17);
        assert_eq!(table.rows().len(), 7);
        assert_eq!(report.queries_sent, 2 * (DOMAINS + 3 * 15) as u64);
        assert_eq!(report.fleet_udp_queries, report.queries_sent);
        assert_eq!(report.latency_observations, report.queries_sent);
        assert!(report.p99_bucket_distance <= 1);
        assert_eq!(report.healthy_instances, 2);
        assert!(report.qps_recording_on > 0.0 && report.qps_recording_off > 0.0);
        assert!(report.record_cost_ns > 0.0);
        assert!(
            report.overhead_percent <= 3.0,
            "recording is a sub-percent share of the serving path, \
             got {:.2}% ({:.0} ns/query at {:.0} q/s)",
            report.overhead_percent,
            report.record_cost_ns,
            report.qps_recording_on
        );

        let json = to_json(&report, "test", "smoke");
        assert!(json.contains("\"benchmark\": \"observability\""));
        assert!(json.contains("\"bucket_distance\""));
        assert!(json.contains("\"record_cost_ns\""));
        assert!(json.contains("\"overhead_percent\""));
    }
}
