//! E15: deterministic chaos campaigns over the serve + timesync stack.
//!
//! Two campaigns run over the *same* seeded fault schedule — every
//! category of the mixed-adversary fault vocabulary (loss, duplication,
//! reordering, latency spikes, partitions, resolver churn and
//! compromise, clock steps, time jumps, drift) plus a persistent
//! off-path birthday spoofer from step 0:
//!
//! * the **hardened** stack (full off-path defenses, caching consensus
//!   front end, `SecureTimeClient` + Chronos) must finish with **zero**
//!   invariant violations;
//! * the **weak baseline** (predictable-id ISP resolver, single-resolver
//!   pool) must get poisoned, and the invariant monitor must record the
//!   guarantee and clock-offset breaches — proving the monitor detects
//!   real failures rather than vacuously passing.
//!
//! The hardened campaign also re-runs under the same seed as a
//! determinism self-check: both runs must render byte-identical reports.

use sdoh_analysis::Table;
use sdoh_chaos::{run_campaign, CampaignConfig, ChaosReport, StackKind};

/// Steps of the full campaign.
pub const FULL_STEPS: u64 = 1500;
/// Steps of the CI smoke campaign.
pub const SMOKE_STEPS: u64 = 120;
/// Forged responses the persistent spoofer races per plain query.
pub const SPOOFER_ATTEMPTS: u32 = 64;

/// The campaign configuration E15 runs for a stack.
pub fn campaign_config(stack: StackKind, seed: u64, steps: u64) -> CampaignConfig {
    let mut config =
        CampaignConfig::hardened(seed, steps).with_persistent_spoofer(SPOOFER_ATTEMPTS);
    config.stack = stack;
    config
}

/// Outcome of one E15 run: the two campaign reports plus whether the
/// hardened re-run reproduced its report byte-for-byte.
pub struct ChaosOutcome {
    /// Hardened-stack report.
    pub hardened: ChaosReport,
    /// Weak-baseline report over the same schedule.
    pub weak: ChaosReport,
    /// Whether two hardened runs of the same seed rendered identical
    /// reports and traces.
    pub deterministic: bool,
}

/// Runs both campaigns plus the determinism self-check and tabulates.
pub fn run(seed: u64, steps: u64) -> (Table, ChaosOutcome) {
    let hardened_config = campaign_config(StackKind::Hardened, seed, steps);
    let hardened = run_campaign(&hardened_config);
    let replay = run_campaign(&hardened_config);
    let deterministic = hardened.to_json("determinism-check")
        == replay.to_json("determinism-check")
        && hardened.trace_text() == replay.trace_text();
    let weak = run_campaign(&campaign_config(StackKind::WeakBaseline, seed, steps));

    let mut table = Table::new(
        format!("E15: chaos campaigns, seed {seed}, {steps} steps"),
        &[
            "stack",
            "answered/issued",
            "denied",
            "lost",
            "syncs (failed)",
            "pool refreshes",
            "max |offset| (s)",
            "faults",
            "violations",
            "ready",
        ],
    );
    for report in [&hardened, &weak] {
        table.push_row([
            report.stack.clone(),
            format!("{}/{}", report.queries_answered, report.queries_issued),
            report.queries_denied.to_string(),
            report.queries_lost.to_string(),
            format!("{} ({})", report.syncs, report.sync_failures),
            report.pool_refreshes.to_string(),
            format!("{:.4}", report.max_abs_offset_after_sync),
            report.faults_applied.values().sum::<u64>().to_string(),
            report.total_violations.to_string(),
            report.ready.to_string(),
        ]);
    }
    (
        table,
        ChaosOutcome {
            hardened,
            weak,
            deterministic,
        },
    )
}

/// Renders the outcome as a `BENCH_chaos.json` document.
pub fn to_json(outcome: &ChaosOutcome, recorded: &str, notes: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"chaos\",\n");
    out.push_str(&format!("  \"recorded\": \"{recorded}\",\n"));
    out.push_str(&format!("  \"notes\": \"{notes}\",\n"));
    out.push_str(&format!(
        "  \"deterministic\": {},\n",
        outcome.deterministic
    ));
    out.push_str("  \"campaigns\": [\n");
    for (i, report) in [&outcome.hardened, &outcome.weak].into_iter().enumerate() {
        let body = report.to_json(recorded);
        for (j, line) in body.lines().enumerate() {
            if j == 0 {
                out.push_str("    {\n");
            } else if line == "}" {
                out.push_str(&format!("    }}{}\n", if i == 0 { "," } else { "" }));
            } else {
                out.push_str(&format!("    {line}\n"));
            }
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaigns_meet_the_acceptance_criteria() {
        let (_, outcome) = run(42, SMOKE_STEPS);
        assert!(outcome.deterministic);
        assert!(
            outcome.hardened.ready,
            "hardened violations: {:?}",
            outcome.hardened.violations
        );
        assert!(
            !outcome.weak.ready,
            "weak baseline should be poisoned by the persistent spoofer"
        );
        assert!(outcome.weak.violations.iter().any(|violation| {
            violation.invariant == "pool_guarantee" || violation.invariant == "clock_offset"
        }));
    }

    #[test]
    fn json_document_is_balanced_and_labelled() {
        let (_, outcome) = run(5, 40);
        let json = to_json(&outcome, "test", "notes");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"benchmark\": \"chaos\""));
        assert!(json.contains("\"stack\": \"hardened\""));
        assert!(json.contains("\"stack\": \"weak-baseline\""));
    }
}
