//! E18 — the reconfiguration blackout window, measured from the client.
//!
//! A loopback [`PoolRuntime`] serves real UDP clients that timestamp
//! every round trip against a shared origin. Mid-load the control plane
//! runs the full PR-8 sequence — a [`ConfigDelta`] (new TTL/stale
//! window plus a hardened pool config), a 4 → 8 shard grow, an 8 → 4
//! shrink — and the experiment reconstructs, for each transition, the
//! **blackout window**: the worst client-observed latency of any query
//! in flight while the transition propagated (from the control call
//! until every shard acked the new epoch).
//!
//! The claim under test is the control plane's design premise: epochs
//! fan out through the workers' existing queues and rescales re-route
//! the hash ring without ever stopping the dispatcher, so there is no
//! stop-the-world moment. Concretely:
//!
//! 1. **Zero drops** — every query sent during every transition is
//!    answered (a drop would surface as a client timeout), and the
//!    runtime's `sdoh_dropped_queries_total` stays 0.
//! 2. **Bounded blackout** — the widest blackout window across the
//!    three transitions stays within one stats interval (500 ms by
//!    default): reconfiguration never outlasts the runtime's own
//!    observability cadence.
//! 3. **Observable epochs** — the final `/metrics` scrape reports
//!    `sdoh_config_epoch` 3 (apply, grow, shrink) with every live
//!    shard's acked gauge converged.
//!
//! Latencies are host wall-clock and recorded as-is; the assertions are
//! the drop count, the epoch accounting and the blackout budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdoh_analysis::Table;
use sdoh_core::{CacheConfig, PoolConfig};
use sdoh_metrics::{http_get, parse_prometheus, SampleValue};
use sdoh_runtime::{
    ConfigDelta, LoopbackConfig, LoopbackFleet, PoolRuntime, RuntimeClient, RuntimeConfig, Shard,
};
use secure_doh::wire::{Message, RrType, Ttl};

/// Pool domains the runtime publishes.
const DOMAINS: usize = 8;

/// Serving shards before the grow and after the shrink.
const SHARDS: usize = 4;

/// Serving shards between the grow and the shrink.
const SHARDS_PEAK: usize = 8;

/// Per-exchange upstream latency for cold generations (small: E18 is
/// about the serving path, not generation cost).
const UPSTREAM_LATENCY: Duration = Duration::from_millis(1);

/// Scrape timeout for `/metrics`.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

/// How long each transition waits for every shard to ack its epoch.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);

/// One timestamped client round trip: start offset from the measurement
/// origin, and the observed latency.
#[derive(Debug, Clone, Copy)]
struct Rtt {
    start: Duration,
    latency: Duration,
}

/// One control-plane transition, reconstructed from the client record.
#[derive(Debug, Clone, Copy)]
pub struct TransitionWindow {
    /// Control call start until every shard acked the epoch, in
    /// microseconds — the propagation window.
    pub ack_us: f64,
    /// Worst client-observed latency of any query in flight during the
    /// propagation window, in microseconds. 0 if no query overlapped.
    pub blackout_us: f64,
    /// Queries in flight at any point of the propagation window.
    pub queries_in_window: u64,
}

/// The measured blackout report.
#[derive(Debug, Clone)]
pub struct ReconfigReport {
    /// Serving shards before the grow / after the shrink.
    pub shards_initial: usize,
    /// Serving shards between the grow and the shrink.
    pub shards_peak: usize,
    /// Loader threads.
    pub clients: usize,
    /// Queries the clients sent and had answered, exactly.
    pub queries_sent: u64,
    /// `sdoh_dropped_queries_total` at shutdown (asserted 0).
    pub dropped_queries: u64,
    /// Config epoch at shutdown (asserted 3: apply, grow, shrink).
    pub final_epoch: u64,
    /// The runtime's stats interval — the blackout budget — in ms.
    pub stats_interval_ms: f64,
    /// p99 client latency of the steady state before any transition, in
    /// microseconds.
    pub baseline_p99_us: f64,
    /// The [`ConfigDelta`] transition (TTL, stale window, pool).
    pub apply: TransitionWindow,
    /// The 4 → 8 shard grow.
    pub grow: TransitionWindow,
    /// The 8 → 4 shard shrink.
    pub shrink: TransitionWindow,
    /// Widest blackout across the three transitions, in microseconds.
    pub widest_blackout_us: f64,
    /// `widest_blackout_us` within one stats interval.
    pub within_budget: bool,
}

/// Runs the full measurement: a loopback runtime under `clients` loader
/// threads, the apply → grow → shrink sequence with `settle` of steady
/// load around each transition, and the blackout reconstruction.
/// Panics if a query is dropped, the epoch accounting is off, or the
/// widest blackout exceeds one stats interval — those are the
/// experiment's claims.
pub fn measure(clients: usize, settle: Duration, seed: u64) -> ReconfigReport {
    let fleet = LoopbackFleet::build(LoopbackConfig {
        resolvers: 3,
        pool_domains: DOMAINS,
        addresses_per_domain: 8,
        compromised: vec![0],
        upstream_latency: UPSTREAM_LATENCY,
        seed,
    });
    let shards = fleet
        .shards(
            SHARDS,
            PoolConfig::algorithm1(),
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(60))
                .with_stale_window(Duration::from_secs(60)),
        )
        .expect("valid configuration");
    let config = RuntimeConfig::default()
        .with_stats_bind(Some("127.0.0.1:0".parse().expect("loopback addr")));
    let stats_interval = config.stats_interval;
    let runtime = PoolRuntime::start(config, shards).expect("bind loopback");
    let control = runtime.control();
    let stats_addr = runtime.stats_addr().expect("stats listener bound");
    let udp = runtime.udp_addr();
    let tcp = runtime.tcp_addr();

    // Loader threads: every round trip timestamped against the shared
    // origin; a dropped query surfaces as a client timeout and fails the
    // run.
    let origin = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<std::thread::JoinHandle<Vec<Rtt>>> = (0..clients)
        .map(|thread| {
            let stop = stop.clone();
            let domains = fleet.domains.clone();
            std::thread::spawn(move || {
                let client = RuntimeClient::connect(udp, tcp).expect("client socket");
                let mut id: u16 = (thread as u16).wrapping_mul(8192);
                let mut record = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    for domain in &domains {
                        id = id.wrapping_add(1);
                        let start = origin.elapsed();
                        let sent = Instant::now();
                        let response = client
                            .query(&Message::query(id, domain.clone(), RrType::A))
                            .expect("no query may be dropped during reconfiguration");
                        assert!(
                            !response.answer_addresses().is_empty(),
                            "served answers stay non-empty through every transition"
                        );
                        record.push(Rtt {
                            start,
                            latency: sent.elapsed(),
                        });
                    }
                }
                record
            })
        })
        .collect();
    std::thread::sleep(settle);

    // Transition 1: the full config delta — fresh TTL/stale window and a
    // hardened pool config — fanned out mid-load.
    let delta = ConfigDelta::new()
        .with_cache(
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(2))
                .with_stale_window(Duration::from_secs(10)),
        )
        .with_pool(PoolConfig::algorithm1().with_min_responses(2));
    let (apply_span, apply_epoch) = transition(origin, || {
        let receipt = control.apply(delta).expect("valid delta");
        assert!(
            control.wait_for_epoch(receipt.epoch, ACK_TIMEOUT),
            "every shard acked epoch {} while serving",
            receipt.epoch
        );
        receipt.epoch
    });
    assert_eq!(apply_epoch, 1, "the delta published epoch 1");
    std::thread::sleep(settle);

    // Transition 2: grow 4 -> 8 shards mid-load.
    let mut spare: Vec<Option<Shard>> = fleet
        .shards(
            SHARDS_PEAK,
            PoolConfig::algorithm1().with_min_responses(2),
            *control.current_config().cache(),
        )
        .expect("valid configuration")
        .into_iter()
        .map(Some)
        .collect();
    let (grow_span, grow_epoch) = transition(origin, || {
        let receipt = control
            .rescale(SHARDS_PEAK, |index| {
                spare[index].take().expect("fresh shard")
            })
            .expect("grow rescale");
        assert!(control.wait_for_epoch(receipt.epoch, ACK_TIMEOUT));
        receipt.epoch
    });
    assert_eq!(grow_epoch, 2, "the grow published epoch 2");
    std::thread::sleep(settle);

    // Transition 3: shrink 8 -> 4 mid-load; retirees hand their entries
    // to the survivors and linger for stray in-flight queries.
    let (shrink_span, shrink_epoch) = transition(origin, || {
        let receipt = control
            .rescale(SHARDS, |_| unreachable!("shrinking builds no shards"))
            .expect("shrink rescale");
        assert!(control.wait_for_epoch(receipt.epoch, ACK_TIMEOUT));
        receipt.epoch
    });
    assert_eq!(shrink_epoch, 3, "the shrink published epoch 3");
    std::thread::sleep(settle);

    // The epoch gauges converged before shutdown.
    let scrape = http_get(stats_addr, "/metrics", SCRAPE_TIMEOUT).expect("scrape /metrics");
    let samples = parse_prometheus(&scrape.body).expect("parseable exposition");
    let epoch_gauge: Vec<f64> = samples
        .iter()
        .filter(|s| s.name == "sdoh_config_epoch")
        .map(|s| match s.value {
            SampleValue::Gauge(v) => v,
            ref other => panic!("sdoh_config_epoch is not a gauge: {other:?}"),
        })
        .collect();
    assert_eq!(epoch_gauge, vec![3.0], "/metrics exports the final epoch");

    stop.store(true, Ordering::Relaxed);
    let mut rtts: Vec<Rtt> = Vec::new();
    for loader in loaders {
        rtts.extend(loader.join().expect("loader thread"));
    }
    let stats = runtime.shutdown();
    assert_eq!(
        stats.dropped_queries, 0,
        "zero dropped queries across apply + grow + shrink"
    );
    assert_eq!(stats.config_epoch, 3, "apply, grow, shrink: three epochs");
    assert_eq!(
        stats.udp_queries,
        rtts.len() as u64,
        "the front door counted every client send"
    );

    // Steady-state baseline: queries that completed before the first
    // transition began.
    let baseline: Vec<Duration> = rtts
        .iter()
        .filter(|rtt| rtt.start + rtt.latency < apply_span.0)
        .map(|rtt| rtt.latency)
        .collect();
    let baseline_p99_us = p99_us(&baseline);

    let apply = window(&rtts, apply_span);
    let grow = window(&rtts, grow_span);
    let shrink = window(&rtts, shrink_span);
    let widest_blackout_us = apply
        .blackout_us
        .max(grow.blackout_us)
        .max(shrink.blackout_us);
    let budget_us = stats_interval.as_secs_f64() * 1e6;
    assert!(
        widest_blackout_us <= budget_us,
        "widest blackout {widest_blackout_us:.0} us exceeds one stats interval ({budget_us:.0} us)"
    );

    ReconfigReport {
        shards_initial: SHARDS,
        shards_peak: SHARDS_PEAK,
        clients,
        queries_sent: rtts.len() as u64,
        dropped_queries: stats.dropped_queries,
        final_epoch: stats.config_epoch,
        stats_interval_ms: stats_interval.as_secs_f64() * 1e3,
        baseline_p99_us,
        apply,
        grow,
        shrink,
        widest_blackout_us,
        within_budget: widest_blackout_us <= budget_us,
    }
}

/// Runs `op` and returns its propagation span (start offset, end offset
/// from the origin) alongside its result. The span covers the control
/// call *and* the wait until every shard acked — the whole period a
/// query could observe the transition.
fn transition<T>(origin: Instant, op: impl FnOnce() -> T) -> ((Duration, Duration), T) {
    let start = origin.elapsed();
    let result = op();
    let end = origin.elapsed();
    ((start, end), result)
}

/// Reconstructs a [`TransitionWindow`] from the client record: every
/// query whose in-flight interval overlapped the span.
fn window(rtts: &[Rtt], span: (Duration, Duration)) -> TransitionWindow {
    let (start, end) = span;
    let overlapping: Vec<Duration> = rtts
        .iter()
        .filter(|rtt| rtt.start < end && rtt.start + rtt.latency > start)
        .map(|rtt| rtt.latency)
        .collect();
    let blackout = overlapping.iter().copied().max().unwrap_or(Duration::ZERO);
    TransitionWindow {
        ack_us: (end - start).as_secs_f64() * 1e6,
        blackout_us: blackout.as_secs_f64() * 1e6,
        queries_in_window: overlapping.len() as u64,
    }
}

/// p99 of exact latencies, in microseconds (0 for an empty slice).
fn p99_us(latencies: &[Duration]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort();
    let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e6
}

/// Runs the experiment and tabulates the blackout reconstruction.
pub fn run(clients: usize, settle: Duration, seed: u64) -> (Table, ReconfigReport) {
    let report = measure(clients, settle, seed);
    let mut table = Table::new(
        "E18: hot reconfiguration — blackout window per transition",
        &[
            "transition",
            "propagation",
            "blackout",
            "in flight",
            "verdict",
        ],
    );
    let budget_us = report.stats_interval_ms * 1e3;
    for (label, t) in [
        ("apply delta (epoch 1)", &report.apply),
        ("grow 4 -> 8 (epoch 2)", &report.grow),
        ("shrink 8 -> 4 (epoch 3)", &report.shrink),
    ] {
        table.push_row([
            label.to_string(),
            format!("{:.0} us", t.ack_us),
            format!("{:.0} us", t.blackout_us),
            t.queries_in_window.to_string(),
            if t.blackout_us <= budget_us {
                "within budget".to_string()
            } else {
                "OVER BUDGET".to_string()
            },
        ]);
    }
    table.push_row([
        "baseline p99".to_string(),
        "-".to_string(),
        format!("{:.0} us", report.baseline_p99_us),
        report.queries_sent.to_string(),
        "steady state".to_string(),
    ]);
    table.push_row([
        "widest blackout".to_string(),
        format!("budget {:.0} ms", report.stats_interval_ms),
        format!("{:.0} us", report.widest_blackout_us),
        format!("dropped {}", report.dropped_queries),
        if report.within_budget {
            "within one stats interval".to_string()
        } else {
            "OVER BUDGET".to_string()
        },
    ]);
    (table, report)
}

/// Serializes the report as the repo's `BENCH_*.json` shape.
pub fn to_json(report: &ReconfigReport, recorded: &str, notes: &str) -> String {
    let transition = |t: &TransitionWindow| {
        format!(
            "{{\"propagation_us\": {:.0}, \"blackout_us\": {:.0}, \"queries_in_window\": {}}}",
            t.ack_us, t.blackout_us, t.queries_in_window
        )
    };
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"reconfig\",\n");
    out.push_str(&format!("  \"recorded\": \"{recorded}\",\n"));
    out.push_str(&format!("  \"notes\": \"{notes}\",\n"));
    out.push_str("  \"load\": {\n");
    out.push_str(&format!("    \"clients\": {},\n", report.clients));
    out.push_str(&format!(
        "    \"shards\": \"{} -> {} -> {}\",\n",
        report.shards_initial, report.shards_peak, report.shards_initial
    ));
    out.push_str(&format!("    \"queries_sent\": {},\n", report.queries_sent));
    out.push_str(&format!(
        "    \"dropped_queries\": {},\n",
        report.dropped_queries
    ));
    out.push_str(&format!("    \"final_epoch\": {},\n", report.final_epoch));
    out.push_str(&format!(
        "    \"baseline_p99_us\": {:.0}\n",
        report.baseline_p99_us
    ));
    out.push_str("  },\n");
    out.push_str("  \"transitions\": {\n");
    out.push_str(&format!("    \"apply\": {},\n", transition(&report.apply)));
    out.push_str(&format!("    \"grow\": {},\n", transition(&report.grow)));
    out.push_str(&format!("    \"shrink\": {}\n", transition(&report.shrink)));
    out.push_str("  },\n");
    out.push_str("  \"blackout\": {\n");
    out.push_str(&format!(
        "    \"widest_us\": {:.0},\n",
        report.widest_blackout_us
    ));
    out.push_str(&format!(
        "    \"budget_ms\": {:.0},\n",
        report.stats_interval_ms
    ));
    out.push_str(&format!(
        "    \"within_budget\": {}\n",
        report.within_budget
    ));
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_stays_within_one_stats_interval() {
        // Smoke scale: 2 clients, 150 ms of steady load around each
        // transition. measure() itself asserts the zero-drop, epoch and
        // budget claims; the test checks the report and JSON plumbing.
        let (table, report) = run(2, Duration::from_millis(150), 18);
        assert_eq!(table.rows().len(), 5);
        assert!(report.queries_sent > 0);
        assert_eq!(report.dropped_queries, 0);
        assert_eq!(report.final_epoch, 3);
        assert!(report.within_budget);
        assert!(report.widest_blackout_us <= report.stats_interval_ms * 1e3);
        assert!(
            report.apply.queries_in_window
                + report.grow.queries_in_window
                + report.shrink.queries_in_window
                > 0,
            "load overlapped at least one transition"
        );

        let json = to_json(&report, "test", "smoke");
        assert!(json.contains("\"benchmark\": \"reconfig\""));
        assert!(json.contains("\"widest_us\""));
        assert!(json.contains("\"within_budget\": true"));
        assert!(json.contains("\"final_epoch\": 3"));
    }
}
