//! E2 — Section III-a: the attacker must control a fraction `x >= y` of the
//! resolvers to control a fraction `y` of the pool.

use std::net::IpAddr;

use sdoh_analysis::{fmt_percent, Table};
use sdoh_core::{
    attacker_controls_fraction, AddressSource, GroundTruth, PoolConfig, SecurePoolGenerator,
    StaticSource,
};
use sdoh_dns_server::ClientExchanger;
use sdoh_netsim::{SimAddr, SimNet};

use super::attacker_addresses;

/// For each pool size `N` and number of compromised resolvers `c`, builds
/// the Algorithm 1 pool and reports the attacker's share; the crossover sits
/// exactly at `c/N >= y`.
pub fn run(resolver_counts: &[usize], addresses_per_resolver: usize, y: f64) -> Table {
    let mut table = Table::new(
        format!("E2: attacker pool share vs. compromised resolvers (y = {y})"),
        &[
            "N resolvers",
            "compromised",
            "x = c/N",
            "attacker pool share",
            "attack succeeds (>= y)",
            "paper predicts",
        ],
    );
    for &n in resolver_counts {
        for c in 0..=n {
            let (pool_share, succeeded) = simulate(n, c, addresses_per_resolver, y);
            let x = c as f64 / n as f64;
            table.push_row([
                n.to_string(),
                c.to_string(),
                format!("{x:.3}"),
                fmt_percent(pool_share),
                succeeded.to_string(),
                (x >= y).to_string(),
            ]);
        }
    }
    table
}

fn simulate(n: usize, compromised: usize, k: usize, y: f64) -> (f64, bool) {
    let benign: Vec<IpAddr> = (0..k)
        .map(|i| IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, i as u8 + 1)))
        .collect();
    let evil = attacker_addresses(k);
    let truth = GroundTruth::with_malicious(evil.iter().copied());

    let sources: Vec<Box<dyn AddressSource>> = (0..n)
        .map(|i| {
            let answer = if i < compromised {
                evil.clone()
            } else {
                benign.clone()
            };
            Box::new(StaticSource::answering(format!("resolver-{i}"), answer))
                as Box<dyn AddressSource>
        })
        .collect();
    let generator =
        SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).expect("valid generator");
    let net = SimNet::new(n as u64);
    let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
    let report = generator
        .generate(&mut exchanger, &"pool.ntpns.org".parse().expect("name"))
        .expect("generation");
    let share = 1.0 - report.pool.benign_fraction(|a| !truth.is_malicious(a));
    (share, attacker_controls_fraction(&report.pool, &truth, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_exactly_at_y() {
        let table = run(&[3, 4], 4, 0.5);
        for row in table.rows() {
            let succeeded: bool = row[4].parse().unwrap();
            let predicted: bool = row[5].parse().unwrap();
            assert_eq!(succeeded, predicted, "row {row:?}");
        }
    }

    #[test]
    fn attacker_share_equals_resolver_share() {
        let (share, _) = simulate(5, 2, 4, 0.5);
        assert!((share - 0.4).abs() < 1e-9);
        let (share, ok) = simulate(3, 3, 4, 0.5);
        assert!((share - 1.0).abs() < 1e-9);
        assert!(ok);
        let (share, ok) = simulate(3, 0, 4, 0.5);
        assert_eq!(share, 0.0);
        assert!(!ok);
    }
}
