//! E1 — Figure 1: the end-to-end system overview.

use sdoh_analysis::Table;
use sdoh_core::{check_guarantee, PoolConfig};
use sdoh_dns_server::ClientExchanger;
use sdoh_ntp::{ChronosClient, ChronosConfig, LocalClock, NtpClient};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR};

/// Runs the Figure 1 flow (3 DoH resolvers, 8 NTP servers, no attacker) and
/// reports each step.
pub fn run(seed: u64) -> Vec<Table> {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 8,
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let generator = scenario
        .pool_generator(PoolConfig::algorithm1())
        .expect("generator");
    let generation_started = scenario.net.now();
    let report = generator
        .generate(&mut exchanger, &scenario.pool_domain)
        .expect("pool generation succeeds");
    let generation_latency = scenario.net.clock().elapsed_since(generation_started);

    let mut per_resolver = Table::new(
        "E1: per-resolver answers for pool.ntpns.org (Fig. 1 step 2-4)",
        &["resolver", "outcome", "slots contributed"],
    );
    for (name, outcome) in &report.sources {
        per_resolver.push_row([
            name.clone(),
            format!("{outcome:?}"),
            report.pool.slots_from(name).to_string(),
        ]);
    }

    let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
    let pool = report.pool.addresses();
    let mut clock = LocalClock::new(scenario.net.clock(), -30.0);
    let mut chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(CLIENT_ADDR.with_port(123)),
        seed,
    )
    .expect("valid chronos config");
    let outcome = chronos.update(&scenario.net, &mut clock, &pool);

    let mut summary = Table::new(
        "E1: end-to-end summary (Fig. 1 step 5 + Chronos)",
        &["quantity", "value"],
    );
    summary.push_row(["combined pool slots", &report.pool.len().to_string()]);
    summary.push_row([
        "pool generation latency (concurrent fan-out)",
        &format!("{:.1} ms", generation_latency.as_secs_f64() * 1000.0),
    ]);
    summary.push_row([
        "truncation length",
        &format!("{:?}", report.truncate_lengths),
    ]);
    summary.push_row([
        "benign pool fraction",
        &format!("{:.3}", check.benign_fraction),
    ]);
    summary.push_row([
        "guarantee (x = 1/2)",
        if check.holds { "holds" } else { "violated" },
    ]);
    summary.push_row(["chronos outcome", &format!("{outcome:?}")]);
    summary.push_row([
        "residual clock offset (s)",
        &format!("{:+.6}", clock.offset_from_true()),
    ]);
    summary.push_row(["network metrics", &scenario.net.metrics().to_string()]);
    vec![per_resolver, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_flow_succeeds() {
        let tables = run(1);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3, "three resolvers");
        let summary = &tables[1];
        let rows = summary.rows();
        assert_eq!(rows[0][1], "24", "3 resolvers x 8 addresses");
        assert!(rows[1][1].ends_with("ms"), "latency row: {:?}", rows[1]);
        assert_eq!(rows[4][1], "holds");
    }
}
