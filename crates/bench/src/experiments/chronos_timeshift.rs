//! E5 — "in tandem with Chronos": the clock shift an attacker achieves with
//! and without secure pool generation.

use sdoh_analysis::Table;
use sdoh_core::PoolConfig;
use sdoh_dns_server::{ClientExchanger, StubResolver};
use sdoh_ntp::{ChronosClient, ChronosConfig, LocalClock, NtpClient};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER};

use super::pool_spoofer;

/// The three end-to-end configurations compared by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeSyncSetup {
    /// Plain DNS pool + plain SNTP client.
    PlainDnsPlainNtp,
    /// Plain DNS pool + Chronos.
    PlainDnsChronos,
    /// Distributed DoH pool (Algorithm 1) + Chronos — the proposal.
    DistributedDohChronos,
}

impl TimeSyncSetup {
    fn label(self) -> &'static str {
        match self {
            TimeSyncSetup::PlainDnsPlainNtp => "plain DNS + plain NTP",
            TimeSyncSetup::PlainDnsChronos => "plain DNS + Chronos",
            TimeSyncSetup::DistributedDohChronos => "distributed DoH + Chronos",
        }
    }
}

/// Measures the clock shift the attacker achieves in each configuration
/// when it fully controls the plain-DNS path and operates time servers
/// shifted by `attacker_shift` seconds.
pub fn run(attacker_shift: f64, seed: u64) -> Table {
    let mut table = Table::new(
        format!("E5: achieved clock shift with {attacker_shift} s attacker time servers"),
        &[
            "configuration",
            "clock shift after one sync (s)",
            "pool captured",
        ],
    );
    for setup in [
        TimeSyncSetup::PlainDnsPlainNtp,
        TimeSyncSetup::PlainDnsChronos,
        TimeSyncSetup::DistributedDohChronos,
    ] {
        let (shift, captured) = run_setup(setup, attacker_shift, seed);
        table.push_row([
            setup.label().to_string(),
            format!("{shift:+.3}"),
            captured.to_string(),
        ]);
    }
    table
}

/// Runs one configuration and returns (clock shift, pool captured?).
pub fn run_setup(setup: TimeSyncSetup, attacker_shift: f64, seed: u64) -> (f64, bool) {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 16,
        attacker_time_shift: attacker_shift,
        ..ScenarioConfig::default()
    });
    let attacker_pool: Vec<std::net::IpAddr> =
        scenario.attacker_ntp.iter().take(16).copied().collect();
    scenario.net.set_adversary(pool_spoofer(
        1.0,
        vec![ISP_RESOLVER],
        scenario.pool_domain.clone(),
        attacker_pool,
    ));
    let truth = scenario.ground_truth();

    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let pool = match setup {
        TimeSyncSetup::PlainDnsPlainNtp | TimeSyncSetup::PlainDnsChronos => {
            StubResolver::new(ISP_RESOLVER)
                .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
                .unwrap_or_default()
        }
        TimeSyncSetup::DistributedDohChronos => scenario
            .pool_generator(PoolConfig::algorithm1())
            .expect("generator")
            .generate(&mut exchanger, &scenario.pool_domain)
            .map(|r| r.pool.addresses())
            .unwrap_or_default(),
    };
    let captured = {
        let mut as_pool = sdoh_core::AddressPool::new();
        for addr in &pool {
            as_pool.push(*addr, "pool");
        }
        sdoh_core::attacker_controls_fraction(&as_pool, &truth, 0.5)
    };

    let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
    match setup {
        TimeSyncSetup::PlainDnsPlainNtp => {
            let _ = NtpClient::new(CLIENT_ADDR.with_port(123)).synchronize_simple(
                &scenario.net,
                &mut clock,
                &pool,
            );
        }
        _ => {
            if let Ok(mut chronos) = ChronosClient::new(
                ChronosConfig::default(),
                NtpClient::new(CLIENT_ADDR.with_port(123)),
                seed,
            ) {
                let _ = chronos.update(&scenario.net, &mut clock, &pool);
            }
        }
    }
    (clock.offset_from_true(), captured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposal_keeps_the_clock_while_baselines_lose_it() {
        let shift = 1000.0;
        let (plain_ntp, captured1) = run_setup(TimeSyncSetup::PlainDnsPlainNtp, shift, 11);
        let (plain_chronos, captured2) = run_setup(TimeSyncSetup::PlainDnsChronos, shift, 12);
        let (doh_chronos, captured3) = run_setup(TimeSyncSetup::DistributedDohChronos, shift, 13);

        assert!(captured1 && captured2, "plain DNS pools are captured");
        assert!(!captured3, "the DoH pool is not captured");
        assert!(
            plain_ntp > shift * 0.9,
            "plain NTP fully hijacked: {plain_ntp}"
        );
        assert!(
            plain_chronos > shift * 0.5,
            "Chronos over a poisoned pool is hijacked: {plain_chronos}"
        );
        assert!(
            doh_chronos.abs() < 1.0,
            "the proposal keeps the clock within a second: {doh_chronos}"
        );
    }

    #[test]
    fn table_lists_all_three_configurations() {
        let table = run(500.0, 21);
        assert_eq!(table.len(), 3);
    }
}
