//! E13 — end-to-end secure time synchronization: the attack matrix.
//!
//! Sweeps **adversary** (compromised DoH resolver count × off-path
//! spoofer on the plain Do53 leg) × **client** (plain SNTP, full-pool
//! average NTP, Chronos via [`SecureTimeClient`]) × **pool source**
//! (single plain-DNS resolver, direct distributed consensus, the cached
//! consensus front end) and records, for every cell, the pool's guarantee
//! check and the clock error after one synchronization.
//!
//! The matrix reproduces the paper's headline result: a poisoned pool
//! captures *every* client — plain SNTP outright, and even Chronos, whose
//! trimmed sampling cannot survive a malicious majority — while the
//! consensus pipeline keeps the pool's honest majority and the clock
//! within a second under the same attack. The spoofer only reaches the
//! plain Do53 leg to the ISP resolver; the consensus front end runs on the
//! client's host (loopback) and fans out over authenticated DoH channels,
//! which is exactly the paper's deployment model.

use std::net::IpAddr;

use sdoh_analysis::Table;
use sdoh_core::{check_guarantee, CacheConfig, PoolConfig};
use sdoh_dns_server::ClientExchanger;
use sdoh_dns_wire::Ttl;
use sdoh_ntp::{
    ChronosClient, ChronosConfig, ConsensusFrontEnd, GeneratorPool, LocalClock, NtpClient,
    NtpPoolSource, SecureTimeClient, SingleResolverPool,
};
use secure_doh::scenario::{
    address_pool, NtpFleetConfig, ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR,
    ISP_RESOLVER,
};

use super::pool_spoofer;

/// Where the client's NTP pool comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolSourceKind {
    /// One plain-DNS lookup through the ISP resolver (spoofable Do53 leg).
    SingleResolver,
    /// Direct distributed-consensus generation over the DoH fleet.
    DistributedConsensus,
    /// The caching consensus front end of the serving subsystem.
    CachedConsensus,
}

impl PoolSourceKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            PoolSourceKind::SingleResolver => "single resolver",
            PoolSourceKind::DistributedConsensus => "distributed consensus",
            PoolSourceKind::CachedConsensus => "cached consensus",
        }
    }
}

/// Which time client synchronizes over the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientKind {
    /// Plain SNTP: trust the first responsive server.
    PlainSntp,
    /// Average of every responsive server, no trimming.
    FullPoolNtp,
    /// Chronos via [`SecureTimeClient`].
    Chronos,
}

impl ClientKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            ClientKind::PlainSntp => "plain SNTP",
            ClientKind::FullPoolNtp => "full-pool NTP",
            ClientKind::Chronos => "Chronos",
        }
    }
}

/// One adversary configuration of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackCase {
    /// DoH resolvers (out of [`RESOLVERS`]) answering with attacker
    /// addresses.
    pub compromised_resolvers: usize,
    /// Whether the off-path spoofer races forged answers on the Do53 leg
    /// to the ISP resolver (success probability 1 — the worst case).
    pub spoofer: bool,
}

/// One measured cell of the matrix.
#[derive(Debug, Clone)]
pub struct TimeSyncCell {
    /// Pool source of this cell.
    pub source: PoolSourceKind,
    /// Time client of this cell.
    pub client: ClientKind,
    /// Adversary of this cell.
    pub attack: AttackCase,
    /// Size of the pool the client obtained (0 = fetch failed / DoS).
    pub pool_size: usize,
    /// Benign fraction of that pool per ground truth.
    pub benign_fraction: f64,
    /// Whether the pool satisfies the x >= 1/2 guarantee.
    pub guarantee_holds: bool,
    /// Whether the attacker controls at least half the pool.
    pub captured: bool,
    /// `LocalClock::offset_from_true` after one synchronization.
    pub clock_error: f64,
    /// Whether the synchronization completed at all (a failed sync leaves
    /// the clock untouched — a DoS, not a capture).
    pub synced: bool,
}

/// DoH resolvers installed per scenario.
pub const RESOLVERS: usize = 3;
/// Benign NTP servers published in the pool domain.
pub const NTP_SERVERS: usize = 16;

fn build_scenario(attack: AttackCase, shift: f64, seed: u64) -> Scenario {
    let compromised = (0..attack.compromised_resolvers.min(RESOLVERS))
        .map(|i| {
            (
                i,
                ResolverCompromise::ReplaceWithAttackerAddresses(NTP_SERVERS),
            )
        })
        .collect();
    let mut scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: RESOLVERS,
        ntp_servers: NTP_SERVERS,
        attacker_time_shift: shift,
        compromised,
        ..ScenarioConfig::default()
    });
    // The published fleet itself is honest here; the attack surface under
    // test is the DNS path. (install_ntp_fleet keeps ground truth linked
    // if a variant wants planted servers too.)
    scenario.install_ntp_fleet(NtpFleetConfig::default());
    if attack.spoofer {
        let forged: Vec<IpAddr> = scenario
            .attacker_ntp
            .iter()
            .take(NTP_SERVERS)
            .copied()
            .collect();
        scenario.net.set_adversary(pool_spoofer(
            1.0,
            vec![ISP_RESOLVER],
            scenario.pool_domain.clone(),
            forged,
        ));
    }
    scenario
}

fn pool_source(scenario: &Scenario, kind: PoolSourceKind) -> Box<dyn NtpPoolSource> {
    match kind {
        PoolSourceKind::SingleResolver => Box::new(SingleResolverPool::new(ISP_RESOLVER)),
        PoolSourceKind::DistributedConsensus => Box::new(GeneratorPool::new(
            scenario
                .pool_generator(PoolConfig::algorithm1())
                .expect("valid pool config"),
            Ttl::from_secs(300),
        )),
        PoolSourceKind::CachedConsensus => Box::new(ConsensusFrontEnd::new(
            scenario
                .install_caching_frontend(PoolConfig::algorithm1(), CacheConfig::default())
                .expect("valid cache config"),
        )),
    }
}

/// Runs one cell of the matrix: build the scenario, obtain the pool
/// through the given source, synchronize once with the given client, and
/// measure pool guarantee plus clock error against ground truth.
pub fn run_cell(
    source: PoolSourceKind,
    client: ClientKind,
    attack: AttackCase,
    shift: f64,
    seed: u64,
) -> TimeSyncCell {
    let scenario = build_scenario(attack, shift, seed);
    let truth = scenario.ground_truth();
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
    let ntp = NtpClient::new(CLIENT_ADDR.with_port(123));

    let (pool, synced) = match client {
        ClientKind::Chronos => {
            // The real subsystem: SecureTimeClient owns the source, pulls
            // the pool per TTL window and drives Chronos over it.
            let chronos = ChronosClient::new(ChronosConfig::default(), ntp, seed)
                .expect("default chronos config is valid");
            let mut time_client = SecureTimeClient::new(
                pool_source(&scenario, source),
                scenario.pool_domain.clone(),
                chronos,
            );
            let outcome = time_client.sync(&scenario.net, &mut exchanger, &mut clock);
            (time_client.pool().to_vec(), outcome.is_ok())
        }
        ClientKind::PlainSntp | ClientKind::FullPoolNtp => {
            let fetched = pool_source(&scenario, source)
                .fetch_pool(&mut exchanger, &scenario.pool_domain)
                .map(|timed| timed.addresses)
                .unwrap_or_default();
            let outcome = match client {
                ClientKind::PlainSntp => ntp
                    .synchronize_simple(&scenario.net, &mut clock, &fetched)
                    .map(|_| ()),
                _ => ntp
                    .synchronize_pool_average(&scenario.net, &mut clock, &fetched)
                    .map(|_| ()),
            };
            (fetched, outcome.is_ok())
        }
    };

    let check = check_guarantee(&address_pool(&pool, source.label()), &truth, 0.5);
    TimeSyncCell {
        source,
        client,
        attack,
        pool_size: pool.len(),
        benign_fraction: check.benign_fraction,
        guarantee_holds: check.holds,
        captured: sdoh_core::attacker_controls_fraction(
            &address_pool(&pool, source.label()),
            &truth,
            0.5,
        ),
        clock_error: clock.offset_from_true(),
        synced,
    }
}

/// Runs the full matrix over `attacks` and tabulates it.
pub fn run(attacks: &[AttackCase], shift: f64, seed: u64) -> (Table, Vec<TimeSyncCell>) {
    let mut table = Table::new(
        format!("E13: end-to-end time sync under attack ({shift} s attacker servers)"),
        &[
            "pool source",
            "client",
            "compromised resolvers",
            "spoofer",
            "pool size",
            "benign fraction",
            "guarantee",
            "captured",
            "clock error (s)",
            "synced",
        ],
    );
    let mut cells = Vec::new();
    for &attack in attacks {
        for source in [
            PoolSourceKind::SingleResolver,
            PoolSourceKind::DistributedConsensus,
            PoolSourceKind::CachedConsensus,
        ] {
            for client in [
                ClientKind::PlainSntp,
                ClientKind::FullPoolNtp,
                ClientKind::Chronos,
            ] {
                let cell = run_cell(source, client, attack, shift, seed);
                table.push_row([
                    source.label().to_string(),
                    client.label().to_string(),
                    format!("{}/{}", attack.compromised_resolvers, RESOLVERS),
                    attack.spoofer.to_string(),
                    cell.pool_size.to_string(),
                    format!("{:.2}", cell.benign_fraction),
                    if cell.guarantee_holds {
                        "holds"
                    } else {
                        "violated"
                    }
                    .to_string(),
                    cell.captured.to_string(),
                    format!("{:+.3}", cell.clock_error),
                    cell.synced.to_string(),
                ]);
                cells.push(cell);
            }
        }
    }
    (table, cells)
}

/// The attack cases of the full experiment.
pub fn full_matrix() -> Vec<AttackCase> {
    vec![
        AttackCase {
            compromised_resolvers: 0,
            spoofer: false,
        },
        AttackCase {
            compromised_resolvers: 0,
            spoofer: true,
        },
        AttackCase {
            compromised_resolvers: 1,
            spoofer: true,
        },
        AttackCase {
            compromised_resolvers: 2,
            spoofer: true,
        },
    ]
}

/// The single attack case the CI smoke run exercises: one compromised
/// resolver plus the Do53 spoofer — the paper's headline configuration.
pub fn smoke_matrix() -> Vec<AttackCase> {
    vec![AttackCase {
        compromised_resolvers: 1,
        spoofer: true,
    }]
}

/// Serializes the matrix as the repo's `BENCH_*.json` shape.
pub fn to_json(cells: &[TimeSyncCell], recorded: &str, notes: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"time_sync\",\n");
    out.push_str(&format!("  \"recorded\": \"{recorded}\",\n"));
    out.push_str(&format!("  \"notes\": \"{notes}\",\n"));
    out.push_str("  \"matrix\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"pool_source\": \"{}\",\n      \"client\": \"{}\",\n      \
             \"compromised_resolvers\": {},\n      \"spoofer\": {},\n      \
             \"pool_size\": {},\n      \"benign_fraction\": {:.4},\n      \
             \"guarantee_holds\": {},\n      \"captured\": {},\n      \
             \"clock_error_s\": {:.4},\n      \"synced\": {}\n    }}{}\n",
            cell.source.label(),
            cell.client.label(),
            cell.attack.compromised_resolvers,
            cell.attack.spoofer,
            cell.pool_size,
            cell.benign_fraction,
            cell.guarantee_holds,
            cell.captured,
            cell.clock_error,
            cell.synced,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHIFT: f64 = 1000.0;

    fn headline_attack() -> AttackCase {
        AttackCase {
            compromised_resolvers: 1,
            spoofer: true,
        }
    }

    #[test]
    fn poisoned_single_resolver_captures_every_client() {
        // The acceptance criterion's first half: with the Do53 leg spoofed,
        // the single-resolver pool is fully attacker-controlled and plain
        // SNTP swallows the whole shift...
        let sntp = run_cell(
            PoolSourceKind::SingleResolver,
            ClientKind::PlainSntp,
            headline_attack(),
            SHIFT,
            13,
        );
        assert!(sntp.captured, "the spoofed pool is attacker-controlled");
        assert!(!sntp.guarantee_holds);
        assert!(
            sntp.clock_error >= SHIFT * 0.9,
            "plain SNTP is hijacked outright: {}",
            sntp.clock_error
        );
        // ...and even Chronos cannot survive a pool whose majority is bad.
        let chronos = run_cell(
            PoolSourceKind::SingleResolver,
            ClientKind::Chronos,
            headline_attack(),
            SHIFT,
            13,
        );
        assert!(chronos.captured);
        assert!(
            chronos.clock_error >= SHIFT * 0.5,
            "a poisoned pool captures even Chronos: {}",
            chronos.clock_error
        );
    }

    #[test]
    fn cached_consensus_chronos_keeps_the_clock_under_the_same_attack() {
        // The acceptance criterion's second half: the SecureTimeClient over
        // the cached consensus pipeline, same adversary.
        let cell = run_cell(
            PoolSourceKind::CachedConsensus,
            ClientKind::Chronos,
            headline_attack(),
            SHIFT,
            13,
        );
        assert!(cell.synced);
        assert!(cell.guarantee_holds, "1 of 3 compromised keeps x >= 1/2");
        assert!(!cell.captured);
        assert_eq!(cell.pool_size, NTP_SERVERS * RESOLVERS);
        assert!(
            cell.clock_error.abs() < 1.0,
            "|offset_from_true| stays under a second: {}",
            cell.clock_error
        );
    }

    #[test]
    fn consensus_collapses_once_the_resolver_majority_is_compromised() {
        let cell = run_cell(
            PoolSourceKind::CachedConsensus,
            ClientKind::Chronos,
            AttackCase {
                compromised_resolvers: 2,
                spoofer: true,
            },
            SHIFT,
            14,
        );
        assert!(
            !cell.guarantee_holds,
            "2 of 3 compromised resolvers break the honest majority"
        );
        assert!(
            cell.clock_error.abs() >= SHIFT * 0.5 || !cell.synced,
            "a broken guarantee loses the clock: {}",
            cell.clock_error
        );
    }

    #[test]
    fn benign_matrix_synchronises_everywhere() {
        let benign = AttackCase {
            compromised_resolvers: 0,
            spoofer: false,
        };
        for source in [
            PoolSourceKind::SingleResolver,
            PoolSourceKind::DistributedConsensus,
            PoolSourceKind::CachedConsensus,
        ] {
            let cell = run_cell(source, ClientKind::Chronos, benign, SHIFT, 15);
            assert!(cell.synced, "{source:?}");
            assert!(cell.guarantee_holds);
            assert!(
                cell.clock_error.abs() < 1.0,
                "{source:?}: {}",
                cell.clock_error
            );
        }
    }

    #[test]
    fn table_and_json_cover_the_matrix() {
        let (table, cells) = run(&smoke_matrix(), 500.0, 21);
        assert_eq!(table.rows().len(), 9, "3 sources x 3 clients");
        assert_eq!(cells.len(), 9);
        let json = to_json(&cells, "test", "smoke");
        assert!(json.contains("\"benchmark\": \"time_sync\""));
        assert!(json.contains("\"pool_source\": \"cached consensus\""));
        assert!(json.contains("clock_error_s"));
    }
}
