//! E6 — footnote 2: truncation to the shortest list defeats answer
//! inflation by a compromised resolver.

use sdoh_analysis::{fmt_percent, Table};
use sdoh_core::{check_guarantee, CombinationMode, PoolConfig};
use sdoh_dns_server::ClientExchanger;
use secure_doh::scenario::{ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR};

/// Sweeps the inflation factor of one compromised resolver (out of three)
/// and reports the attacker's pool share with and without truncation.
pub fn run(inflation_factors: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E6: answer inflation by 1 of 3 resolvers — attacker pool share",
        &[
            "extra attacker addresses",
            "with truncation (Algorithm 1)",
            "guarantee holds",
            "without truncation (ablation)",
            "guarantee holds",
        ],
    );
    for (i, &extra) in inflation_factors.iter().enumerate() {
        let with = malicious_share(extra, CombinationMode::TruncateAndCombine, seed + i as u64);
        let without = malicious_share(
            extra,
            CombinationMode::CombineWithoutTruncation,
            seed + 100 + i as u64,
        );
        table.push_row([
            extra.to_string(),
            fmt_percent(with.0),
            with.1.to_string(),
            fmt_percent(without.0),
            without.1.to_string(),
        ]);
    }
    table
}

fn malicious_share(extra: usize, mode: CombinationMode, seed: u64) -> (f64, bool) {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 8,
        compromised: vec![(0, ResolverCompromise::InflateWithAttackerAddresses(extra))],
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let report = scenario
        .pool_generator(PoolConfig::default().with_mode(mode))
        .expect("generator")
        .generate(&mut exchanger, &scenario.pool_domain)
        .expect("generation");
    let check = check_guarantee(&report.pool, &scenario.ground_truth(), 0.5);
    (check.malicious_fraction, check.holds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_caps_the_attacker_share() {
        let (with, holds_with) = malicious_share(32, CombinationMode::TruncateAndCombine, 3);
        let (without, holds_without) =
            malicious_share(32, CombinationMode::CombineWithoutTruncation, 4);
        assert!(
            with < 1e-9,
            "truncation keeps the inflated tail out: {with}"
        );
        assert!(holds_with);
        assert!(
            without > 0.5,
            "without truncation the attacker overwhelms the pool: {without}"
        );
        assert!(!holds_without);
    }

    #[test]
    fn table_covers_every_factor() {
        let table = run(&[2, 8], 9);
        assert_eq!(table.len(), 2);
    }
}
