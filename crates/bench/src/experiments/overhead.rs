//! E8 — the cost of the design: messages, bytes and (virtual) latency of
//! pool generation as the number of DoH resolvers grows, against the
//! single-query plain-DNS baseline.
//!
//! Since the sans-IO session redesign the client queries the N resolvers
//! **concurrently**, the way the paper's client does: the table therefore
//! reports both the concurrent latency (what the system costs) and the
//! sequential latency (what a naive one-at-a-time client would pay), making
//! the fan-out win visible — concurrent latency stays flat in N while the
//! sequential column grows linearly.

use sdoh_analysis::Table;
use sdoh_core::PoolConfig;
use sdoh_dns_server::{ClientExchanger, StubResolver};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER};

/// Measures one pool generation per resolver count and reports transport
/// metrics plus elapsed virtual time for both fan-out modes.
pub fn run(resolver_counts: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E8: pool-generation overhead vs. number of DoH resolvers",
        &[
            "configuration",
            "requests",
            "bytes sent",
            "bytes received",
            "concurrent latency (ms)",
            "sequential latency (ms)",
            "pool slots",
        ],
    );

    // Baseline: one plain DNS lookup through the ISP resolver.
    {
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            resolvers: 1,
            ntp_servers: 8,
            ..ScenarioConfig::default()
        });
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let start = scenario.net.now();
        let addresses = StubResolver::new(ISP_RESOLVER)
            .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
            .unwrap_or_default();
        let elapsed = scenario.net.clock().elapsed_since(start);
        let metrics = scenario.net.metrics();
        let latency_ms = format!("{:.1}", elapsed.as_secs_f64() * 1000.0);
        table.push_row([
            "plain DNS (baseline)".to_string(),
            metrics.requests.to_string(),
            metrics.bytes_sent.to_string(),
            metrics.bytes_received.to_string(),
            latency_ms.clone(),
            latency_ms,
            addresses.len().to_string(),
        ]);
    }

    for &n in resolver_counts {
        // Separate scenario instances with the same seed, so the two
        // fan-out modes measure identical cold-cache work.
        let build = || {
            Scenario::build(ScenarioConfig {
                seed: seed + n as u64,
                resolvers: n,
                ntp_servers: 8,
                ..ScenarioConfig::default()
            })
        };

        let concurrent_scenario = build();
        concurrent_scenario.net.reset_metrics();
        let (report, concurrent_elapsed) = concurrent_scenario
            .generate_pool(PoolConfig::algorithm1())
            .expect("concurrent generation");
        let metrics = concurrent_scenario.net.metrics();

        let sequential_scenario = build();
        sequential_scenario.net.reset_metrics();
        let (_, sequential_elapsed) = sequential_scenario
            .generate_pool_sequential(PoolConfig::algorithm1())
            .expect("sequential generation");

        table.push_row([
            format!("distributed DoH, N={n}"),
            metrics.requests.to_string(),
            metrics.bytes_sent.to_string(),
            metrics.bytes_received.to_string(),
            format!("{:.1}", concurrent_elapsed.as_secs_f64() * 1000.0),
            format!("{:.1}", sequential_elapsed.as_secs_f64() * 1000.0),
            report.pool.len().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_resolver_count() {
        let table = run(&[1, 3, 5], 31);
        assert_eq!(table.len(), 4);
        let rows = table.rows();
        let requests: Vec<u64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // More resolvers means more requests.
        assert!(requests[3] > requests[2]);
        assert!(requests[2] > requests[1]);
        // The pool grows linearly with N (8 addresses each).
        assert_eq!(rows[1][6], "8");
        assert_eq!(rows[2][6], "24");
        assert_eq!(rows[3][6], "40");
    }

    #[test]
    fn concurrent_latency_is_flat_while_sequential_grows() {
        let table = run(&[1, 3, 5], 77);
        let rows = table.rows();
        let concurrent: Vec<f64> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
        let sequential: Vec<f64> = rows.iter().map(|r| r[5].parse().unwrap()).collect();
        // N=5 sequential pays roughly five lookups; concurrent pays about
        // one (jitter makes it the slowest of five, slightly above N=1).
        assert!(
            sequential[3] > concurrent[3] * 3.0,
            "sequential {} vs concurrent {}",
            sequential[3],
            concurrent[3]
        );
        // The concurrent latency must not grow linearly in N: going from 1
        // to 5 resolvers costs well under 2x one lookup.
        assert!(
            concurrent[3] < concurrent[1] * 2.0,
            "N=5 concurrent {} vs N=1 {}",
            concurrent[3],
            concurrent[1]
        );
    }
}
