//! E8 — the cost of the design: messages, bytes and (virtual) latency of
//! pool generation as the number of DoH resolvers grows, against the
//! single-query plain-DNS baseline.

use sdoh_analysis::Table;
use sdoh_core::PoolConfig;
use sdoh_dns_server::{ClientExchanger, StubResolver};
use secure_doh::scenario::{Scenario, ScenarioConfig, CLIENT_ADDR, ISP_RESOLVER};

/// Measures one pool generation per resolver count and reports transport
/// metrics plus elapsed virtual time.
pub fn run(resolver_counts: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E8: pool-generation overhead vs. number of DoH resolvers",
        &[
            "configuration",
            "requests",
            "bytes sent",
            "bytes received",
            "virtual latency (ms)",
            "pool slots",
        ],
    );

    // Baseline: one plain DNS lookup through the ISP resolver.
    {
        let scenario = Scenario::build(ScenarioConfig {
            seed,
            resolvers: 1,
            ntp_servers: 8,
            ..ScenarioConfig::default()
        });
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        let start = scenario.net.now();
        let addresses = StubResolver::new(ISP_RESOLVER)
            .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
            .unwrap_or_default();
        let elapsed = scenario.net.clock().elapsed_since(start);
        let metrics = scenario.net.metrics();
        table.push_row([
            "plain DNS (baseline)".to_string(),
            metrics.requests.to_string(),
            metrics.bytes_sent.to_string(),
            metrics.bytes_received.to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1000.0),
            addresses.len().to_string(),
        ]);
    }

    for &n in resolver_counts {
        let scenario = Scenario::build(ScenarioConfig {
            seed: seed + n as u64,
            resolvers: n,
            ntp_servers: 8,
            ..ScenarioConfig::default()
        });
        let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
        // Exclude scenario setup traffic from the measurement.
        scenario.net.reset_metrics();
        let start = scenario.net.now();
        let report = scenario
            .pool_generator(PoolConfig::algorithm1())
            .expect("generator")
            .generate(&mut exchanger, &scenario.pool_domain)
            .expect("generation");
        let elapsed = scenario.net.clock().elapsed_since(start);
        let metrics = scenario.net.metrics();
        table.push_row([
            format!("distributed DoH, N={n}"),
            metrics.requests.to_string(),
            metrics.bytes_sent.to_string(),
            metrics.bytes_received.to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1000.0),
            report.pool.len().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_grows_with_resolver_count() {
        let table = run(&[1, 3, 5], 31);
        assert_eq!(table.len(), 4);
        let rows = table.rows();
        let requests: Vec<u64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // More resolvers means more requests.
        assert!(requests[3] > requests[2]);
        assert!(requests[2] > requests[1]);
        // The pool grows linearly with N (8 addresses each).
        assert_eq!(rows[1][5], "8");
        assert_eq!(rows[2][5], "24");
        assert_eq!(rows[3][5], "40");
    }
}
