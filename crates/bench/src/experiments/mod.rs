//! One module per experiment of the index in `DESIGN.md`.

pub mod attack_probability;
pub mod cache_serving;
pub mod chaos;
pub mod chronos_timeshift;
pub mod dualstack;
pub mod empty_answer;
pub mod fig1;
pub mod majority;
pub mod observability;
pub mod offpath;
pub mod offpath_poisoning;
pub mod overhead;
pub mod reconfig;
pub mod required_fraction;
pub mod runtime_throughput;
pub mod time_sync;
pub mod truncation;

use std::net::IpAddr;

use sdoh_netsim::{OffPathSpoofer, SimAddr, SpoofStrategy};
use secure_doh::wire::{Message, MessageBuilder, Name};

/// Builds the off-path spoofing adversary used by the attack experiments:
/// it targets plain-DNS queries towards the given victims, forges answers
/// for address queries under `target_domain` and points them at
/// `attacker_addresses`, succeeding with probability `p` per query.
pub fn pool_spoofer(
    p: f64,
    victims: Vec<SimAddr>,
    target_domain: Name,
    attacker_addresses: Vec<IpAddr>,
) -> OffPathSpoofer {
    OffPathSpoofer::new(
        SpoofStrategy::FixedProbability(p),
        move |query_bytes, _rng| {
            let query = Message::decode(query_bytes).ok()?;
            let question = query.question()?;
            if !question.rtype.is_address() || !question.name.is_subdomain_of(&target_domain) {
                return None;
            }
            let mut builder = MessageBuilder::response_to(&query).recursion_available(true);
            for addr in &attacker_addresses {
                builder = builder.answer_address(300, *addr);
            }
            builder.build().encode().ok()
        },
    )
    .with_targets(victims)
}

/// Attacker address block shared by the experiments.
pub fn attacker_addresses(count: usize) -> Vec<IpAddr> {
    (1..=count)
        .map(|i| {
            IpAddr::V4(std::net::Ipv4Addr::new(
                198,
                18,
                (i / 250) as u8,
                (i % 250) as u8,
            ))
        })
        .collect()
}
