//! E9 — the majority-vote resolver mode vs. Algorithm 1 under resolver
//! compromise.

use sdoh_analysis::{fmt_percent, Table};
use sdoh_core::{check_guarantee, CombinationMode, PoolConfig};
use sdoh_dns_server::ClientExchanger;
use secure_doh::scenario::{ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR};

/// For each number of compromised resolvers, compares the pools produced by
/// Algorithm 1 (truncate + combine) and by the majority vote.
pub fn run(total_resolvers: usize, seed: u64) -> Table {
    let mut table = Table::new(
        format!("E9: Algorithm 1 vs. majority vote, N = {total_resolvers}"),
        &[
            "compromised resolvers",
            "mode",
            "pool slots",
            "attacker share",
            "benign servers included",
            "guarantee (x=1/2)",
        ],
    );
    for compromised in 0..=total_resolvers {
        for mode in [
            CombinationMode::TruncateAndCombine,
            CombinationMode::MajorityVote,
        ] {
            let row = simulate(total_resolvers, compromised, mode, seed);
            table.push_row(row);
        }
    }
    table
}

fn simulate(total: usize, compromised: usize, mode: CombinationMode, seed: u64) -> [String; 6] {
    let scenario = Scenario::build(ScenarioConfig {
        seed: seed + (total * 100 + compromised) as u64,
        resolvers: total,
        ntp_servers: 8,
        compromised: (0..compromised)
            .map(|i| (i, ResolverCompromise::ReplaceWithAttackerAddresses(8)))
            .collect(),
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let report = scenario
        .pool_generator(PoolConfig::default().with_mode(mode))
        .expect("generator")
        .generate(&mut exchanger, &scenario.pool_domain)
        .expect("generation");
    let truth = scenario.ground_truth();
    let check = check_guarantee(&report.pool, &truth, 0.5);
    let benign_included = report
        .pool
        .unique_addresses()
        .iter()
        .filter(|a| !truth.is_malicious(**a))
        .count();
    [
        compromised.to_string(),
        format!("{mode:?}"),
        report.pool.len().to_string(),
        fmt_percent(check.malicious_fraction),
        format!("{benign_included}/{}", scenario.benign_ntp.len()),
        check.holds.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_excludes_minority_poison_entirely() {
        let row = simulate(3, 1, CombinationMode::MajorityVote, 77);
        assert_eq!(row[3], "0.0%", "no attacker address passes the vote");
        assert_eq!(row[4], "8/8", "every benign server is corroborated");
        assert_eq!(row[5], "true");
    }

    #[test]
    fn algorithm1_bounds_minority_poison_to_its_share() {
        let row = simulate(3, 1, CombinationMode::TruncateAndCombine, 78);
        assert_eq!(row[3], "33.3%");
        assert_eq!(row[5], "true");
    }

    #[test]
    fn compromised_majority_defeats_both_modes() {
        let alg1 = simulate(3, 2, CombinationMode::TruncateAndCombine, 79);
        let vote = simulate(3, 2, CombinationMode::MajorityVote, 80);
        assert_eq!(alg1[5], "false");
        // With 2 of 3 resolvers lying consistently, their addresses win the
        // vote and the benign ones lose it.
        assert_eq!(vote[5], "false");
    }

    #[test]
    fn table_covers_all_rows() {
        let table = run(3, 81);
        assert_eq!(table.len(), 8);
    }
}
