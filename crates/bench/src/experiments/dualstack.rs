//! E10 — footnote 1: dual-stack (A + AAAA) handling — honest majority over
//! the union of both families vs. for each family individually.

use std::net::IpAddr;

use sdoh_analysis::{fmt_percent, Table};
use sdoh_core::{
    check_guarantee, AddressSource, DualStackPolicy, GroundTruth, PoolConfig, SecurePoolGenerator,
    StaticSource,
};
use sdoh_dns_server::ClientExchanger;
use sdoh_netsim::{SimAddr, SimNet};

/// Scenario: three resolvers; two are honest (3 A records + 1 AAAA record)
/// and one is compromised — it suppresses its A answer entirely and returns
/// four attacker AAAA records instead. The three policies react very
/// differently, which is exactly the distinction footnote 1 draws:
///
/// * `Ipv4Only` is denial-of-serviced (the empty A answer truncates the
///   pool to zero),
/// * `Union` keeps an honest majority over the whole pool but a v6-only
///   consumer of that pool sees a malicious majority,
/// * `PerFamily` bounds the attacker inside each family, at the cost of the
///   v4 family being denial-of-serviced.
pub fn run() -> Table {
    let mut table = Table::new(
        "E10: dual-stack policies with an IPv6-poisoning resolver (1 of 3)",
        &[
            "policy",
            "pool slots",
            "attacker share (whole pool)",
            "attacker share (v6 sub-pool)",
            "guarantee on union",
            "guarantee per family",
        ],
    );
    for policy in [
        DualStackPolicy::Ipv4Only,
        DualStackPolicy::Union,
        DualStackPolicy::PerFamily,
    ] {
        table.push_row(simulate(policy));
    }
    table
}

fn benign_v4(i: u8) -> IpAddr {
    format!("203.0.113.{i}").parse().expect("addr")
}

fn benign_v6(i: u8) -> IpAddr {
    format!("2001:db8::{i}").parse().expect("addr")
}

fn evil_v6(i: u8) -> IpAddr {
    format!("2001:db8:bad::{i}").parse().expect("addr")
}

fn simulate(policy: DualStackPolicy) -> [String; 6] {
    let honest = |name: &str, v6: u8| {
        StaticSource::answering(
            name,
            vec![benign_v4(1), benign_v4(2), benign_v4(3), benign_v6(v6)],
        )
    };
    // The compromised resolver returns no A records and four attacker AAAA
    // records.
    let compromised = StaticSource::answering(
        "compromised",
        vec![evil_v6(1), evil_v6(2), evil_v6(3), evil_v6(4)],
    );
    let sources: Vec<Box<dyn AddressSource>> = vec![
        Box::new(honest("r1", 1)),
        Box::new(honest("r2", 2)),
        Box::new(compromised),
    ];
    let truth = GroundTruth::with_malicious((1..=4).map(evil_v6));
    let generator =
        SecurePoolGenerator::new(PoolConfig::algorithm1().with_dual_stack(policy), sources)
            .expect("generator");
    let net = SimNet::new(10);
    let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
    let report = generator
        .generate(&mut exchanger, &"pool.ntpns.org".parse().expect("name"))
        .expect("generation");

    let union_check = check_guarantee(&report.pool, &truth, 0.5);
    let (_, v6_pool) = report.pool.split_by_family();
    let v6_share = if v6_pool.is_empty() {
        0.0
    } else {
        1.0 - v6_pool.benign_fraction(|a| !truth.is_malicious(a))
    };
    let v6_check = check_guarantee(&v6_pool, &truth, 0.5);
    let per_family_ok = if v6_pool.is_empty() {
        union_check.holds
    } else {
        union_check.holds && v6_check.holds
    };
    [
        format!("{policy:?}"),
        report.pool.len().to_string(),
        fmt_percent(union_check.malicious_fraction),
        fmt_percent(v6_share),
        union_check.holds.to_string(),
        per_family_ok.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_holds_but_v6_family_is_captured() {
        let row = simulate(DualStackPolicy::Union);
        assert_eq!(row[1], "12");
        assert_eq!(row[4], "true", "union keeps an honest majority overall");
        assert_eq!(
            row[5], "false",
            "the v6 sub-pool alone does not keep an honest majority"
        );
    }

    #[test]
    fn ipv4_only_is_denial_of_serviced_by_the_empty_answer() {
        let row = simulate(DualStackPolicy::Ipv4Only);
        assert_eq!(row[1], "0", "the empty A answer truncates the pool away");
        assert_eq!(row[4], "false");
    }

    #[test]
    fn per_family_bounds_the_attacker_in_both_families() {
        let row = simulate(DualStackPolicy::PerFamily);
        assert_eq!(row[4], "true");
        assert_eq!(row[5], "true");
        assert_eq!(row[3], "33.3%");
    }

    #[test]
    fn table_lists_three_policies() {
        assert_eq!(run().len(), 3);
    }
}
