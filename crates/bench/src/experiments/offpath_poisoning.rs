//! E14 — off-path poisoning of the Do53 leg: the Kaminsky-style birthday
//! attacker versus the resolver defense gradient.
//!
//! Two parts:
//!
//! * **Sweep** — attack-success probability per defense configuration
//!   (none / random TXID / +random port / +0x20 / +bailiwick) × forgery
//!   budget (packets raced per query), measured over independent trials
//!   and compared to the analytical
//!   [`SpoofStrategy::success_probability`](sdoh_netsim::SpoofStrategy)
//!   prediction for the identifier entropy each defense level exposes.
//! * **Capture punchline** — the E13-style end-to-end consequence: the
//!   weak resolver feeding a [`SingleResolverPool`] gets its NTP pool
//!   captured and its Chronos clock shifted, while the hardened resolver
//!   and the DoH-consensus pipeline keep the clock within a second under
//!   the very same attacker.

use sdoh_analysis::{fmt_probability, Table};
use sdoh_core::{attacker_controls_fraction, check_guarantee, CacheConfig, PoolConfig};
use sdoh_dns_server::{ClientExchanger, HardeningConfig, StubResolver};
use sdoh_dns_wire::Name;
use sdoh_netsim::SpoofStrategy;
use sdoh_ntp::{
    ChronosClient, ChronosConfig, ConsensusFrontEnd, LocalClock, NtpClient, SecureTimeClient,
    SingleResolverPool,
};
use secure_doh::scenario::{
    address_pool, KaminskyPayload, NtpFleetConfig, Scenario, ScenarioConfig, CLIENT_ADDR,
    ISP_RESOLVER,
};

/// The cumulative defense gradient of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseLevel {
    /// Sequential transaction ids, fixed source port, no 0x20, no
    /// bailiwick — the weak baseline.
    NoDefenses,
    /// Random transaction ids only.
    RandomTxid,
    /// Random transaction ids and ephemeral source ports.
    RandomTxidPort,
    /// Identifiers plus 0x20 mixed-case encoding.
    Plus0x20,
    /// Everything, plus bailiwick enforcement — the secure default.
    PlusBailiwick,
}

impl DefenseLevel {
    /// Every level, weakest first.
    pub const ALL: [DefenseLevel; 5] = [
        DefenseLevel::NoDefenses,
        DefenseLevel::RandomTxid,
        DefenseLevel::RandomTxidPort,
        DefenseLevel::Plus0x20,
        DefenseLevel::PlusBailiwick,
    ];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            DefenseLevel::NoDefenses => "none",
            DefenseLevel::RandomTxid => "random TXID",
            DefenseLevel::RandomTxidPort => "+ random port",
            DefenseLevel::Plus0x20 => "+ 0x20",
            DefenseLevel::PlusBailiwick => "+ bailiwick",
        }
    }

    /// The resolver configuration this level selects.
    pub fn hardening(self) -> HardeningConfig {
        match self {
            DefenseLevel::NoDefenses => HardeningConfig::predictable_ids(),
            DefenseLevel::RandomTxid => HardeningConfig::predictable_ids().randomize_txid(true),
            DefenseLevel::RandomTxidPort => HardeningConfig::predictable_ids()
                .randomize_txid(true)
                .randomize_source_port(true),
            DefenseLevel::Plus0x20 => HardeningConfig::full().enforce_bailiwick(false),
            DefenseLevel::PlusBailiwick => HardeningConfig::full(),
        }
    }

    /// Identifier entropy (bits) the attacker faces on the first raced
    /// query of a resolution and on every later ("warm-predictor") one.
    /// The first query always costs the full txid+port space because the
    /// attacker's sequential-id and port-repeat predictors have nothing
    /// to extrapolate from yet.
    fn leg_entropy_bits(self, case_bits: u8) -> (u8, u8) {
        let warm = self.hardening().identifier_entropy_bits(case_bits);
        let first = 32u8.saturating_add(if self.hardening().encode_0x20 {
            case_bits
        } else {
            0
        });
        (first, warm)
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct PoisonCell {
    /// Defense configuration of the victim resolver.
    pub defense: DefenseLevel,
    /// Forged packets the attacker races per observed query.
    pub attempts: u32,
    /// Independent trials run.
    pub trials: u64,
    /// Trials in which the attacker ended up controlling ≥ 1/2 of the
    /// resolved pool.
    pub captured: u64,
    /// `captured / trials`.
    pub measured: f64,
    /// The analytical prediction for one trial (three raced legs).
    pub analytic: f64,
}

/// Raced upstream legs of one pool resolution (root → org → ntpns).
const RACED_LEGS: u32 = 3;

/// The analytical probability that the attacker captures one resolution:
/// it wins if any raced leg accepts a forgery, with the first leg at full
/// identifier entropy and the rest against warm predictors.
pub fn analytic_trial_probability(defense: DefenseLevel, attempts: u32, case_bits: u8) -> f64 {
    let (first, warm) = defense.leg_entropy_bits(case_bits);
    let p = |bits: u8| {
        SpoofStrategy::GuessIdentifiers {
            attempts,
            entropy_bits: bits,
        }
        .success_probability()
    };
    1.0 - (1.0 - p(first)) * (1.0 - p(warm)).powi(RACED_LEGS as i32 - 1)
}

fn poison_trial(defense: DefenseLevel, attempts: u32, seed: u64) -> bool {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: 1,
        ntp_servers: 8,
        isp_hardening: defense.hardening(),
        ..ScenarioConfig::default()
    });
    let adversary = scenario.kaminsky_adversary(attempts, KaminskyPayload::DirectAnswer);
    scenario.net.set_adversary(adversary);

    let stub = StubResolver::new(ISP_RESOLVER);
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let pool = stub
        .lookup_ipv4(&mut exchanger, &scenario.pool_domain)
        .unwrap_or_default();
    attacker_controls_fraction(
        &address_pool(&pool, "isp-resolver"),
        &scenario.ground_truth(),
        0.5,
    )
}

/// Runs one sweep cell: `trials` independent scenarios.
pub fn run_cell(defense: DefenseLevel, attempts: u32, trials: u64, seed: u64) -> PoisonCell {
    let mut captured = 0u64;
    for trial in 0..trials {
        if poison_trial(defense, attempts, seed + trial) {
            captured += 1;
        }
    }
    let case_bits = "pool.ntpns.org"
        .parse::<Name>()
        .expect("valid name")
        .case_entropy_bits();
    PoisonCell {
        defense,
        attempts,
        trials,
        captured,
        measured: captured as f64 / trials.max(1) as f64,
        analytic: analytic_trial_probability(defense, attempts, case_bits),
    }
}

/// Runs the full sweep and tabulates it.
pub fn run_sweep(attempts_sweep: &[u32], trials: u64, seed: u64) -> (Table, Vec<PoisonCell>) {
    let mut table = Table::new(
        "E14: off-path poisoning success vs. resolver defenses (Kaminsky birthday attacker)",
        &[
            "defenses",
            "forged packets / query",
            "measured capture rate",
            "analytic (3 raced legs)",
        ],
    );
    let mut cells = Vec::new();
    for (d, &defense) in DefenseLevel::ALL.iter().enumerate() {
        for (a, &attempts) in attempts_sweep.iter().enumerate() {
            let cell = run_cell(
                defense,
                attempts,
                trials,
                seed + (d as u64 * 100 + a as u64) * 10_000,
            );
            table.push_row([
                defense.label().to_string(),
                attempts.to_string(),
                fmt_probability(cell.measured),
                fmt_probability(cell.analytic),
            ]);
            cells.push(cell);
        }
    }
    (table, cells)
}

/// One row of the end-to-end capture punchline.
#[derive(Debug, Clone)]
pub struct CaptureCell {
    /// Which pipeline synchronized the clock.
    pub pipeline: &'static str,
    /// Size of the NTP pool the client obtained (0 = lookup failed).
    pub pool_size: usize,
    /// Whether the x ≥ 1/2 guarantee held for that pool.
    pub guarantee_holds: bool,
    /// Whether the attacker controls ≥ 1/2 of it.
    pub captured: bool,
    /// `LocalClock::offset_from_true` after one synchronization.
    pub clock_error: f64,
    /// Whether the synchronization completed at all.
    pub synced: bool,
}

fn capture_scenario(isp_hardening: HardeningConfig, shift: f64, seed: u64) -> Scenario {
    let mut scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: 3,
        ntp_servers: 16,
        attacker_time_shift: shift,
        isp_hardening,
        ..ScenarioConfig::default()
    });
    scenario.install_ntp_fleet(NtpFleetConfig::default());
    scenario.install_kaminsky_authority();
    scenario
}

fn run_capture_cell(
    pipeline: &'static str,
    scenario: &Scenario,
    use_consensus: bool,
    seed: u64,
) -> CaptureCell {
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let mut clock = LocalClock::new(scenario.net.clock(), 0.0);
    let chronos = ChronosClient::new(
        ChronosConfig::default(),
        NtpClient::new(CLIENT_ADDR.with_port(123)),
        seed,
    )
    .expect("default chronos config is valid");
    let mut client = if use_consensus {
        SecureTimeClient::new(
            Box::new(ConsensusFrontEnd::new(
                scenario
                    .install_caching_frontend(PoolConfig::algorithm1(), CacheConfig::default())
                    .expect("valid cache config"),
            )),
            scenario.pool_domain.clone(),
            chronos,
        )
    } else {
        SecureTimeClient::new(
            Box::new(SingleResolverPool::new(ISP_RESOLVER)),
            scenario.pool_domain.clone(),
            chronos,
        )
    };
    let outcome = client.sync(&scenario.net, &mut exchanger, &mut clock);
    let pool = client.pool().to_vec();
    let truth = scenario.ground_truth();
    let check = check_guarantee(&address_pool(&pool, pipeline), &truth, 0.5);
    CaptureCell {
        pipeline,
        pool_size: pool.len(),
        guarantee_holds: check.holds,
        captured: attacker_controls_fraction(&address_pool(&pool, pipeline), &truth, 0.5),
        clock_error: clock.offset_from_true(),
        synced: outcome.is_ok(),
    }
}

/// Runs the three punchline pipelines under the same birthday attacker
/// (forged referrals, a modest 16-packet budget — enough to own the weak
/// resolver, hopeless against randomized identifiers).
pub fn run_capture(shift: f64, seed: u64) -> (Table, Vec<CaptureCell>) {
    let mut cells = Vec::new();

    let weak = capture_scenario(HardeningConfig::predictable_ids(), shift, seed);
    weak.net
        .set_adversary(weak.kaminsky_adversary(16, KaminskyPayload::Referral));
    cells.push(run_capture_cell(
        "weak ISP resolver / single-resolver pool",
        &weak,
        false,
        seed,
    ));

    let hardened = capture_scenario(HardeningConfig::full(), shift, seed + 1);
    hardened
        .net
        .set_adversary(hardened.kaminsky_adversary(16, KaminskyPayload::Referral));
    cells.push(run_capture_cell(
        "hardened ISP resolver / single-resolver pool",
        &hardened,
        false,
        seed + 1,
    ));

    let consensus = capture_scenario(HardeningConfig::predictable_ids(), shift, seed + 2);
    consensus
        .net
        .set_adversary(consensus.kaminsky_adversary(16, KaminskyPayload::Referral));
    cells.push(run_capture_cell(
        "DoH consensus front end (cached)",
        &consensus,
        true,
        seed + 2,
    ));

    let mut table = Table::new(
        format!("E14: end-to-end capture under the birthday attacker ({shift} s shift)"),
        &[
            "pipeline",
            "pool size",
            "guarantee",
            "captured",
            "clock error (s)",
            "synced",
        ],
    );
    for cell in &cells {
        table.push_row([
            cell.pipeline.to_string(),
            cell.pool_size.to_string(),
            if cell.guarantee_holds {
                "holds"
            } else {
                "violated"
            }
            .to_string(),
            cell.captured.to_string(),
            format!("{:+.3}", cell.clock_error),
            cell.synced.to_string(),
        ]);
    }
    (table, cells)
}

/// The forgery budgets of the full experiment.
pub fn full_attempts() -> Vec<u32> {
    vec![1, 256, 6_554, 65_536]
}

/// The reduced sweep the CI smoke run exercises.
pub fn smoke_attempts() -> Vec<u32> {
    vec![1, 65_536]
}

/// Serializes sweep and punchline as the repo's `BENCH_*.json` shape.
pub fn to_json(
    sweep: &[PoisonCell],
    capture: &[CaptureCell],
    recorded: &str,
    notes: &str,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"offpath_poisoning\",\n");
    out.push_str(&format!("  \"recorded\": \"{recorded}\",\n"));
    out.push_str(&format!("  \"notes\": \"{notes}\",\n"));
    out.push_str("  \"sweep\": [\n");
    for (i, cell) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"defenses\": \"{}\",\n      \"attempts\": {},\n      \
             \"trials\": {},\n      \"captured\": {},\n      \"measured\": {:.6},\n      \
             \"analytic\": {:.6}\n    }}{}\n",
            cell.defense.label(),
            cell.attempts,
            cell.trials,
            cell.captured,
            cell.measured,
            cell.analytic,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"capture\": [\n");
    for (i, cell) in capture.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"pipeline\": \"{}\",\n      \"pool_size\": {},\n      \
             \"guarantee_holds\": {},\n      \"captured\": {},\n      \
             \"clock_error_s\": {:.4},\n      \"synced\": {}\n    }}{}\n",
            cell.pipeline,
            cell.pool_size,
            cell.guarantee_holds,
            cell.captured,
            cell.clock_error,
            cell.synced,
            if i + 1 == capture.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_defenses_means_certain_capture() {
        let cell = run_cell(DefenseLevel::NoDefenses, 1, 4, 900);
        assert_eq!(cell.measured, 1.0, "warm predictors leave zero entropy");
        assert!(cell.analytic > 0.99);
    }

    #[test]
    fn identifier_randomization_suppresses_small_budgets() {
        // One forged packet against ≥ 16 bits practically never lands.
        for defense in [
            DefenseLevel::RandomTxid,
            DefenseLevel::RandomTxidPort,
            DefenseLevel::Plus0x20,
            DefenseLevel::PlusBailiwick,
        ] {
            let cell = run_cell(defense, 1, 4, 910);
            assert_eq!(cell.measured, 0.0, "{defense:?}");
            assert!(cell.analytic < 1e-3, "{defense:?}: {}", cell.analytic);
        }
    }

    #[test]
    fn txid_only_matches_the_birthday_analytic_at_scale() {
        // 65536 packets vs 16 bits: the analytic trial probability is
        // ~0.86; the measured rate over 40 trials must land nearby.
        let cell = run_cell(DefenseLevel::RandomTxid, 65_536, 40, 920);
        assert!(
            (cell.measured - cell.analytic).abs() < 0.25,
            "measured {} vs analytic {}",
            cell.measured,
            cell.analytic
        );
        // The same budget is hopeless once ports are randomized too.
        let ports = run_cell(DefenseLevel::RandomTxidPort, 65_536, 10, 930);
        assert_eq!(ports.measured, 0.0);
        assert!(ports.analytic < 1e-3);
    }

    #[test]
    fn capture_punchline_matches_the_acceptance_criterion() {
        let (_, cells) = run_capture(1000.0, 940);
        let weak = &cells[0];
        assert!(weak.captured, "weak pipeline pool is attacker-controlled");
        assert!(!weak.guarantee_holds);
        assert!(
            weak.clock_error >= 500.0,
            "the clock is shifted: {}",
            weak.clock_error
        );

        let hardened = &cells[1];
        assert!(!hardened.captured);
        assert!(
            !hardened.synced || hardened.clock_error.abs() < 1.0,
            "hardened: at worst a DoS, never a capture ({})",
            hardened.clock_error
        );

        let consensus = &cells[2];
        assert!(consensus.synced);
        assert!(consensus.guarantee_holds);
        assert!(!consensus.captured);
        assert!(
            consensus.clock_error.abs() < 1.0,
            "consensus clock stays honest: {}",
            consensus.clock_error
        );
    }

    #[test]
    fn tables_and_json_cover_both_parts() {
        let (table, sweep) = run_sweep(&[1], 2, 950);
        assert_eq!(table.len(), DefenseLevel::ALL.len());
        let (capture_table, capture) = run_capture(500.0, 960);
        assert_eq!(capture_table.len(), 3);
        let json = to_json(&sweep, &capture, "test", "smoke");
        assert!(json.contains("\"benchmark\": \"offpath_poisoning\""));
        assert!(json.contains("\"defenses\": \"+ bailiwick\""));
        assert!(json.contains("\"pipeline\": \"DoH consensus front end (cached)\""));
    }
}
