//! E7 — footnote 2, the other side: truncation "comes at the cost of
//! allowing DoS attacks when the attacker includes no responses at all".

use sdoh_analysis::Table;
use sdoh_core::{attacker_controls_fraction, PoolConfig};
use sdoh_dns_server::ClientExchanger;
use secure_doh::scenario::{ResolverCompromise, Scenario, ScenarioConfig, CLIENT_ADDR};

/// Sweeps the number of resolvers answering with an empty record set and
/// reports the resulting pool size (availability) and whether the attacker
/// gains any share of the pool (integrity).
pub fn run(resolver_counts: &[usize], seed: u64) -> Table {
    let mut table = Table::new(
        "E7: empty-answer DoS — pool size and integrity",
        &[
            "N resolvers",
            "resolvers answering empty",
            "pool slots",
            "lookup usable",
            "attacker gains pool share",
        ],
    );
    for &n in resolver_counts {
        for empty in 0..=n.min(3) {
            let (slots, captured) = simulate(n, empty, seed + (n * 10 + empty) as u64);
            table.push_row([
                n.to_string(),
                empty.to_string(),
                slots.to_string(),
                (slots > 0).to_string(),
                captured.to_string(),
            ]);
        }
    }
    table
}

fn simulate(n: usize, empty: usize, seed: u64) -> (usize, bool) {
    let compromised = (0..empty)
        .map(|i| (i, ResolverCompromise::EmptyAnswer))
        .collect();
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        resolvers: n,
        ntp_servers: 8,
        compromised,
        ..ScenarioConfig::default()
    });
    let mut exchanger = ClientExchanger::new(&scenario.net, CLIENT_ADDR);
    let report = scenario
        .pool_generator(PoolConfig::algorithm1())
        .expect("generator")
        .generate(&mut exchanger, &scenario.pool_domain)
        .expect("generation");
    let captured = attacker_controls_fraction(&report.pool, &scenario.ground_truth(), 0.5);
    (report.pool.len(), captured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_empty_answer_empties_the_pool_but_never_captures_it() {
        let (slots, captured) = simulate(3, 1, 1);
        assert_eq!(slots, 0, "footnote 2: the DoS succeeds");
        assert!(!captured, "but the attacker gains nothing");
        let (slots, captured) = simulate(3, 0, 2);
        assert_eq!(slots, 24);
        assert!(!captured);
    }

    #[test]
    fn table_shape() {
        let table = run(&[3], 5);
        assert_eq!(table.len(), 4);
    }
}
