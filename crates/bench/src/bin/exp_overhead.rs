//! E8: pool-generation overhead vs. number of resolvers.
fn main() {
    println!(
        "{}",
        sdoh_bench::overhead::run(&[1, 2, 3, 4, 5, 8, 12, 16], 13)
    );
}
