//! E6: answer-inflation attack vs. the truncation defence (footnote 2).
fn main() {
    println!("{}", sdoh_bench::truncation::run(&[2, 4, 8, 16, 32], 3));
}
