//! E10: dual-stack (A/AAAA) policies (footnote 1).
fn main() {
    println!("{}", sdoh_bench::dualstack::run());
}
