//! E5: achieved clock shift with and without secure pool generation.
fn main() {
    println!("{}", sdoh_bench::chronos_timeshift::run(1000.0, 5));
}
