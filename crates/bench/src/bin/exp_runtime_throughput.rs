//! E12: real-socket serving throughput of the threaded runtime over
//! loopback UDP, multi-shard vs single-shard.
//!
//! Usage: `exp_runtime_throughput [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced-scale configuration CI uses (fast, still
//! exercising every shard count); `--out` writes the measured sweep as a
//! `BENCH_runtime_throughput.json`-shaped file.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (shard_counts, clients, queries_per_client): (&[usize], usize, usize) = if smoke {
        (&[1, 4], 4, 50)
    } else {
        (&[1, 2, 4, 8], 8, 400)
    };
    let (table, rows) =
        sdoh_bench::runtime_throughput::run(shard_counts, clients, queries_per_client, 12);
    println!("{table}");

    if let Some(path) = out {
        let notes = format!(
            "E12 sweep at {} clients x {} queries over 16 domains ({}); host wall-clock \
             numbers from the recording machine.",
            clients,
            queries_per_client,
            if smoke { "smoke scale" } else { "full scale" }
        );
        let json = sdoh_bench::runtime_throughput::to_json(&rows, &today(), &notes);
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}

/// Date stamp for the JSON record; overridable for reproducible output.
fn today() -> String {
    std::env::var("BENCH_RECORDED_DATE").unwrap_or_else(|_| "unrecorded".to_string())
}
