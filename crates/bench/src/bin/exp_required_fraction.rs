//! E2: required fraction of compromised resolvers (Section III-a).
fn main() {
    println!(
        "{}",
        sdoh_bench::required_fraction::run(&[3, 5, 7, 15], 4, 0.5)
    );
}
