//! E7: the empty-answer DoS cost of truncation (footnote 2).
fn main() {
    println!("{}", sdoh_bench::empty_answer::run(&[3, 5, 7], 9));
}
