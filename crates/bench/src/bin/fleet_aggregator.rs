//! Fleet aggregator: scrape N runtime stats listeners and print one
//! fleet-wide rollup.
//!
//! Usage: `fleet-aggregator [--timeout-ms N] ADDR [ADDR ...]`
//!
//! Each `ADDR` is a stats listener (`host:port`, the address given to
//! `RuntimeConfig::stats_bind`). The aggregator probes `/healthz` and
//! scrapes `/metrics` from every instance, then prints a commented
//! per-instance health table followed by the merged Prometheus
//! exposition: counters summed, histograms bucket-merged, gauges
//! averaged. Unreachable instances show up in the health table; they
//! never abort the rollup. Exits non-zero only on usage errors, so a
//! partially-down fleet still yields a report.

use std::net::SocketAddr;
use std::time::Duration;

use sdoh_metrics::scrape_fleet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut timeout = Duration::from_secs(2);
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout-ms" => {
                let Some(value) = args.get(i + 1) else {
                    return usage("--timeout-ms needs a value");
                };
                let Ok(ms) = value.parse::<u64>() else {
                    return usage("--timeout-ms value must be an integer");
                };
                timeout = Duration::from_millis(ms);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("usage: fleet-aggregator [--timeout-ms N] ADDR [ADDR ...]");
                return;
            }
            other => {
                let Ok(addr) = other.parse::<SocketAddr>() else {
                    return usage(&format!("not a host:port address: {other}"));
                };
                addrs.push(addr);
                i += 1;
            }
        }
    }
    if addrs.is_empty() {
        return usage("no instance addresses given");
    }

    let rollup = scrape_fleet(&addrs, timeout);
    print!("{}", rollup.render());
}

fn usage(error: &str) {
    eprintln!("fleet-aggregator: {error}");
    eprintln!("usage: fleet-aggregator [--timeout-ms N] ADDR [ADDR ...]");
    std::process::exit(2);
}
