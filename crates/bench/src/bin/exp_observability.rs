//! E17: fleet observability reconciliation — exported metrics vs the
//! clients' exact ground truth, across a multi-instance loopback fleet.
//!
//! Usage: `exp_observability [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced-scale configuration CI uses; `--out`
//! writes the reconciliation as a `BENCH_observability.json`-shaped
//! file. The run *asserts* the reconciliation (exact counter equality,
//! p99 within one bucket, every instance healthy) and aborts on any
//! mismatch.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (instances, shards, clients, queries_per_client) =
        if smoke { (2, 2, 3, 25) } else { (3, 4, 6, 200) };
    let (table, report) =
        sdoh_bench::observability::run(instances, shards, clients, queries_per_client, 17);
    println!("{table}");

    if let Some(path) = out {
        let notes = format!(
            "E17 fleet of {} instances x {} shards under {} clients x {} queries each ({}); \
             counters reconcile exactly with client sends, p99 within {} bucket(s) of the \
             exact value. Latency recording costs {:.0} ns/query = {:.2}% of the serving \
             path at the observed warm rate (direct measurement; the A/B q/s delta of \
             {:+.1}% is run-to-run noise on a shared host).",
            instances,
            shards,
            clients,
            queries_per_client,
            if smoke { "smoke scale" } else { "full scale" },
            report.p99_bucket_distance,
            report.record_cost_ns,
            report.overhead_percent,
            report.ab_delta_percent
        );
        let json = sdoh_bench::observability::to_json(&report, &today(), &notes);
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}

/// Date stamp for the JSON record; overridable for reproducible output.
fn today() -> String {
    std::env::var("BENCH_RECORDED_DATE").unwrap_or_else(|_| "unrecorded".to_string())
}
