//! E11: cached vs uncached pool serving under client-population load.
//!
//! Usage: `exp_cache_serving [--smoke]` — `--smoke` runs the reduced
//! scale CI's experiment-smoke job uses.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, rounds): (&[usize], usize) = if smoke {
        (&[25], 2)
    } else {
        (&[25, 50, 100, 200], 4)
    };
    println!("{}", sdoh_bench::cache_serving::run(clients, rounds, 11));
}
