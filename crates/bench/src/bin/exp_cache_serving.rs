//! E11: cached vs uncached pool serving under client-population load.
fn main() {
    println!(
        "{}",
        sdoh_bench::cache_serving::run(&[25, 50, 100, 200], 4, 11)
    );
}
