//! E18: hot reconfiguration blackout window — a loopback runtime under
//! client load takes a config delta, a 4 -> 8 shard grow and an 8 -> 4
//! shrink, and the worst in-flight latency of each transition is
//! reconstructed from the clients' timestamps.
//!
//! Usage: `exp_reconfig [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced-scale configuration CI uses; `--out`
//! writes the measurement as a `BENCH_reconfig.json`-shaped file. The
//! run *asserts* the claims (zero dropped queries, three observable
//! epochs, widest blackout within one stats interval) and aborts on any
//! violation.

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (clients, settle) = if smoke {
        (3, Duration::from_millis(250))
    } else {
        (6, Duration::from_millis(600))
    };
    let (table, report) = sdoh_bench::reconfig::run(clients, settle, 18);
    println!("{table}");

    if let Some(path) = out {
        let notes = format!(
            "E18 blackout window under {} clients with {} ms steady load around each \
             transition ({}); {} queries, {} dropped, final epoch {}. Widest in-flight \
             latency across apply + grow + shrink: {:.0} us against a {:.0} ms \
             (one stats interval) budget; steady-state p99 {:.0} us.",
            report.clients,
            settle.as_millis(),
            if smoke { "smoke scale" } else { "full scale" },
            report.queries_sent,
            report.dropped_queries,
            report.final_epoch,
            report.widest_blackout_us,
            report.stats_interval_ms,
            report.baseline_p99_us
        );
        let json = sdoh_bench::reconfig::to_json(&report, &today(), &notes);
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}

/// Date stamp for the JSON record; overridable for reproducible output.
fn today() -> String {
    std::env::var("BENCH_RECORDED_DATE").unwrap_or_else(|_| "unrecorded".to_string())
}
