//! E14: off-path poisoning of the Do53 leg — defense gradient × forgery
//! budget, plus the end-to-end capture punchline.
//!
//! Usage: `exp_offpath_poisoning [--smoke] [--out PATH]`
//!
//! `--smoke` runs the reduced sweep (two forgery budgets, fewer trials)
//! as CI's experiment-smoke job does; `--out` writes both parts as a
//! `BENCH_offpath_poisoning.json`-shaped file.

use sdoh_bench::offpath_poisoning;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (attempts, trials) = if smoke {
        (offpath_poisoning::smoke_attempts(), 10)
    } else {
        (offpath_poisoning::full_attempts(), 60)
    };
    let (sweep_table, sweep) = offpath_poisoning::run_sweep(&attempts, trials, 14);
    println!("{sweep_table}");

    let shift = 1000.0;
    let (capture_table, capture) = offpath_poisoning::run_capture(shift, 14);
    println!("{capture_table}");

    if let Some(path) = out {
        let notes = format!(
            "E14: Kaminsky-style birthday attacker racing forged responses against the \
             recursive resolver's plain Do53 upstream legs. Sweep: defense gradient (none / \
             random TXID / +random port / +0x20 / +bailiwick) x forged packets per query, \
             {trials} trials per cell, measured capture rate vs. the analytical birthday \
             probability over 3 raced legs. Capture: the same attacker (16-packet referral \
             forgeries, {shift} s attacker time servers) against the weak single-resolver \
             pipeline, the hardened one, and the cached DoH-consensus front end — pool \
             guarantee (x = 1/2) and LocalClock::offset_from_true after one sync. Reproduce \
             with: cargo run --release -p sdoh-bench --bin exp_offpath_poisoning -- --out \
             BENCH_offpath_poisoning.json"
        );
        let json = offpath_poisoning::to_json(&sweep, &capture, &today(), &notes);
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}

/// Date stamp for the JSON record; overridable for reproducible output.
fn today() -> String {
    std::env::var("BENCH_RECORDED_DATE").unwrap_or_else(|_| "unrecorded".to_string())
}
