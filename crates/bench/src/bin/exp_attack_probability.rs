//! E3: attack success probability (Section III-b).
fn main() {
    for table in sdoh_bench::attack_probability::run(20_000, 7) {
        println!("{table}");
    }
}
