//! E1: regenerate the Figure 1 end-to-end flow.
fn main() {
    for table in sdoh_bench::fig1::run(42) {
        println!("{table}");
    }
}
