//! E4: off-path DNS attack against plain vs. distributed DoH pool generation.
fn main() {
    println!(
        "{}",
        sdoh_bench::offpath::run(&[0.1, 0.25, 0.5, 0.75, 1.0], 40, 11)
    );
}
