//! E13: end-to-end secure time synchronization under the attack matrix.
//!
//! Usage: `exp_time_sync [--smoke] [--out PATH]`
//!
//! `--smoke` runs only the headline attack case (one compromised resolver
//! plus the Do53 off-path spoofer) as CI's experiment-smoke job does;
//! `--out` writes the matrix as a `BENCH_time_sync.json`-shaped file.

use sdoh_bench::time_sync;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let attacks = if smoke {
        time_sync::smoke_matrix()
    } else {
        time_sync::full_matrix()
    };
    let shift = 1000.0;
    let (table, cells) = time_sync::run(&attacks, shift, 13);
    println!("{table}");

    if let Some(path) = out {
        let notes = format!(
            "E13: adversary (compromised DoH resolvers x off-path Do53 spoofer) x client \
             (plain SNTP, full-pool NTP, Chronos via SecureTimeClient) x pool source (single \
             resolver, distributed consensus, cached consensus front end), {} s attacker time \
             servers, one synchronization per cell ({}). Every cell's pool is checked against \
             ground truth (check_guarantee, x = 1/2) and the clock error is \
             LocalClock::offset_from_true after the sync. Reproduce with: cargo run --release \
             -p sdoh-bench --bin exp_time_sync -- --out BENCH_time_sync.json",
            shift,
            if smoke { "smoke scale" } else { "full matrix" }
        );
        let json = time_sync::to_json(&cells, &today(), &notes);
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }
}

/// Date stamp for the JSON record; overridable for reproducible output.
fn today() -> String {
    std::env::var("BENCH_RECORDED_DATE").unwrap_or_else(|_| "unrecorded".to_string())
}
