//! E9: Algorithm 1 vs. the majority-vote resolver mode.
fn main() {
    println!("{}", sdoh_bench::majority::run(3, 17));
    println!("{}", sdoh_bench::majority::run(5, 19));
}
