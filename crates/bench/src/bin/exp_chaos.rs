//! E15: deterministic chaos campaigns (`sdoh-chaos`) over the serve +
//! timesync stack.
//!
//! Usage: `exp_chaos [--smoke] [--seed N] [--out PATH]`
//!
//! Runs the mixed-adversary campaign against the hardened stack and the
//! weak baseline over the same seeded fault schedule, re-runs the
//! hardened campaign as a determinism self-check, and writes
//! `BENCH_chaos.json` when `--out` is given. Exits non-zero — printing
//! the reproduction seed — when the hardened campaign records any
//! invariant violation or the determinism check fails; weak-baseline
//! violations are the expected detection result, not a failure.

use sdoh_bench::chaos;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let steps = if smoke {
        chaos::SMOKE_STEPS
    } else {
        chaos::FULL_STEPS
    };
    let (table, outcome) = chaos::run(seed, steps);
    println!("{table}");

    let mut failed = false;
    if !outcome.deterministic {
        eprintln!(
            "chaos: determinism self-check FAILED — two runs of seed {seed} diverged; \
             reproduce with: cargo run --release -p sdoh-bench --bin exp_chaos -- --seed {seed}"
        );
        failed = true;
    }
    if outcome.hardened.total_violations > 0 {
        eprintln!(
            "chaos: hardened campaign recorded {} invariant violation(s); reproduce with: \
             cargo run --release -p sdoh-bench --bin exp_chaos -- --seed {seed}{}",
            outcome.hardened.total_violations,
            if smoke { " --smoke" } else { "" }
        );
        for violation in &outcome.hardened.violations {
            eprintln!(
                "  step {:06} {}: {}",
                violation.step, violation.invariant, violation.detail
            );
        }
        failed = true;
    }
    if outcome.weak.ready {
        eprintln!(
            "chaos: weak baseline finished clean — the monitor detected nothing, which \
             means the campaign is no longer adversarial; reproduce with seed {seed}"
        );
        failed = true;
    }

    if let Some(path) = out {
        let notes = format!(
            "E15: mixed-adversary chaos campaigns (loss/duplication/reordering/latency, \
             resolver partitions, churn and inflation-compromise, clock steps, time jumps, \
             drift, persistent off-path spoofer at {} attempts) over {} one-second steps, \
             seed {}. Hardened stack = full off-path defenses + caching consensus front \
             end + SecureTimeClient/Chronos; weak baseline = predictable-id ISP resolver \
             + single-resolver pool. Invariants checked every step: pool guarantee \
             (x = 1/2), post-sync clock offset, serve/net counter monotonicity, cache-age \
             horizon, workload accounting. Reproduce with: cargo run --release -p \
             sdoh-bench --bin exp_chaos -- --seed {} --out BENCH_chaos.json",
            chaos::SPOOFER_ATTEMPTS,
            steps,
            seed,
            seed
        );
        let json = chaos::to_json(&outcome, &today(), &notes);
        std::fs::write(&path, json).expect("write BENCH json");
        println!("wrote {path}");
    }

    if failed {
        std::process::exit(1);
    }
}

/// Date stamp for the JSON record; overridable for reproducible output.
fn today() -> String {
    std::env::var("BENCH_RECORDED_DATE").unwrap_or_else(|_| "unrecorded".to_string())
}
