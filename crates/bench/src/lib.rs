//! Experiment harness regenerating every figure and quantitative claim of
//! *"Secure Consensus Generation with Distributed DoH"*.
//!
//! Each module in [`experiments`] corresponds to one row of the experiment
//! index in `DESIGN.md` (E1–E10) and returns [`sdoh_analysis::Table`]s that
//! the `exp_*` binaries print as markdown; `EXPERIMENTS.md` records the
//! resulting numbers next to the paper's claims.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::*;
