//! Adversary models.
//!
//! The paper's threat model distinguishes attackers by *where* they sit and
//! *what* they can therefore do:
//!
//! * **off-path** attackers (e.g. the DNS cache-poisoning attacker of
//!   Jeitner et al.) cannot observe traffic; they race forged responses
//!   against genuine ones and must guess identifiers — abstractly via a
//!   configured probability ([`OffPathSpoofer`]) or concretely by sweeping
//!   transaction-id/port guesses ([`BirthdaySpoofer`]),
//! * **on-path / MitM** attackers control some links and can read, modify,
//!   replace or drop plaintext traffic crossing them, but cannot forge
//!   traffic on authenticated (secure) channels,
//! * **compromised resolvers** answer queries with attacker-chosen data;
//!   they are modelled at the resolver-service level, not here.
//!
//! An [`Adversary`] is attached to the [`SimNet`](crate::SimNet) and gets to
//! see every transaction in flight.

mod birthday;
mod offpath;
mod onpath;

pub use birthday::{BirthdaySpoofer, BirthdayStats, InspectFn, ObservedIdentifiers};
pub use offpath::{ForgeFn, OffPathSpoofer, SpoofStrategy};
pub use onpath::OnPathMitm;

use crate::addr::SimAddr;
use crate::channel::ChannelKind;
use crate::rng::SimRng;

/// A request or response payload in flight, as seen by an adversary.
#[derive(Debug, Clone, Copy)]
pub struct Envelope<'a> {
    /// Source endpoint.
    pub src: SimAddr,
    /// Destination endpoint.
    pub dst: SimAddr,
    /// Channel security property.
    pub channel: ChannelKind,
    /// Payload bytes. For secure channels an on-path adversary would only
    /// see ciphertext; the simulator still passes the plaintext but the
    /// verdict enforcement rejects tampering verdicts on secure channels.
    pub payload: &'a [u8],
}

/// What the adversary does with a request in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestVerdict {
    /// Let the request through unchanged.
    Deliver,
    /// Drop the request; the requester observes a timeout.
    Drop,
    /// Answer the request with forged bytes; the genuine destination never
    /// sees it (models a spoofed response winning the race).
    Forge(Vec<u8>),
}

/// What the adversary does with a genuine response in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseVerdict {
    /// Let the response through unchanged.
    Deliver,
    /// Drop the response; the requester observes a timeout.
    Drop,
    /// Substitute the response payload (on-path modification).
    Replace(Vec<u8>),
}

/// A network adversary observing and manipulating traffic.
///
/// The default implementations let everything through, so an implementor
/// only overrides the hooks relevant to its position in the network.
pub trait Adversary {
    /// Called for every request before it reaches its destination.
    fn on_request(&mut self, envelope: &Envelope<'_>, rng: &mut SimRng) -> RequestVerdict {
        let _ = (envelope, rng);
        RequestVerdict::Deliver
    }

    /// Called for every genuine response before it returns to the requester.
    /// `request` is the payload that elicited this response.
    fn on_response(
        &mut self,
        envelope: &Envelope<'_>,
        request: &[u8],
        rng: &mut SimRng,
    ) -> ResponseVerdict {
        let _ = (envelope, request, rng);
        ResponseVerdict::Deliver
    }

    /// Human-readable name used in diagnostics.
    fn name(&self) -> &str {
        "adversary"
    }
}

/// An adversary that never interferes; attaching it is equivalent to having
/// no adversary at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveObserver {
    requests_seen: u64,
    responses_seen: u64,
}

impl PassiveObserver {
    /// Creates a passive observer.
    pub fn new() -> Self {
        PassiveObserver::default()
    }

    /// Number of requests observed so far.
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    /// Number of responses observed so far.
    pub fn responses_seen(&self) -> u64 {
        self.responses_seen
    }
}

impl Adversary for PassiveObserver {
    fn on_request(&mut self, _envelope: &Envelope<'_>, _rng: &mut SimRng) -> RequestVerdict {
        self.requests_seen += 1;
        RequestVerdict::Deliver
    }

    fn on_response(
        &mut self,
        _envelope: &Envelope<'_>,
        _request: &[u8],
        _rng: &mut SimRng,
    ) -> ResponseVerdict {
        self.responses_seen += 1;
        ResponseVerdict::Deliver
    }

    fn name(&self) -> &str {
        "passive-observer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_deliver() {
        struct Nop;
        impl Adversary for Nop {}
        let mut nop = Nop;
        let mut rng = SimRng::seed_from_u64(1);
        let env = Envelope {
            src: SimAddr::v4(10, 0, 0, 1, 1000),
            dst: SimAddr::v4(10, 0, 0, 2, 53),
            channel: ChannelKind::Plain,
            payload: b"query",
        };
        assert_eq!(nop.on_request(&env, &mut rng), RequestVerdict::Deliver);
        assert_eq!(
            nop.on_response(&env, b"query", &mut rng),
            ResponseVerdict::Deliver
        );
        assert_eq!(nop.name(), "adversary");
    }

    #[test]
    fn passive_observer_counts() {
        let mut obs = PassiveObserver::new();
        let mut rng = SimRng::seed_from_u64(2);
        let env = Envelope {
            src: SimAddr::v4(10, 0, 0, 1, 1000),
            dst: SimAddr::v4(10, 0, 0, 2, 53),
            channel: ChannelKind::Secure,
            payload: &[],
        };
        for _ in 0..3 {
            obs.on_request(&env, &mut rng);
        }
        obs.on_response(&env, &[], &mut rng);
        assert_eq!(obs.requests_seen(), 3);
        assert_eq!(obs.responses_seen(), 1);
    }
}
