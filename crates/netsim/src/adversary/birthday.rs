//! The Kaminsky-style birthday adversary: races forged responses against
//! in-flight plain-channel requests, sweeping transaction-id and
//! source-port guesses.
//!
//! Where [`OffPathSpoofer`](super::OffPathSpoofer) abstracts the whole race
//! into one configured probability, `BirthdaySpoofer` derives the success
//! probability of each race from the **identifiers the victim actually
//! used**:
//!
//! * **transaction id** — the attacker runs a sequential predictor (next =
//!   last observed + 1, the classic weak-resolver id allocation). A victim
//!   drawing sequential ids is predicted exactly; a victim drawing random
//!   ids costs the attacker 16 bits per guess.
//! * **source port** — the attacker predicts a repeat of the last port it
//!   observed from that host. A victim querying from a fixed service port
//!   is predicted; ephemeral random ports cost another 16 bits.
//! * **extra in-payload entropy** — identifier bits the forger cannot copy
//!   from context, e.g. DNS 0x20 mixed-case query encoding, reported by
//!   the caller-supplied inspection closure.
//!
//! With the per-race entropy established, the attacker's `attempts` forged
//! packets win with probability `1 - (1 - 2^-bits)^attempts` — exactly
//! [`SpoofStrategy::GuessIdentifiers`]'s model — and a win delivers the
//! forged payload built by the caller-supplied forging closure (which, as
//! the winning guess, echoes the genuine identifiers).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;
use std::rc::Rc;

use crate::addr::SimAddr;
use crate::channel::ChannelKind;
use crate::rng::SimRng;

use super::offpath::ForgeFn;
use super::{Adversary, Envelope, RequestVerdict, SpoofStrategy};

/// What the attacker's inspection of one observed request payload yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedIdentifiers {
    /// The in-payload transaction identifier (the DNS TXID).
    pub txid: u16,
    /// Additional identifier bits the forger must guess because it cannot
    /// derive them from context (e.g. 0x20 mixed-case bits); `0` when the
    /// payload carries none.
    pub extra_entropy_bits: u8,
}

/// Callback extracting the guessable identifiers from a request payload.
/// Returning `None` marks the request as uninteresting (not a query for
/// the attacked domain).
pub type InspectFn = Box<dyn FnMut(&[u8]) -> Option<ObservedIdentifiers>>;

/// Counters describing the races a [`BirthdaySpoofer`] ran, shared with
/// the experiment via [`BirthdaySpoofer::stats_handle`] (the adversary
/// itself is moved into the network on attachment).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BirthdayStats {
    /// Requests the attacker raced (interesting, plain-channel, on-target).
    pub raced: u64,
    /// Races won: a guess matched and the forged response was delivered.
    pub wins: u64,
    /// Total forged packets sent (`raced × attempts`).
    pub forged_packets: u64,
    /// How many races were run at each entropy level (bits → count):
    /// the attacker's own view of the victim's identifier hygiene.
    pub entropy_histogram: BTreeMap<u8, u64>,
}

impl BirthdayStats {
    /// The empirical win rate over all races (0 when none were run).
    pub fn win_rate(&self) -> f64 {
        if self.raced == 0 {
            0.0
        } else {
            self.wins as f64 / self.raced as f64
        }
    }

    /// The lowest entropy (in bits) any race was run at — the weakest
    /// moment the victim exposed.
    pub fn min_entropy_bits(&self) -> Option<u8> {
        self.entropy_histogram.keys().next().copied()
    }
}

/// An off-path attacker racing forged responses with guessed identifiers
/// against plain-channel requests to a set of victim destinations.
pub struct BirthdaySpoofer {
    attempts: u32,
    targets: Option<Vec<SimAddr>>,
    inspect: InspectFn,
    forge: ForgeFn,
    txid_seen: HashMap<IpAddr, u16>,
    port_seen: HashMap<IpAddr, u16>,
    stats: Rc<RefCell<BirthdayStats>>,
}

impl BirthdaySpoofer {
    /// Creates a birthday attacker sending `attempts` forged responses per
    /// raced request. `inspect` extracts the guessable identifiers from a
    /// request payload (and filters interesting requests); `forge` builds
    /// the poisoned response delivered when a guess wins.
    pub fn new<I, F>(attempts: u32, inspect: I, forge: F) -> Self
    where
        I: FnMut(&[u8]) -> Option<ObservedIdentifiers> + 'static,
        F: FnMut(&[u8], &mut SimRng) -> Option<Vec<u8>> + 'static,
    {
        BirthdaySpoofer {
            attempts,
            targets: None,
            inspect: Box::new(inspect),
            forge: Box::new(forge),
            txid_seen: HashMap::new(),
            port_seen: HashMap::new(),
            stats: Rc::new(RefCell::new(BirthdayStats::default())),
        }
    }

    /// Restricts the attack to requests addressed to the given victim
    /// destinations (e.g. the authoritative servers a resolver queries).
    pub fn with_targets(mut self, targets: Vec<SimAddr>) -> Self {
        self.targets = Some(targets);
        self
    }

    /// A handle onto the race counters that stays readable after the
    /// adversary has been moved into the network.
    pub fn stats_handle(&self) -> Rc<RefCell<BirthdayStats>> {
        Rc::clone(&self.stats)
    }

    /// Forged packets raced per observed request.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    fn is_target(&self, dst: SimAddr) -> bool {
        match &self.targets {
            None => true,
            Some(targets) => targets.contains(&dst),
        }
    }

    /// The identifier entropy (bits) of one observed request, updating the
    /// per-host predictors as a side effect.
    fn race_entropy(&mut self, src: SimAddr, observed: ObservedIdentifiers) -> u8 {
        let txid_predicted = self
            .txid_seen
            .insert(src.ip, observed.txid)
            .map(|last| last.wrapping_add(1) == observed.txid)
            .unwrap_or(false);
        let port_predicted = self
            .port_seen
            .insert(src.ip, src.port)
            .map(|last| last == src.port)
            .unwrap_or(false);
        let mut bits = u16::from(observed.extra_entropy_bits);
        if !txid_predicted {
            bits += 16;
        }
        if !port_predicted {
            bits += 16;
        }
        u8::try_from(bits.min(255)).unwrap_or(u8::MAX)
    }
}

impl std::fmt::Debug for BirthdaySpoofer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BirthdaySpoofer")
            .field("attempts", &self.attempts)
            .field("targets", &self.targets)
            .field("stats", &*self.stats.borrow())
            .finish()
    }
}

impl Adversary for BirthdaySpoofer {
    fn on_request(&mut self, envelope: &Envelope<'_>, rng: &mut SimRng) -> RequestVerdict {
        // Off-path attackers cannot forge into authenticated channels.
        if envelope.channel != ChannelKind::Plain || !self.is_target(envelope.dst) {
            return RequestVerdict::Deliver;
        }
        let observed = match (self.inspect)(envelope.payload) {
            Some(observed) => observed,
            None => return RequestVerdict::Deliver,
        };
        let bits = self.race_entropy(envelope.src, observed);
        {
            let mut stats = self.stats.borrow_mut();
            stats.raced += 1;
            stats.forged_packets += u64::from(self.attempts);
            *stats.entropy_histogram.entry(bits).or_insert(0) += 1;
        }
        let strategy = SpoofStrategy::GuessIdentifiers {
            attempts: self.attempts,
            entropy_bits: bits,
        };
        if !rng.chance(strategy.success_probability()) {
            return RequestVerdict::Deliver;
        }
        match (self.forge)(envelope.payload, rng) {
            Some(forged) => {
                self.stats.borrow_mut().wins += 1;
                RequestVerdict::Forge(forged)
            }
            None => RequestVerdict::Deliver,
        }
    }

    fn name(&self) -> &str {
        "birthday-spoofer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inspection closure for a toy protocol: payload = [txid_hi, txid_lo,
    /// extra_bits].
    fn toy_inspect() -> impl FnMut(&[u8]) -> Option<ObservedIdentifiers> {
        |payload: &[u8]| {
            if payload.len() < 3 {
                return None;
            }
            Some(ObservedIdentifiers {
                txid: u16::from_be_bytes([payload[0], payload[1]]),
                extra_entropy_bits: payload[2],
            })
        }
    }

    fn envelope(src: SimAddr, dst: SimAddr, payload: &[u8]) -> Envelope<'_> {
        Envelope {
            src,
            dst,
            channel: ChannelKind::Plain,
            payload,
        }
    }

    fn query(txid: u16, extra: u8) -> Vec<u8> {
        let mut q = txid.to_be_bytes().to_vec();
        q.push(extra);
        q
    }

    #[test]
    fn sequential_txids_and_fixed_ports_are_predicted() {
        let mut spoofer =
            BirthdaySpoofer::new(1, toy_inspect(), |_q, _rng| Some(b"forged".to_vec()));
        let stats = spoofer.stats_handle();
        let mut rng = SimRng::seed_from_u64(1);
        let victim = SimAddr::v4(10, 0, 0, 53, 53);
        let dst = SimAddr::v4(198, 41, 0, 4, 53);

        // First observation: nothing predicted yet — 32 bits.
        let v = spoofer.on_request(&envelope(victim, dst, &query(100, 0)), &mut rng);
        assert_eq!(
            v,
            RequestVerdict::Deliver,
            "2^-32 race practically never wins"
        );
        // Sequential follow-ups from the same fixed port: 0 bits, the
        // single forged packet always wins.
        for txid in 101..=103u16 {
            let v = spoofer.on_request(&envelope(victim, dst, &query(txid, 0)), &mut rng);
            assert_eq!(v, RequestVerdict::Forge(b"forged".to_vec()), "txid {txid}");
        }
        let stats = stats.borrow();
        assert_eq!(stats.raced, 4);
        assert_eq!(stats.wins, 3);
        assert_eq!(stats.forged_packets, 4);
        assert_eq!(stats.entropy_histogram.get(&32), Some(&1));
        assert_eq!(stats.entropy_histogram.get(&0), Some(&3));
        assert_eq!(stats.min_entropy_bits(), Some(0));
        assert_eq!(stats.win_rate(), 0.75);
    }

    #[test]
    fn random_identifiers_defeat_small_attempt_budgets() {
        let mut spoofer =
            BirthdaySpoofer::new(16, toy_inspect(), |_q, _rng| Some(b"forged".to_vec()));
        let stats = spoofer.stats_handle();
        let mut rng = SimRng::seed_from_u64(2);
        let mut id_rng = SimRng::seed_from_u64(77);
        let victim_ip = SimAddr::v4(10, 0, 0, 53, 0);
        let dst = SimAddr::v4(198, 41, 0, 4, 53);
        for _ in 0..200 {
            let src = victim_ip.with_port(1024 + id_rng.gen_u16() % 64512);
            let payload = query(id_rng.gen_u16(), 0);
            let v = spoofer.on_request(&envelope(src, dst, &payload), &mut rng);
            assert_eq!(v, RequestVerdict::Deliver);
        }
        let stats = stats.borrow();
        assert_eq!(stats.raced, 200);
        assert_eq!(stats.wins, 0);
        // Accidental predictor hits (txid last+1 or port repeat) are ~2^-16
        // per race; every race should have been scored at full entropy.
        assert_eq!(stats.entropy_histogram.get(&32), Some(&200));
    }

    #[test]
    fn extra_payload_entropy_raises_the_bar() {
        let mut spoofer =
            BirthdaySpoofer::new(1, toy_inspect(), |_q, _rng| Some(b"forged".to_vec()));
        let stats = spoofer.stats_handle();
        let mut rng = SimRng::seed_from_u64(3);
        let victim = SimAddr::v4(10, 0, 0, 53, 53);
        let dst = SimAddr::v4(198, 41, 0, 4, 53);
        spoofer.on_request(&envelope(victim, dst, &query(10, 12)), &mut rng);
        spoofer.on_request(&envelope(victim, dst, &query(11, 12)), &mut rng);
        let stats = stats.borrow();
        // First race: 16+16+12; second: predictors hit, 0x20 bits remain.
        assert_eq!(stats.entropy_histogram.get(&44), Some(&1));
        assert_eq!(stats.entropy_histogram.get(&12), Some(&1));
    }

    #[test]
    fn entropy_saturates_instead_of_overflowing() {
        let mut spoofer = BirthdaySpoofer::new(1, toy_inspect(), |_q, _rng| None);
        let mut rng = SimRng::seed_from_u64(4);
        let victim = SimAddr::v4(10, 0, 0, 53, 53);
        let dst = SimAddr::v4(198, 41, 0, 4, 53);
        spoofer.on_request(&envelope(victim, dst, &query(1, 255)), &mut rng);
        assert_eq!(
            spoofer.stats_handle().borrow().min_entropy_bits(),
            Some(255)
        );
    }

    #[test]
    fn secure_channels_and_off_target_requests_are_ignored() {
        let victim = SimAddr::v4(10, 0, 0, 53, 53);
        let target = SimAddr::v4(198, 41, 0, 4, 53);
        let other = SimAddr::v4(9, 9, 9, 9, 53);
        let mut spoofer =
            BirthdaySpoofer::new(1, toy_inspect(), |_q, _rng| Some(b"forged".to_vec()))
                .with_targets(vec![target]);
        let stats = spoofer.stats_handle();
        let mut rng = SimRng::seed_from_u64(5);

        let secure = Envelope {
            src: victim,
            dst: target,
            channel: ChannelKind::Secure,
            payload: &query(1, 0),
        };
        assert_eq!(
            spoofer.on_request(&secure, &mut rng),
            RequestVerdict::Deliver
        );
        assert_eq!(
            spoofer.on_request(&envelope(victim, other, &query(2, 0)), &mut rng),
            RequestVerdict::Deliver
        );
        // Uninteresting payloads (inspect returns None) are not raced.
        assert_eq!(
            spoofer.on_request(&envelope(victim, target, b"xx"), &mut rng),
            RequestVerdict::Deliver
        );
        assert_eq!(stats.borrow().raced, 0);
        assert_eq!(spoofer.name(), "birthday-spoofer");
        assert!(!format!("{spoofer:?}").is_empty());
    }
}
