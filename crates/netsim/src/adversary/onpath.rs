//! On-path (man-in-the-middle) adversary controlling a subset of links.

use std::collections::HashSet;
use std::net::IpAddr;

use crate::rng::SimRng;

use super::{Adversary, Envelope, RequestVerdict, ResponseVerdict};

/// Callback rewriting a response given the request and genuine response.
pub type RewriteFn = Box<dyn FnMut(&[u8], &[u8], &mut SimRng) -> Option<Vec<u8>>>;

/// A man-in-the-middle attacker that controls the paths to a set of hosts.
///
/// On controlled paths the attacker can replace plaintext responses and drop
/// traffic; on authenticated (secure) channels it can only drop. This is the
/// "realistic on-path MitM attacker that controls some (but not all) of the
/// Internet paths" from the paper's conclusion.
pub struct OnPathMitm {
    controlled_hosts: HashSet<IpAddr>,
    drop_probability: f64,
    drop_secure: bool,
    replace: Option<RewriteFn>,
    observed_requests: u64,
    replaced_responses: u64,
    dropped: u64,
}

impl OnPathMitm {
    /// Creates an attacker controlling the paths towards `hosts`.
    pub fn controlling<I: IntoIterator<Item = IpAddr>>(hosts: I) -> Self {
        OnPathMitm {
            controlled_hosts: hosts.into_iter().collect(),
            drop_probability: 0.0,
            drop_secure: false,
            replace: None,
            observed_requests: 0,
            replaced_responses: 0,
            dropped: 0,
        }
    }

    /// Sets a closure that rewrites plaintext responses on controlled paths.
    ///
    /// The closure receives `(request, genuine_response)` and returns the
    /// replacement payload, or `None` to leave the response alone.
    pub fn with_response_rewriter<F>(mut self, rewriter: F) -> Self
    where
        F: FnMut(&[u8], &[u8], &mut SimRng) -> Option<Vec<u8>> + 'static,
    {
        self.replace = Some(Box::new(rewriter));
        self
    }

    /// Drops traffic on controlled paths with the given probability
    /// (applies to plain channels, and to secure channels only when
    /// [`OnPathMitm::dropping_secure`] was enabled).
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Also drop secure-channel traffic (denial of service on DoH); a MitM
    /// can always cut a connection even when it cannot read it.
    pub fn dropping_secure(mut self) -> Self {
        self.drop_secure = true;
        self
    }

    /// Number of requests observed on controlled paths.
    pub fn observed_requests(&self) -> u64 {
        self.observed_requests
    }

    /// Number of responses replaced so far.
    pub fn replaced_responses(&self) -> u64 {
        self.replaced_responses
    }

    /// Number of payloads dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn controls_path(&self, envelope: &Envelope<'_>) -> bool {
        self.controlled_hosts.contains(&envelope.dst.ip)
            || self.controlled_hosts.contains(&envelope.src.ip)
    }
}

impl std::fmt::Debug for OnPathMitm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnPathMitm")
            .field("controlled_hosts", &self.controlled_hosts)
            .field("drop_probability", &self.drop_probability)
            .field("drop_secure", &self.drop_secure)
            .field("observed_requests", &self.observed_requests)
            .field("replaced_responses", &self.replaced_responses)
            .finish()
    }
}

impl Adversary for OnPathMitm {
    fn on_request(&mut self, envelope: &Envelope<'_>, rng: &mut SimRng) -> RequestVerdict {
        if !self.controls_path(envelope) {
            return RequestVerdict::Deliver;
        }
        self.observed_requests += 1;
        let may_drop = envelope.channel.is_forgeable() || self.drop_secure;
        if may_drop && rng.chance(self.drop_probability) {
            self.dropped += 1;
            return RequestVerdict::Drop;
        }
        RequestVerdict::Deliver
    }

    fn on_response(
        &mut self,
        envelope: &Envelope<'_>,
        request: &[u8],
        rng: &mut SimRng,
    ) -> ResponseVerdict {
        if !self.controls_path(envelope) {
            return ResponseVerdict::Deliver;
        }
        // Integrity protection: secure channels cannot be rewritten.
        if !envelope.channel.is_forgeable() {
            if self.drop_secure && rng.chance(self.drop_probability) {
                self.dropped += 1;
                return ResponseVerdict::Drop;
            }
            return ResponseVerdict::Deliver;
        }
        if let Some(rewriter) = self.replace.as_mut() {
            if let Some(replacement) = rewriter(request, envelope.payload, rng) {
                self.replaced_responses += 1;
                return ResponseVerdict::Replace(replacement);
            }
        }
        ResponseVerdict::Deliver
    }

    fn name(&self) -> &str {
        "on-path-mitm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SimAddr;
    use crate::channel::ChannelKind;

    fn env(channel: ChannelKind, dst: SimAddr) -> Envelope<'static> {
        Envelope {
            src: SimAddr::v4(10, 0, 0, 1, 5000),
            dst,
            channel,
            payload: b"response",
        }
    }

    #[test]
    fn rewrites_plain_responses_on_controlled_path() {
        let victim = SimAddr::v4(8, 8, 8, 8, 53);
        let mut mitm = OnPathMitm::controlling([victim.ip])
            .with_response_rewriter(|_req, _resp, _rng| Some(b"evil".to_vec()));
        let mut rng = SimRng::seed_from_u64(1);
        let verdict = mitm.on_response(&env(ChannelKind::Plain, victim), b"req", &mut rng);
        assert_eq!(verdict, ResponseVerdict::Replace(b"evil".to_vec()));
        assert_eq!(mitm.replaced_responses(), 1);
    }

    #[test]
    fn cannot_rewrite_secure_responses() {
        let victim = SimAddr::v4(8, 8, 8, 8, 443);
        let mut mitm = OnPathMitm::controlling([victim.ip])
            .with_response_rewriter(|_req, _resp, _rng| Some(b"evil".to_vec()));
        let mut rng = SimRng::seed_from_u64(2);
        let verdict = mitm.on_response(&env(ChannelKind::Secure, victim), b"req", &mut rng);
        assert_eq!(verdict, ResponseVerdict::Deliver);
        assert_eq!(mitm.replaced_responses(), 0);
    }

    #[test]
    fn uncontrolled_paths_untouched() {
        let victim = SimAddr::v4(8, 8, 8, 8, 53);
        let other = SimAddr::v4(9, 9, 9, 9, 53);
        let mut mitm = OnPathMitm::controlling([victim.ip])
            .with_response_rewriter(|_req, _resp, _rng| Some(b"evil".to_vec()))
            .with_drop_probability(1.0);
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(
            mitm.on_request(&env(ChannelKind::Plain, other), &mut rng),
            RequestVerdict::Deliver
        );
        assert_eq!(
            mitm.on_response(&env(ChannelKind::Plain, other), b"req", &mut rng),
            ResponseVerdict::Deliver
        );
        assert_eq!(mitm.observed_requests(), 0);
    }

    #[test]
    fn drops_plain_requests_when_configured() {
        let victim = SimAddr::v4(8, 8, 8, 8, 53);
        let mut mitm = OnPathMitm::controlling([victim.ip]).with_drop_probability(1.0);
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(
            mitm.on_request(&env(ChannelKind::Plain, victim), &mut rng),
            RequestVerdict::Drop
        );
        // Secure traffic passes unless dropping_secure() is enabled.
        assert_eq!(
            mitm.on_request(&env(ChannelKind::Secure, victim), &mut rng),
            RequestVerdict::Deliver
        );
        assert_eq!(mitm.dropped(), 1);
    }

    #[test]
    fn can_dos_secure_channels_when_enabled() {
        let victim = SimAddr::v4(8, 8, 8, 8, 443);
        let mut mitm = OnPathMitm::controlling([victim.ip])
            .with_drop_probability(1.0)
            .dropping_secure();
        let mut rng = SimRng::seed_from_u64(5);
        assert_eq!(
            mitm.on_request(&env(ChannelKind::Secure, victim), &mut rng),
            RequestVerdict::Drop
        );
        assert_eq!(
            mitm.on_response(&env(ChannelKind::Secure, victim), b"r", &mut rng),
            ResponseVerdict::Drop
        );
    }

    #[test]
    fn rewriter_can_decline() {
        let victim = SimAddr::v4(8, 8, 8, 8, 53);
        let mut mitm =
            OnPathMitm::controlling([victim.ip]).with_response_rewriter(|req, _resp, _rng| {
                if req == b"target" {
                    Some(b"evil".to_vec())
                } else {
                    None
                }
            });
        let mut rng = SimRng::seed_from_u64(6);
        assert_eq!(
            mitm.on_response(&env(ChannelKind::Plain, victim), b"other", &mut rng),
            ResponseVerdict::Deliver
        );
        assert!(matches!(
            mitm.on_response(&env(ChannelKind::Plain, victim), b"target", &mut rng),
            ResponseVerdict::Replace(_)
        ));
    }
}
