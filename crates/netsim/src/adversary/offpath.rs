//! Off-path spoofing adversary.
//!
//! Models the attacker of "The Impact of DNS Insecurity on Time" (Jeitner et
//! al., DSN 2020): it cannot observe traffic but injects forged responses to
//! plain-channel requests, hoping to beat the genuine response and to match
//! the identifiers the client checks (transaction id, source port).

use crate::addr::SimAddr;
use crate::channel::ChannelKind;
use crate::rng::SimRng;

use super::{Adversary, Envelope, RequestVerdict};

/// How the spoofing success of each attempt is decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpoofStrategy {
    /// Each targeted request is successfully spoofed with a fixed
    /// probability. This is the abstraction used throughout the paper's
    /// analysis (`p_attack`).
    FixedProbability(f64),
    /// The attacker sends `attempts` forged responses with uniformly guessed
    /// identifiers; the client accepts one if any guess matches. With
    /// `entropy_bits` bits of identifier entropy (16 for the DNS transaction
    /// id alone, up to 32 when source ports are randomised), the per-request
    /// success probability is `1 - (1 - 2^-entropy)^attempts`.
    GuessIdentifiers {
        /// Number of forged responses raced against the genuine one.
        attempts: u32,
        /// Bits of entropy the attacker must guess.
        entropy_bits: u8,
    },
}

impl SpoofStrategy {
    /// The per-request success probability implied by this strategy.
    pub fn success_probability(&self) -> f64 {
        match *self {
            SpoofStrategy::FixedProbability(p) => p.clamp(0.0, 1.0),
            SpoofStrategy::GuessIdentifiers {
                attempts,
                entropy_bits,
            } => {
                let space = 2f64.powi(i32::from(entropy_bits));
                // `powi` takes an i32: casting a large `attempts` would wrap
                // negative and turn the miss probability into a reciprocal.
                // `powf` handles the whole u32 range exactly.
                1.0 - (1.0 - 1.0 / space).powf(f64::from(attempts))
            }
        }
    }
}

/// Callback forging a response from observed query bytes.
pub type ForgeFn = Box<dyn FnMut(&[u8], &mut SimRng) -> Option<Vec<u8>>>;

/// An off-path attacker targeting plain-channel requests to a set of victim
/// destinations.
///
/// The forged payload is produced by a caller-supplied closure so that this
/// crate stays protocol-agnostic: the DNS layer supplies a closure that
/// parses the query and builds a matching, poisoned response.
pub struct OffPathSpoofer {
    strategy: SpoofStrategy,
    targets: Option<Vec<SimAddr>>,
    forge: ForgeFn,
    attempts: u64,
    successes: u64,
}

impl OffPathSpoofer {
    /// Creates a spoofer with the given strategy and forging closure.
    ///
    /// The closure receives the request payload (a modelling convenience:
    /// real off-path attackers know the query name from context, not from
    /// observation) and returns the forged response payload, or `None` when
    /// this request is of no interest (e.g. not a DNS query for the target
    /// domain).
    pub fn new<F>(strategy: SpoofStrategy, forge: F) -> Self
    where
        F: FnMut(&[u8], &mut SimRng) -> Option<Vec<u8>> + 'static,
    {
        OffPathSpoofer {
            strategy,
            targets: None,
            forge: Box::new(forge),
            attempts: 0,
            successes: 0,
        }
    }

    /// Restricts the attack to requests addressed to the given destinations.
    pub fn with_targets(mut self, targets: Vec<SimAddr>) -> Self {
        self.targets = Some(targets);
        self
    }

    /// Number of requests the spoofer attempted to attack.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Number of requests for which a forged response was delivered.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    fn is_target(&self, dst: SimAddr) -> bool {
        match &self.targets {
            None => true,
            Some(targets) => targets.contains(&dst),
        }
    }
}

impl std::fmt::Debug for OffPathSpoofer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffPathSpoofer")
            .field("strategy", &self.strategy)
            .field("targets", &self.targets)
            .field("attempts", &self.attempts)
            .field("successes", &self.successes)
            .finish()
    }
}

impl Adversary for OffPathSpoofer {
    fn on_request(&mut self, envelope: &Envelope<'_>, rng: &mut SimRng) -> RequestVerdict {
        // Off-path attackers cannot break into authenticated channels.
        if envelope.channel != ChannelKind::Plain || !self.is_target(envelope.dst) {
            return RequestVerdict::Deliver;
        }
        self.attempts += 1;
        if !rng.chance(self.strategy.success_probability()) {
            return RequestVerdict::Deliver;
        }
        match (self.forge)(envelope.payload, rng) {
            Some(forged) => {
                self.successes += 1;
                RequestVerdict::Forge(forged)
            }
            None => RequestVerdict::Deliver,
        }
    }

    fn name(&self) -> &str {
        "off-path-spoofer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(channel: ChannelKind, dst: SimAddr, payload: &[u8]) -> Envelope<'_> {
        Envelope {
            src: SimAddr::v4(192, 0, 2, 10, 40000),
            dst,
            channel,
            payload,
        }
    }

    #[test]
    fn fixed_probability_bounds() {
        assert_eq!(
            SpoofStrategy::FixedProbability(0.4).success_probability(),
            0.4
        );
        assert_eq!(
            SpoofStrategy::FixedProbability(4.0).success_probability(),
            1.0
        );
        assert_eq!(
            SpoofStrategy::FixedProbability(-1.0).success_probability(),
            0.0
        );
    }

    #[test]
    fn guessing_probability_matches_formula() {
        let strategy = SpoofStrategy::GuessIdentifiers {
            attempts: 1,
            entropy_bits: 16,
        };
        assert!((strategy.success_probability() - 1.0 / 65536.0).abs() < 1e-9);

        let many = SpoofStrategy::GuessIdentifiers {
            attempts: 65536,
            entropy_bits: 16,
        };
        // 1 - (1 - 2^-16)^65536 ~= 1 - 1/e
        assert!((many.success_probability() - (1.0 - (-1.0f64).exp())).abs() < 1e-3);
    }

    #[test]
    fn huge_attempt_counts_stay_a_probability() {
        // Regression: `attempts as i32` wrapped negative past i32::MAX,
        // turning the exponent into a reciprocal and the "probability"
        // negative.
        let boundary = SpoofStrategy::GuessIdentifiers {
            attempts: i32::MAX as u32,
            entropy_bits: 32,
        };
        let beyond = SpoofStrategy::GuessIdentifiers {
            attempts: i32::MAX as u32 + 1,
            entropy_bits: 32,
        };
        let maxed = SpoofStrategy::GuessIdentifiers {
            attempts: u32::MAX,
            entropy_bits: 32,
        };
        for strategy in [boundary, beyond, maxed] {
            let p = strategy.success_probability();
            assert!(
                (0.0..=1.0).contains(&p),
                "{strategy:?} produced probability {p}"
            );
        }
        // More attempts can only help: the probability is monotone across
        // the old wrap-around boundary.
        assert!(beyond.success_probability() >= boundary.success_probability());
        assert!(maxed.success_probability() >= beyond.success_probability());
        // 2^32 guesses of a 32-bit identifier land at ~1 - 1/e.
        assert!((maxed.success_probability() - (1.0 - (-1.0f64).exp())).abs() < 1e-3);
    }

    #[test]
    fn always_successful_spoofer_forges_plain_traffic() {
        let mut spoofer = OffPathSpoofer::new(SpoofStrategy::FixedProbability(1.0), |_q, _rng| {
            Some(b"forged".to_vec())
        });
        let mut rng = SimRng::seed_from_u64(1);
        let dst = SimAddr::v4(8, 8, 8, 8, 53);
        let verdict = spoofer.on_request(&envelope(ChannelKind::Plain, dst, b"query"), &mut rng);
        assert_eq!(verdict, RequestVerdict::Forge(b"forged".to_vec()));
        assert_eq!(spoofer.attempts(), 1);
        assert_eq!(spoofer.successes(), 1);
    }

    #[test]
    fn secure_channel_is_untouched() {
        let mut spoofer = OffPathSpoofer::new(SpoofStrategy::FixedProbability(1.0), |_q, _rng| {
            Some(b"forged".to_vec())
        });
        let mut rng = SimRng::seed_from_u64(2);
        let dst = SimAddr::v4(8, 8, 8, 8, 443);
        let verdict = spoofer.on_request(&envelope(ChannelKind::Secure, dst, b"query"), &mut rng);
        assert_eq!(verdict, RequestVerdict::Deliver);
        assert_eq!(spoofer.attempts(), 0);
    }

    #[test]
    fn zero_probability_never_succeeds() {
        let mut spoofer = OffPathSpoofer::new(SpoofStrategy::FixedProbability(0.0), |_q, _rng| {
            Some(b"forged".to_vec())
        });
        let mut rng = SimRng::seed_from_u64(3);
        let dst = SimAddr::v4(9, 9, 9, 9, 53);
        for _ in 0..100 {
            let verdict =
                spoofer.on_request(&envelope(ChannelKind::Plain, dst, b"query"), &mut rng);
            assert_eq!(verdict, RequestVerdict::Deliver);
        }
        assert_eq!(spoofer.successes(), 0);
        assert_eq!(spoofer.attempts(), 100);
    }

    #[test]
    fn target_filter_limits_scope() {
        let victim = SimAddr::v4(1, 1, 1, 1, 53);
        let other = SimAddr::v4(2, 2, 2, 2, 53);
        let mut spoofer = OffPathSpoofer::new(SpoofStrategy::FixedProbability(1.0), |_q, _rng| {
            Some(b"forged".to_vec())
        })
        .with_targets(vec![victim]);
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(
            spoofer.on_request(&envelope(ChannelKind::Plain, other, b"q"), &mut rng),
            RequestVerdict::Deliver
        );
        assert!(matches!(
            spoofer.on_request(&envelope(ChannelKind::Plain, victim, b"q"), &mut rng),
            RequestVerdict::Forge(_)
        ));
    }

    #[test]
    fn forge_closure_can_decline() {
        let mut spoofer = OffPathSpoofer::new(SpoofStrategy::FixedProbability(1.0), |q, _rng| {
            if q.starts_with(b"interesting") {
                Some(b"forged".to_vec())
            } else {
                None
            }
        });
        let mut rng = SimRng::seed_from_u64(5);
        let dst = SimAddr::v4(1, 1, 1, 1, 53);
        assert_eq!(
            spoofer.on_request(&envelope(ChannelKind::Plain, dst, b"boring"), &mut rng),
            RequestVerdict::Deliver
        );
        assert!(matches!(
            spoofer.on_request(
                &envelope(ChannelKind::Plain, dst, b"interesting query"),
                &mut rng
            ),
            RequestVerdict::Forge(_)
        ));
        assert_eq!(spoofer.successes(), 1);
    }
}
