//! Channel kinds: what an adversary can do to traffic in flight.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Security property of the channel a payload travels over.
///
/// The distinction captures the paper's core assumption: plain DNS (Do53)
/// answers can be spoofed or modified by off-path and on-path attackers,
/// while DoH answers travel over authenticated HTTPS channels that such
/// attackers can at most drop or delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Unauthenticated datagram traffic (classic DNS over UDP, NTP).
    ///
    /// Adversaries may observe, forge, replace and drop payloads.
    Plain,
    /// Authenticated, integrity-protected stream traffic (DoH over HTTPS).
    ///
    /// Adversaries may only drop or delay payloads; forging or modifying
    /// them is detected by the secure-channel layer.
    Secure,
}

impl ChannelKind {
    /// Returns `true` if an in-path or off-path adversary can alter the
    /// payload without detection.
    pub fn is_forgeable(self) -> bool {
        matches!(self, ChannelKind::Plain)
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelKind::Plain => write!(f, "plain"),
            ChannelKind::Secure => write!(f, "secure"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forgeability() {
        assert!(ChannelKind::Plain.is_forgeable());
        assert!(!ChannelKind::Secure.is_forgeable());
    }

    #[test]
    fn display() {
        assert_eq!(ChannelKind::Plain.to_string(), "plain");
        assert_eq!(ChannelKind::Secure.to_string(), "secure");
    }
}
