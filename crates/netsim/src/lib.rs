//! Deterministic network simulator for the *Secure Consensus Generation
//! with Distributed DoH* reproduction.
//!
//! The simulator provides:
//!
//! * a virtual clock ([`SimClock`]) so that experiments are reproducible and
//!   independent of the host machine,
//! * addressable [`Service`]s reachable through synchronous request/response
//!   transactions with configurable per-link latency, jitter, loss and
//!   partitions ([`SimNet`], [`LinkConfig`]),
//! * the paper's channel dichotomy ([`ChannelKind::Plain`] vs
//!   [`ChannelKind::Secure`]): plain traffic can be forged and rewritten,
//!   secure traffic can only be dropped or delayed,
//! * adversary models ([`OffPathSpoofer`], [`OnPathMitm`]) that plug into
//!   the network and manipulate traffic in flight,
//! * deterministic randomness ([`SimRng`]) and traffic/attack [`Metrics`].
//!
//! The DNS, DoH, NTP and pool-generation crates all run on top of this
//! substrate; nothing in the workspace touches a real network.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addr;
pub mod adversary;
mod channel;
mod link;
mod load;
mod metrics;
mod network;
mod rng;
mod service;
mod time;

pub use addr::{ports, ParseSimAddrError, SimAddr};
pub use adversary::{
    Adversary, BirthdaySpoofer, BirthdayStats, Envelope, ObservedIdentifiers, OffPathSpoofer,
    OnPathMitm, PassiveObserver, RequestVerdict, ResponseVerdict, SpoofStrategy,
};
pub use channel::ChannelKind;
pub use link::LinkConfig;
pub use load::{ClientPopulation, LoadDriver, LoadStats};
pub use metrics::Metrics;
pub use network::{ConcurrentOutcome, ConcurrentRequest, Ctx, NetError, NetResult, SimNet};
pub use rng::SimRng;
pub use service::{FnService, Service, ServiceResponse, StaticService};
pub use time::{SimClock, SimInstant};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_value_types_are_debuggable() {
        let addr = SimAddr::v4(1, 2, 3, 4, 53);
        assert!(!format!("{addr:?}").is_empty());
        assert!(!format!("{:?}", LinkConfig::default()).is_empty());
        assert!(!format!("{:?}", Metrics::new()).is_empty());
        assert!(!format!("{:?}", SimNet::new(0)).is_empty());
    }
}
