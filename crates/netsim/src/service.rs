//! The service abstraction: protocol endpoints hosted on simulated nodes.

use crate::addr::SimAddr;
use crate::channel::ChannelKind;
use crate::network::Ctx;

/// Outcome of handling an incoming request payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceResponse {
    /// Reply with the given payload.
    Reply(Vec<u8>),
    /// Do not reply; the requester will observe a timeout.
    NoReply,
}

impl ServiceResponse {
    /// Returns the reply payload, if any.
    pub fn into_reply(self) -> Option<Vec<u8>> {
        match self {
            ServiceResponse::Reply(bytes) => Some(bytes),
            ServiceResponse::NoReply => None,
        }
    }
}

impl From<Vec<u8>> for ServiceResponse {
    fn from(bytes: Vec<u8>) -> Self {
        ServiceResponse::Reply(bytes)
    }
}

/// A protocol endpoint running at a [`SimAddr`].
///
/// Services receive request payloads and may issue nested requests through
/// the provided [`Ctx`] (e.g. a recursive resolver querying authoritative
/// servers while answering a stub query).
pub trait Service {
    /// Handles one request payload addressed to this service.
    fn handle(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
    ) -> ServiceResponse;

    /// Human-readable name used in diagnostics.
    fn name(&self) -> &str {
        "service"
    }
}

/// Adapter turning a closure into a [`Service`].
///
/// # Examples
///
/// ```
/// use sdoh_netsim::{FnService, Service, ServiceResponse};
///
/// let echo = FnService::new("echo", |_ctx, _from, _channel, payload: &[u8]| {
///     ServiceResponse::Reply(payload.to_vec())
/// });
/// assert_eq!(echo.name(), "echo");
/// ```
pub struct FnService<F> {
    name: String,
    handler: F,
}

impl<F> FnService<F>
where
    F: FnMut(&mut Ctx<'_>, SimAddr, ChannelKind, &[u8]) -> ServiceResponse,
{
    /// Creates a service from a name and a handler closure.
    pub fn new(name: impl Into<String>, handler: F) -> Self {
        FnService {
            name: name.into(),
            handler,
        }
    }
}

impl<F> Service for FnService<F>
where
    F: FnMut(&mut Ctx<'_>, SimAddr, ChannelKind, &[u8]) -> ServiceResponse,
{
    fn handle(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
    ) -> ServiceResponse {
        (self.handler)(ctx, from, channel, payload)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<F> std::fmt::Debug for FnService<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnService")
            .field("name", &self.name)
            .finish()
    }
}

/// A trivial service that always replies with a fixed payload, useful in
/// tests and as a stand-in for unresponsive or static endpoints.
#[derive(Debug, Clone)]
pub struct StaticService {
    reply: Option<Vec<u8>>,
}

impl StaticService {
    /// A service that always replies with `reply`.
    pub fn replying(reply: Vec<u8>) -> Self {
        StaticService { reply: Some(reply) }
    }

    /// A black-hole service that never replies.
    pub fn silent() -> Self {
        StaticService { reply: None }
    }
}

impl Service for StaticService {
    fn handle(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _from: SimAddr,
        _channel: ChannelKind,
        _payload: &[u8],
    ) -> ServiceResponse {
        match &self.reply {
            Some(bytes) => ServiceResponse::Reply(bytes.clone()),
            None => ServiceResponse::NoReply,
        }
    }

    fn name(&self) -> &str {
        "static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_response_conversions() {
        let r: ServiceResponse = vec![1, 2, 3].into();
        assert_eq!(r.into_reply(), Some(vec![1, 2, 3]));
        assert_eq!(ServiceResponse::NoReply.into_reply(), None);
    }

    #[test]
    fn static_service_modes() {
        let replying = StaticService::replying(b"hi".to_vec());
        let silent = StaticService::silent();
        assert_eq!(replying.name(), "static");
        assert!(replying.reply.is_some());
        assert!(silent.reply.is_none());
    }
}
