//! The simulated network: registration of services, transactions between
//! endpoints, latency/loss accounting and adversary enforcement.

use std::cell::RefCell;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::net::IpAddr;
use std::rc::Rc;
use std::time::Duration;

use crate::addr::SimAddr;
use crate::adversary::{Adversary, Envelope, RequestVerdict, ResponseVerdict};
use crate::channel::ChannelKind;
use crate::link::LinkConfig;
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::service::{Service, ServiceResponse};
use crate::time::{SimClock, SimInstant};

/// Maximum depth of nested transactions (e.g. stub → recursive → authoritative).
const MAX_DEPTH: usize = 32;

/// Errors a requester can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No response arrived within the timeout (loss, adversarial drop or a
    /// silent service).
    Timeout,
    /// No service is registered at the destination address.
    Unreachable(SimAddr),
    /// The destination is unreachable because the link is administratively
    /// blocked (partition).
    Partitioned,
    /// Nested transactions exceeded the depth limit (routing loop).
    TooDeep,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout => write!(f, "request timed out"),
            NetError::Unreachable(addr) => write!(f, "no service listening at {addr}"),
            NetError::Partitioned => write!(f, "link is blocked"),
            NetError::TooDeep => write!(f, "nested transaction depth limit exceeded"),
        }
    }
}

impl Error for NetError {}

/// Result alias for network transactions.
pub type NetResult<T> = Result<T, NetError>;

/// One request of a concurrent batch ([`SimNet::transact_concurrent`]).
#[derive(Debug, Clone)]
pub struct ConcurrentRequest {
    /// Destination endpoint.
    pub dst: SimAddr,
    /// Channel kind the request travels over.
    pub channel: ChannelKind,
    /// Request payload.
    pub payload: Vec<u8>,
    /// Per-exchange timeout.
    pub timeout: Duration,
}

impl ConcurrentRequest {
    /// Convenience constructor.
    pub fn new(dst: SimAddr, channel: ChannelKind, payload: Vec<u8>, timeout: Duration) -> Self {
        ConcurrentRequest {
            dst,
            channel,
            payload,
            timeout,
        }
    }
}

/// Outcome of one exchange of a concurrent batch, tagged with the index it
/// was submitted under and the virtual instant its response arrived (or its
/// timeout expired).
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Position of the request in the submitted batch.
    pub index: usize,
    /// Virtual time at which this exchange completed.
    pub completed_at: SimInstant,
    /// The response payload or transport error.
    pub result: NetResult<Vec<u8>>,
}

type SharedService = Rc<RefCell<dyn Service>>;

struct NetState {
    services: HashMap<SimAddr, SharedService>,
    links: HashMap<(IpAddr, IpAddr), LinkConfig>,
    default_link: LinkConfig,
    adversary: Option<Box<dyn Adversary>>,
    rng: SimRng,
    metrics: Metrics,
}

/// The simulated network.
///
/// A `SimNet` is deliberately single-threaded: all behaviour, including the
/// adversary, is driven deterministically from the seed, so experiment
/// results are reproducible bit for bit.
///
/// # Examples
///
/// ```
/// use sdoh_netsim::{ChannelKind, FnService, ServiceResponse, SimAddr, SimNet};
/// use std::time::Duration;
///
/// let net = SimNet::new(7);
/// let server = SimAddr::v4(192, 0, 2, 1, 53);
/// net.register(server, FnService::new("echo", |_ctx, _from, _ch, payload: &[u8]| {
///     ServiceResponse::Reply(payload.to_vec())
/// }));
///
/// let client = SimAddr::v4(198, 51, 100, 1, 40000);
/// let reply = net
///     .transact(client, server, ChannelKind::Plain, b"hello", Duration::from_secs(1))
///     .unwrap();
/// assert_eq!(reply, b"hello");
/// ```
pub struct SimNet {
    clock: SimClock,
    state: RefCell<NetState>,
}

impl SimNet {
    /// Creates a network with the given randomness seed.
    pub fn new(seed: u64) -> Self {
        SimNet {
            clock: SimClock::new(),
            state: RefCell::new(NetState {
                services: HashMap::new(),
                links: HashMap::new(),
                default_link: LinkConfig::default(),
                adversary: None,
                rng: SimRng::seed_from_u64(seed),
                metrics: Metrics::new(),
            }),
        }
    }

    /// A handle to the virtual clock shared by the whole simulation.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Sets the link configuration used when no per-pair entry exists.
    pub fn set_default_link(&self, config: LinkConfig) {
        self.state.borrow_mut().default_link = config;
    }

    /// Sets the (symmetric) link configuration between two hosts.
    pub fn set_link(&self, a: IpAddr, b: IpAddr, config: LinkConfig) {
        let mut state = self.state.borrow_mut();
        state.links.insert(order(a, b), config);
    }

    /// Registers a service at an address, replacing any previous registration.
    pub fn register<S: Service + 'static>(&self, addr: SimAddr, service: S) {
        self.state
            .borrow_mut()
            .services
            .insert(addr, Rc::new(RefCell::new(service)));
    }

    /// Removes the service at `addr`, if any; returns whether one existed.
    pub fn unregister(&self, addr: SimAddr) -> bool {
        self.state.borrow_mut().services.remove(&addr).is_some()
    }

    /// Returns `true` when a service is registered at `addr`.
    pub fn is_registered(&self, addr: SimAddr) -> bool {
        self.state.borrow().services.contains_key(&addr)
    }

    /// Attaches an adversary observing all traffic (replacing any previous one).
    pub fn set_adversary<A: Adversary + 'static>(&self, adversary: A) {
        self.state.borrow_mut().adversary = Some(Box::new(adversary));
    }

    /// Detaches the adversary, returning whether one was attached.
    pub fn clear_adversary(&self) -> bool {
        self.state.borrow_mut().adversary.take().is_some()
    }

    /// Snapshot of the traffic counters.
    pub fn metrics(&self) -> Metrics {
        self.state.borrow().metrics
    }

    /// Resets the traffic counters to zero.
    pub fn reset_metrics(&self) {
        self.state.borrow_mut().metrics = Metrics::new();
    }

    /// Draws a fresh random 16-bit identifier (e.g. DNS transaction id) from
    /// the simulation's deterministic randomness.
    pub fn random_id(&self) -> u16 {
        self.state.borrow_mut().rng.gen_u16()
    }

    /// Performs a request/response transaction from `src` to `dst`.
    ///
    /// The call is synchronous: the destination service runs immediately
    /// (possibly issuing nested transactions of its own) and virtual time is
    /// advanced by the sampled link delays.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unreachable`] when nothing listens at `dst`,
    /// [`NetError::Partitioned`] when the link is blocked, and
    /// [`NetError::Timeout`] for loss, adversarial drops, silent services or
    /// elapsed time exceeding `timeout`.
    pub fn transact(
        &self,
        src: SimAddr,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.transact_at_depth(src, dst, channel, payload, timeout, 0)
    }

    /// Performs a batch of transactions that all depart from `src` at the
    /// current instant and run **concurrently**: the batch's elapsed virtual
    /// time is the *maximum* of the individual exchanges, not their sum.
    ///
    /// Outcomes are returned in delivery order — sorted by each exchange's
    /// completion instant (ties broken by submission index). Which exchange
    /// finishes first depends on the sampled link delays, so the
    /// interleaving is deterministic in the simulation seed.
    ///
    /// **Caveat for clock-reading services:** the exchanges of a batch are
    /// executed one after another with the clock rewound to the departure
    /// instant between them. A service handling exchange *k* therefore sees
    /// the virtual time of *its own* request's arrival (departure plus its
    /// link delay) — correct for concurrent requests — but a single service
    /// handling several exchanges of one batch may observe those arrival
    /// instants out of order across invocations. Per-exchange timestamps
    /// remain self-consistent; cross-exchange monotonicity within a batch
    /// is not guaranteed (it isn't for real parallel requests either, but a
    /// service accumulating "last seen time" state would notice).
    pub fn transact_concurrent(
        &self,
        src: SimAddr,
        requests: Vec<ConcurrentRequest>,
    ) -> Vec<ConcurrentOutcome> {
        let requests = requests.into_iter().map(|r| (src, r)).collect();
        self.transact_concurrent_at_depth(requests, 0)
    }

    /// Like [`SimNet::transact_concurrent`], but each request departs from
    /// its own source address — a whole *population* of clients sending at
    /// the same instant. The batch's elapsed virtual time is the maximum of
    /// the individual exchanges; outcomes come back in delivery order. The
    /// clock caveat of [`SimNet::transact_concurrent`] applies: a single
    /// service handling several exchanges of one batch observes their
    /// arrival instants out of order across invocations.
    pub fn transact_concurrent_from(
        &self,
        requests: Vec<(SimAddr, ConcurrentRequest)>,
    ) -> Vec<ConcurrentOutcome> {
        self.transact_concurrent_at_depth(requests, 0)
    }

    fn transact_concurrent_at_depth(
        &self,
        requests: Vec<(SimAddr, ConcurrentRequest)>,
        depth: usize,
    ) -> Vec<ConcurrentOutcome> {
        let departed = self.clock.now();
        let mut outcomes: Vec<ConcurrentOutcome> = requests
            .into_iter()
            .enumerate()
            .map(|(index, (src, request))| {
                // Each in-flight exchange starts from the shared departure
                // instant; running them one at a time only serialises the
                // *randomness* draws, not the virtual time.
                self.clock.rewind_to(departed);
                let result = self.transact_at_depth(
                    src,
                    request.dst,
                    request.channel,
                    &request.payload,
                    request.timeout,
                    depth,
                );
                ConcurrentOutcome {
                    index,
                    completed_at: self.clock.now(),
                    result,
                }
            })
            .collect();
        let batch_end = outcomes
            .iter()
            .map(|o| o.completed_at)
            .max()
            .unwrap_or(departed);
        self.clock.advance_to(batch_end);
        outcomes.sort_by_key(|o| (o.completed_at, o.index));
        outcomes
    }

    fn link_for(&self, a: IpAddr, b: IpAddr) -> LinkConfig {
        let state = self.state.borrow();
        state
            .links
            .get(&order(a, b))
            .copied()
            .unwrap_or(state.default_link)
    }

    fn transact_at_depth(
        &self,
        src: SimAddr,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
        depth: usize,
    ) -> NetResult<Vec<u8>> {
        if depth > MAX_DEPTH {
            return Err(NetError::TooDeep);
        }
        let started = self.clock.now();
        let link = self.link_for(src.ip, dst.ip);

        {
            let mut state = self.state.borrow_mut();
            state.metrics.requests += 1;
            state.metrics.bytes_sent += payload.len() as u64; // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
            match channel {
                ChannelKind::Plain => state.metrics.plain_requests += 1,
                ChannelKind::Secure => state.metrics.secure_requests += 1,
            }
        }

        if link.blocked {
            self.clock.advance(timeout);
            self.state.borrow_mut().metrics.timeouts += 1;
            return Err(NetError::Partitioned);
        }

        // Forward-path loss. Secure channels model a reliable transport that
        // retransmits, costing extra latency instead of failing outright.
        let forward_lost = {
            let mut state = self.state.borrow_mut();
            link.sample_loss(&mut state.rng)
        };
        if forward_lost {
            if channel == ChannelKind::Plain {
                self.clock.advance(timeout);
                self.state.borrow_mut().metrics.timeouts += 1;
                return Err(NetError::Timeout);
            } else {
                let retransmit = {
                    let mut state = self.state.borrow_mut();
                    link.sample_delay(&mut state.rng)
                };
                self.clock.advance(retransmit);
            }
        }

        let forward_delay = {
            let mut state = self.state.borrow_mut();
            link.sample_delay(&mut state.rng)
        };
        self.clock.advance(forward_delay);

        // Adversary request hook.
        let request_verdict = {
            let mut state = self.state.borrow_mut();
            let NetState { adversary, rng, .. } = &mut *state;
            match adversary.as_mut() {
                Some(adv) => adv.on_request(
                    &Envelope {
                        src,
                        dst,
                        channel,
                        payload,
                    },
                    rng,
                ),
                None => RequestVerdict::Deliver,
            }
        };

        match request_verdict {
            RequestVerdict::Deliver => {}
            RequestVerdict::Drop => {
                self.clock.advance(timeout);
                let mut state = self.state.borrow_mut();
                state.metrics.timeouts += 1;
                state.metrics.adversary_drops += 1;
                return Err(NetError::Timeout);
            }
            RequestVerdict::Forge(forged) => {
                let return_delay = {
                    let mut state = self.state.borrow_mut();
                    link.sample_delay(&mut state.rng)
                };
                self.clock.advance(return_delay);
                let mut state = self.state.borrow_mut();
                state.metrics.responses += 1;
                state.metrics.forged_responses += 1;
                state.metrics.bytes_received += forged.len() as u64; // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
                return Ok(forged);
            }
        }

        // Deliver to the destination service.
        let service = {
            let state = self.state.borrow();
            state.services.get(&dst).cloned()
        };
        let service = match service {
            Some(s) => s,
            None => {
                self.state.borrow_mut().metrics.unreachable += 1;
                return Err(NetError::Unreachable(dst));
            }
        };

        // Forward-path duplication: a second copy of a plain datagram also
        // reaches the service (side effects included) but its reply is
        // redundant and discarded on the wire. Secure (stream) transports
        // deduplicate, so duplication never fires there.
        let duplicated = channel == ChannelKind::Plain && {
            let mut state = self.state.borrow_mut();
            link.sample_duplicate(&mut state.rng)
        };

        let response = {
            let mut ctx = Ctx {
                net: self,
                local: dst,
                depth: depth + 1,
            };
            // A service transacting with itself (directly or via a loop) would
            // re-enter its own handler; treat that as the request going
            // unanswered rather than supporting re-entrancy.
            match service.try_borrow_mut() {
                Ok(mut svc) => svc.handle(&mut ctx, src, channel, payload),
                Err(_) => ServiceResponse::NoReply,
            }
        };

        if duplicated {
            self.state.borrow_mut().metrics.duplicated_requests += 1;
            // The duplicate is processed "alongside" the genuine exchange:
            // rewind the clock afterwards so shadow processing never delays
            // the requester's view of the round trip.
            let resume_at = self.clock.now();
            let mut ctx = Ctx {
                net: self,
                local: dst,
                depth: depth + 1,
            };
            if let Ok(mut svc) = service.try_borrow_mut() {
                let _ = svc.handle(&mut ctx, src, channel, payload);
            }
            self.clock.rewind_to(resume_at);
        }

        let genuine = match response {
            ServiceResponse::Reply(bytes) => bytes,
            ServiceResponse::NoReply => {
                self.clock.advance(timeout);
                self.state.borrow_mut().metrics.timeouts += 1;
                return Err(NetError::Timeout);
            }
        };

        // Adversary response hook.
        let response_verdict = {
            let mut state = self.state.borrow_mut();
            let NetState { adversary, rng, .. } = &mut *state;
            match adversary.as_mut() {
                Some(adv) => adv.on_response(
                    &Envelope {
                        src: dst,
                        dst: src,
                        channel,
                        payload: &genuine,
                    },
                    payload,
                    rng,
                ),
                None => ResponseVerdict::Deliver,
            }
        };

        let delivered = match response_verdict {
            ResponseVerdict::Deliver => genuine,
            ResponseVerdict::Drop => {
                self.clock.advance(timeout);
                let mut state = self.state.borrow_mut();
                state.metrics.timeouts += 1;
                state.metrics.adversary_drops += 1;
                return Err(NetError::Timeout);
            }
            ResponseVerdict::Replace(replacement) => {
                self.state.borrow_mut().metrics.replaced_responses += 1;
                replacement
            }
        };

        // Return-path loss.
        let return_lost = {
            let mut state = self.state.borrow_mut();
            link.sample_loss(&mut state.rng)
        };
        if return_lost && channel == ChannelKind::Plain {
            self.clock.advance(timeout);
            self.state.borrow_mut().metrics.timeouts += 1;
            return Err(NetError::Timeout);
        }

        let return_delay = {
            let mut state = self.state.borrow_mut();
            link.sample_delay(&mut state.rng)
        };
        self.clock.advance(return_delay);

        // Return-path reordering: the response datagram is held back by an
        // extra delay within the link's reorder window, letting later
        // responses overtake it inside a concurrent batch. Stream transports
        // deliver in order, so only plain datagrams reorder.
        if channel == ChannelKind::Plain {
            let held_back = {
                let mut state = self.state.borrow_mut();
                link.sample_reorder(&mut state.rng)
            };
            if let Some(extra) = held_back {
                self.clock.advance(extra);
                self.state.borrow_mut().metrics.reordered_responses += 1;
            }
        }

        if self.clock.elapsed_since(started) > timeout {
            self.state.borrow_mut().metrics.timeouts += 1;
            return Err(NetError::Timeout);
        }

        let mut state = self.state.borrow_mut();
        state.metrics.responses += 1;
        state.metrics.bytes_received += delivered.len() as u64; // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
        Ok(delivered)
    }
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.borrow();
        f.debug_struct("SimNet")
            .field("services", &state.services.len())
            .field("links", &state.links.len())
            .field("now", &self.clock.now())
            .finish()
    }
}

fn order(a: IpAddr, b: IpAddr) -> (IpAddr, IpAddr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Execution context handed to a [`Service`] while it handles a request.
///
/// It exposes the service's own address, the virtual clock and the ability
/// to issue nested transactions (e.g. a recursive resolver querying
/// authoritative name servers).
pub struct Ctx<'a> {
    net: &'a SimNet,
    local: SimAddr,
    depth: usize,
}

impl<'a> Ctx<'a> {
    /// Address the handled request was delivered to.
    pub fn local_addr(&self) -> SimAddr {
        self.local
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.net.now()
    }

    /// Draws a random 16-bit identifier from the simulation randomness.
    pub fn random_id(&self) -> u16 {
        self.net.random_id()
    }

    /// Issues a nested transaction originating from this service.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`SimNet::transact`], plus
    /// [`NetError::TooDeep`] when services keep calling each other.
    pub fn call(
        &mut self,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.net
            .transact_at_depth(self.local, dst, channel, payload, timeout, self.depth)
    }

    /// Issues a nested transaction from an **ephemeral source port** on
    /// this service's host instead of its registered service port.
    ///
    /// This is how a hardened resolver randomizes the source port of its
    /// upstream queries: an off-path adversary observing the request
    /// envelope sees a different `src.port` per query and must guess it to
    /// forge an acceptable response, whereas [`Ctx::call`] always departs
    /// from the (well-known, predictable) service port.
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::call`].
    pub fn call_from_port(
        &mut self,
        src_port: u16,
        dst: SimAddr,
        channel: ChannelKind,
        payload: &[u8],
        timeout: Duration,
    ) -> NetResult<Vec<u8>> {
        self.net.transact_at_depth(
            self.local.with_port(src_port),
            dst,
            channel,
            payload,
            timeout,
            self.depth,
        )
    }

    /// Issues a batch of nested transactions that run concurrently, like
    /// [`SimNet::transact_concurrent`]: a service fanning out to N backends
    /// pays the slowest backend's latency, not the sum.
    pub fn call_concurrent(&mut self, requests: Vec<ConcurrentRequest>) -> Vec<ConcurrentOutcome> {
        let requests = requests.into_iter().map(|r| (self.local, r)).collect();
        self.net.transact_concurrent_at_depth(requests, self.depth)
    }
}

impl fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("local", &self.local)
            .field("depth", &self.depth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{OffPathSpoofer, OnPathMitm, SpoofStrategy};
    use crate::service::{FnService, StaticService};

    fn echo_service() -> impl Service {
        FnService::new("echo", |_ctx, _from, _ch, payload: &[u8]| {
            ServiceResponse::Reply(payload.to_vec())
        })
    }

    const TIMEOUT: Duration = Duration::from_secs(2);

    #[test]
    fn basic_transaction_roundtrips() {
        let net = SimNet::new(1);
        let server = SimAddr::v4(192, 0, 2, 1, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, echo_service());
        let reply = net
            .transact(client, server, ChannelKind::Plain, b"ping", TIMEOUT)
            .unwrap();
        assert_eq!(reply, b"ping");
        let metrics = net.metrics();
        assert_eq!(metrics.requests, 1);
        assert_eq!(metrics.responses, 1);
        assert!(net.now() > SimInstant::EPOCH, "latency advanced the clock");
    }

    #[test]
    fn unreachable_destination_errors() {
        let net = SimNet::new(2);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let ghost = SimAddr::v4(203, 0, 113, 9, 53);
        let err = net
            .transact(client, ghost, ChannelKind::Plain, b"ping", TIMEOUT)
            .unwrap_err();
        assert_eq!(err, NetError::Unreachable(ghost));
        assert_eq!(net.metrics().unreachable, 1);
    }

    #[test]
    fn silent_service_times_out() {
        let net = SimNet::new(3);
        let server = SimAddr::v4(192, 0, 2, 2, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, StaticService::silent());
        let err = net
            .transact(client, server, ChannelKind::Plain, b"ping", TIMEOUT)
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert_eq!(net.metrics().timeouts, 1);
    }

    #[test]
    fn blocked_link_partitions() {
        let net = SimNet::new(4);
        let server = SimAddr::v4(192, 0, 2, 3, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, echo_service());
        net.set_link(client.ip, server.ip, LinkConfig::default().blocked());
        let err = net
            .transact(client, server, ChannelKind::Plain, b"ping", TIMEOUT)
            .unwrap_err();
        assert_eq!(err, NetError::Partitioned);
    }

    #[test]
    fn total_loss_times_out_plain_but_not_secure() {
        let net = SimNet::new(5);
        let server = SimAddr::v4(192, 0, 2, 4, 443);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, echo_service());
        net.set_link(client.ip, server.ip, LinkConfig::default().loss(1.0));

        let plain = net.transact(client, server, ChannelKind::Plain, b"x", TIMEOUT);
        assert_eq!(plain.unwrap_err(), NetError::Timeout);

        // Secure (stream) transport retransmits through loss.
        let secure = net.transact(client, server, ChannelKind::Secure, b"x", TIMEOUT);
        assert_eq!(secure.unwrap(), b"x");
    }

    #[test]
    fn nested_calls_work_and_depth_is_limited() {
        let net = SimNet::new(6);
        let frontend = SimAddr::v4(192, 0, 2, 10, 53);
        let backend = SimAddr::v4(192, 0, 2, 11, 53);
        net.register(backend, echo_service());
        net.register(
            frontend,
            FnService::new(
                "proxy",
                move |ctx: &mut Ctx<'_>, _from, ch, payload: &[u8]| match ctx
                    .call(backend, ch, payload, TIMEOUT)
                {
                    Ok(reply) => ServiceResponse::Reply(reply),
                    Err(_) => ServiceResponse::NoReply,
                },
            ),
        );
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let reply = net
            .transact(client, frontend, ChannelKind::Plain, b"nested", TIMEOUT)
            .unwrap();
        assert_eq!(reply, b"nested");
        assert_eq!(net.metrics().requests, 2);

        // A service calling itself forever must hit the depth limit, not
        // overflow the stack. Use a longer timeout budget so the depth limit
        // (not the elapsed virtual time) is what stops it.
        let looper = SimAddr::v4(192, 0, 2, 12, 53);
        net.register(
            looper,
            FnService::new(
                "loop",
                move |ctx: &mut Ctx<'_>, _from, ch, payload: &[u8]| match ctx.call(
                    looper,
                    ch,
                    payload,
                    Duration::from_secs(3600),
                ) {
                    Ok(reply) => ServiceResponse::Reply(reply),
                    Err(_) => ServiceResponse::NoReply,
                },
            ),
        );
        let err = net
            .transact(
                client,
                looper,
                ChannelKind::Plain,
                b"loop",
                Duration::from_secs(3600),
            )
            .unwrap_err();
        assert_eq!(err, NetError::Timeout, "loop collapses into a timeout");
    }

    #[test]
    fn offpath_spoofer_forges_only_plain() {
        let net = SimNet::new(7);
        let resolver = SimAddr::v4(8, 8, 8, 8, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(resolver, echo_service());
        net.set_adversary(OffPathSpoofer::new(
            SpoofStrategy::FixedProbability(1.0),
            |_q, _rng| Some(b"forged".to_vec()),
        ));

        let plain = net
            .transact(client, resolver, ChannelKind::Plain, b"query", TIMEOUT)
            .unwrap();
        assert_eq!(plain, b"forged");
        assert_eq!(net.metrics().forged_responses, 1);

        let secure = net
            .transact(client, resolver, ChannelKind::Secure, b"query", TIMEOUT)
            .unwrap();
        assert_eq!(secure, b"query");
        assert_eq!(net.metrics().forged_responses, 1);
    }

    #[test]
    fn onpath_mitm_replaces_plain_only() {
        let net = SimNet::new(8);
        let resolver = SimAddr::v4(9, 9, 9, 9, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(resolver, echo_service());
        net.set_adversary(
            OnPathMitm::controlling([resolver.ip])
                .with_response_rewriter(|_req, _resp, _rng| Some(b"rewritten".to_vec())),
        );

        let plain = net
            .transact(client, resolver, ChannelKind::Plain, b"query", TIMEOUT)
            .unwrap();
        assert_eq!(plain, b"rewritten");
        assert_eq!(net.metrics().replaced_responses, 1);

        let secure = net
            .transact(client, resolver, ChannelKind::Secure, b"query", TIMEOUT)
            .unwrap();
        assert_eq!(secure, b"query");
    }

    #[test]
    fn adversary_can_be_cleared() {
        let net = SimNet::new(9);
        let resolver = SimAddr::v4(9, 9, 9, 9, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(resolver, echo_service());
        net.set_adversary(OffPathSpoofer::new(
            SpoofStrategy::FixedProbability(1.0),
            |_q, _rng| Some(b"forged".to_vec()),
        ));
        assert!(net.clear_adversary());
        assert!(!net.clear_adversary());
        let reply = net
            .transact(client, resolver, ChannelKind::Plain, b"query", TIMEOUT)
            .unwrap();
        assert_eq!(reply, b"query");
    }

    #[test]
    fn latency_configuration_is_respected() {
        let net = SimNet::new(10);
        let server = SimAddr::v4(192, 0, 2, 20, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, echo_service());
        net.set_link(
            client.ip,
            server.ip,
            LinkConfig::with_latency(Duration::from_millis(25)),
        );
        let t0 = net.now();
        net.transact(client, server, ChannelKind::Plain, b"x", TIMEOUT)
            .unwrap();
        let elapsed = net.now().saturating_duration_since(t0);
        assert_eq!(elapsed, Duration::from_millis(50), "25 ms each way");
    }

    #[test]
    fn timeout_exceeded_by_slow_link() {
        let net = SimNet::new(11);
        let server = SimAddr::v4(192, 0, 2, 21, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, echo_service());
        net.set_link(
            client.ip,
            server.ip,
            LinkConfig::with_latency(Duration::from_millis(900)),
        );
        let err = net
            .transact(
                client,
                server,
                ChannelKind::Plain,
                b"x",
                Duration::from_millis(100),
            )
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn register_unregister_lifecycle() {
        let net = SimNet::new(12);
        let addr = SimAddr::v4(192, 0, 2, 30, 53);
        assert!(!net.is_registered(addr));
        net.register(addr, StaticService::replying(b"ok".to_vec()));
        assert!(net.is_registered(addr));
        assert!(net.unregister(addr));
        assert!(!net.unregister(addr));
    }

    #[test]
    fn concurrent_batch_costs_the_slowest_exchange() {
        let net = SimNet::new(20);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let servers: Vec<SimAddr> = (1..=3).map(|i| SimAddr::v4(192, 0, 2, i, 53)).collect();
        for (i, &server) in servers.iter().enumerate() {
            net.register(server, echo_service());
            net.set_link(
                client.ip,
                server.ip,
                LinkConfig::with_latency(Duration::from_millis(10 * (i as u64 + 1))),
            );
        }
        let t0 = net.now();
        let outcomes = net.transact_concurrent(
            client,
            servers
                .iter()
                .map(|&dst| ConcurrentRequest {
                    dst,
                    channel: ChannelKind::Plain,
                    payload: b"ping".to_vec(),
                    timeout: TIMEOUT,
                })
                .collect(),
        );
        // 10/20/30 ms one-way latency: the batch ends when the slowest
        // round trip (60 ms) completes, not after 20+40+60 ms.
        assert_eq!(
            net.now().saturating_duration_since(t0),
            Duration::from_millis(60)
        );
        // Delivery order follows per-exchange completion instants.
        let order: Vec<usize> = outcomes.iter().map(|o| o.index).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        assert!(outcomes
            .windows(2)
            .all(|w| w[0].completed_at <= w[1].completed_at));
        assert_eq!(net.metrics().requests, 3);
    }

    #[test]
    fn concurrent_timeout_does_not_stall_the_batch() {
        let net = SimNet::new(21);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let fast = SimAddr::v4(192, 0, 2, 1, 53);
        let dead = SimAddr::v4(192, 0, 2, 2, 53);
        net.register(fast, echo_service());
        net.register(dead, StaticService::silent());
        net.set_link(
            client.ip,
            fast.ip,
            LinkConfig::with_latency(Duration::from_millis(5)),
        );
        let t0 = net.now();
        let outcomes = net.transact_concurrent(
            client,
            vec![
                ConcurrentRequest {
                    dst: dead,
                    channel: ChannelKind::Plain,
                    payload: b"x".to_vec(),
                    timeout: Duration::from_millis(100),
                },
                ConcurrentRequest {
                    dst: fast,
                    channel: ChannelKind::Plain,
                    payload: b"x".to_vec(),
                    timeout: Duration::from_millis(100),
                },
            ],
        );
        // The fast exchange is delivered first even though it was submitted
        // second; the batch ends when the timeout expires.
        assert_eq!(outcomes[0].index, 1);
        assert!(outcomes[0].result.is_ok());
        assert_eq!(outcomes[1].result, Err(NetError::Timeout));
        // The batch ends when the timed-out exchange gives up (its forward
        // link delay plus the full timeout window), not after the sum of
        // both exchanges.
        let elapsed = net.now().saturating_duration_since(t0);
        assert!(elapsed >= Duration::from_millis(100));
        assert!(elapsed < Duration::from_millis(150), "elapsed {elapsed:?}");
    }

    #[test]
    fn empty_concurrent_batch_is_a_no_op() {
        let net = SimNet::new(22);
        let t0 = net.now();
        let outcomes = net.transact_concurrent(SimAddr::v4(10, 0, 0, 1, 40000), Vec::new());
        assert!(outcomes.is_empty());
        assert_eq!(net.now(), t0);
    }

    #[test]
    fn nested_concurrent_calls_respect_depth() {
        let net = SimNet::new(23);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let frontend = SimAddr::v4(192, 0, 2, 10, 53);
        let backends: Vec<SimAddr> = (1..=3)
            .map(|i| SimAddr::v4(192, 0, 2, 100 + i, 53))
            .collect();
        for &b in &backends {
            net.register(b, echo_service());
        }
        let fan_out = backends.clone();
        net.register(
            frontend,
            FnService::new("fanout", move |ctx: &mut Ctx<'_>, _from, ch, p: &[u8]| {
                let outcomes = ctx.call_concurrent(
                    fan_out
                        .iter()
                        .map(|&dst| ConcurrentRequest {
                            dst,
                            channel: ch,
                            payload: p.to_vec(),
                            timeout: TIMEOUT,
                        })
                        .collect(),
                );
                let mut combined = Vec::new();
                for outcome in outcomes {
                    if let Ok(bytes) = outcome.result {
                        combined.extend_from_slice(&bytes);
                    }
                }
                ServiceResponse::Reply(combined)
            }),
        );
        let reply = net
            .transact(client, frontend, ChannelKind::Plain, b"ab", TIMEOUT)
            .unwrap();
        assert_eq!(reply, b"ababab");
        assert_eq!(net.metrics().requests, 4);
    }

    #[test]
    fn duplicated_request_is_handled_twice_but_answered_once() {
        use std::cell::Cell;

        let net = SimNet::new(30);
        let server = SimAddr::v4(192, 0, 2, 50, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let hits = Rc::new(Cell::new(0u32));
        let recorder = Rc::clone(&hits);
        net.register(
            server,
            FnService::new("count", move |_ctx, _from, _ch, payload: &[u8]| {
                recorder.set(recorder.get() + 1);
                ServiceResponse::Reply(payload.to_vec())
            }),
        );
        net.set_link(
            client.ip,
            server.ip,
            LinkConfig::with_latency(Duration::from_millis(10)).duplicate(1.0),
        );
        let t0 = net.now();
        let reply = net
            .transact(client, server, ChannelKind::Plain, b"q", TIMEOUT)
            .unwrap();
        assert_eq!(reply, b"q");
        assert_eq!(hits.get(), 2, "the service saw the payload twice");
        let metrics = net.metrics();
        assert_eq!(metrics.requests, 1);
        assert_eq!(
            metrics.responses, 1,
            "the client still got exactly one reply"
        );
        assert_eq!(metrics.duplicated_requests, 1);
        assert_eq!(
            net.now().saturating_duration_since(t0),
            Duration::from_millis(20),
            "shadow processing of the duplicate does not delay the genuine exchange"
        );
    }

    #[test]
    fn secure_channels_do_not_duplicate() {
        use std::cell::Cell;

        let net = SimNet::new(31);
        let server = SimAddr::v4(192, 0, 2, 51, 443);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let hits = Rc::new(Cell::new(0u32));
        let recorder = Rc::clone(&hits);
        net.register(
            server,
            FnService::new("count", move |_ctx, _from, _ch, payload: &[u8]| {
                recorder.set(recorder.get() + 1);
                ServiceResponse::Reply(payload.to_vec())
            }),
        );
        net.set_link(client.ip, server.ip, LinkConfig::default().duplicate(1.0));
        net.transact(client, server, ChannelKind::Secure, b"q", TIMEOUT)
            .unwrap();
        assert_eq!(hits.get(), 1);
        assert_eq!(net.metrics().duplicated_requests, 0);
    }

    #[test]
    fn reordered_response_is_held_back_and_counted() {
        let net = SimNet::new(32);
        let server = SimAddr::v4(192, 0, 2, 52, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, echo_service());
        net.set_link(
            client.ip,
            server.ip,
            LinkConfig::with_latency(Duration::from_millis(10))
                .reorder(1.0, Duration::from_millis(40)),
        );
        let t0 = net.now();
        net.transact(client, server, ChannelKind::Plain, b"x", TIMEOUT)
            .unwrap();
        let elapsed = net.now().saturating_duration_since(t0);
        assert!(elapsed >= Duration::from_millis(20));
        assert!(elapsed < Duration::from_millis(60), "elapsed {elapsed:?}");
        assert_eq!(net.metrics().reordered_responses, 1);

        // Streams deliver in order: a secure exchange is never held back.
        let t1 = net.now();
        net.transact(client, server, ChannelKind::Secure, b"x", TIMEOUT)
            .unwrap();
        assert_eq!(
            net.now().saturating_duration_since(t1),
            Duration::from_millis(20)
        );
        assert_eq!(net.metrics().reordered_responses, 1);
    }

    #[test]
    fn reordering_flips_concurrent_delivery_order() {
        let net = SimNet::new(33);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        let held = SimAddr::v4(192, 0, 2, 1, 53);
        let steady = SimAddr::v4(192, 0, 2, 2, 53);
        net.register(held, echo_service());
        net.register(steady, echo_service());
        net.set_link(
            client.ip,
            held.ip,
            LinkConfig::with_latency(Duration::from_millis(10))
                .reorder(1.0, Duration::from_millis(100)),
        );
        net.set_link(
            client.ip,
            steady.ip,
            LinkConfig::with_latency(Duration::from_millis(10)),
        );
        let outcomes = net.transact_concurrent(
            client,
            [held, steady]
                .iter()
                .map(|&dst| ConcurrentRequest {
                    dst,
                    channel: ChannelKind::Plain,
                    payload: b"ping".to_vec(),
                    timeout: TIMEOUT,
                })
                .collect(),
        );
        // Both exchanges share a 10 ms one-way latency, but the first one's
        // response is held back inside the reorder window, so the second
        // request's reply overtakes it.
        assert_eq!(outcomes[0].index, 1, "steady response delivered first");
        assert_eq!(outcomes[1].index, 0);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        assert_eq!(net.metrics().reordered_responses, 1);
    }

    #[test]
    fn metrics_reset() {
        let net = SimNet::new(13);
        let server = SimAddr::v4(192, 0, 2, 40, 53);
        let client = SimAddr::v4(198, 51, 100, 1, 40000);
        net.register(server, echo_service());
        net.transact(client, server, ChannelKind::Plain, b"x", TIMEOUT)
            .unwrap();
        assert_eq!(net.metrics().requests, 1);
        net.reset_metrics();
        assert_eq!(net.metrics().requests, 0);
    }

    #[test]
    fn error_display() {
        assert!(NetError::Timeout.to_string().contains("timed out"));
        assert!(NetError::Unreachable(SimAddr::v4(1, 2, 3, 4, 5))
            .to_string()
            .contains("1.2.3.4:5"));
    }
}
