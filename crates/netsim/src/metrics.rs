//! Counters collected while a simulation runs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Aggregate traffic and attack counters for a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of request transactions initiated.
    pub requests: u64,
    /// Number of successful responses delivered to the requester.
    pub responses: u64,
    /// Requests that ended in a timeout (loss, drop or missing reply).
    pub timeouts: u64,
    /// Requests addressed to an endpoint with no registered service.
    pub unreachable: u64,
    /// Total request payload bytes sent.
    pub bytes_sent: u64,
    /// Total response payload bytes received.
    pub bytes_received: u64,
    /// Requests carried over plain (unauthenticated) channels.
    pub plain_requests: u64,
    /// Requests carried over secure (authenticated) channels.
    pub secure_requests: u64,
    /// Responses forged by an off-path adversary and accepted in place of the
    /// genuine response.
    pub forged_responses: u64,
    /// Genuine responses replaced in flight by an on-path adversary.
    pub replaced_responses: u64,
    /// Requests or responses dropped by an adversary.
    pub adversary_drops: u64,
    /// Plain requests duplicated in flight (the service handled the payload
    /// twice; the redundant reply was discarded).
    pub duplicated_requests: u64,
    /// Plain responses delivered out of order after an extra hold-back delay.
    pub reordered_responses: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Metrics) {
        self.requests += other.requests;
        self.responses += other.responses;
        self.timeouts += other.timeouts;
        self.unreachable += other.unreachable;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.plain_requests += other.plain_requests;
        self.secure_requests += other.secure_requests;
        self.forged_responses += other.forged_responses;
        self.replaced_responses += other.replaced_responses;
        self.adversary_drops += other.adversary_drops;
        self.duplicated_requests += other.duplicated_requests;
        self.reordered_responses += other.reordered_responses;
    }

    /// Fraction of requests that received any response (successfully).
    pub fn response_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.responses as f64 / self.requests as f64
        }
    }

    /// Fraction of delivered responses that were forged or replaced by an
    /// adversary.
    pub fn attack_success_rate(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            (self.forged_responses + self.replaced_responses) as f64 / self.responses as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests={} responses={} timeouts={} forged={} replaced={} bytes_tx={} bytes_rx={}",
            self.requests,
            self.responses,
            self.timeouts,
            self.forged_responses,
            self.replaced_responses,
            self.bytes_sent,
            self.bytes_received
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = Metrics {
            requests: 3,
            responses: 2,
            bytes_sent: 100,
            ..Metrics::new()
        };
        let b = Metrics {
            requests: 5,
            responses: 4,
            forged_responses: 1,
            ..Metrics::new()
        };
        a.merge(&b);
        assert_eq!(a.requests, 8);
        assert_eq!(a.responses, 6);
        assert_eq!(a.forged_responses, 1);
        assert_eq!(a.bytes_sent, 100);
    }

    #[test]
    fn merge_adds_fault_counters() {
        let mut a = Metrics {
            duplicated_requests: 2,
            reordered_responses: 1,
            ..Metrics::new()
        };
        a.merge(&Metrics {
            duplicated_requests: 3,
            reordered_responses: 4,
            ..Metrics::new()
        });
        assert_eq!(a.duplicated_requests, 5);
        assert_eq!(a.reordered_responses, 5);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let m = Metrics::new();
        assert_eq!(m.response_rate(), 0.0);
        assert_eq!(m.attack_success_rate(), 0.0);
    }

    #[test]
    fn rates_compute_fractions() {
        let m = Metrics {
            requests: 10,
            responses: 8,
            forged_responses: 2,
            ..Metrics::new()
        };
        assert!((m.response_rate() - 0.8).abs() < 1e-12);
        assert!((m.attack_success_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_counters() {
        let m = Metrics {
            requests: 1,
            ..Metrics::new()
        };
        assert!(m.to_string().contains("requests=1"));
    }
}
