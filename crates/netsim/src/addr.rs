//! Simulated endpoint addresses.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The address of a simulated endpoint: an IP address and a port.
///
/// The simulator reuses real [`IpAddr`] values so that addresses flowing
/// through DNS answers can be dialed directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimAddr {
    /// IP address of the node.
    pub ip: IpAddr,
    /// Port the service listens on.
    pub port: u16,
}

impl SimAddr {
    /// Creates an address from an IP and port.
    pub fn new(ip: IpAddr, port: u16) -> Self {
        SimAddr { ip, port }
    }

    /// Creates an IPv4 address from octets and a port, convenient in tests.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        SimAddr {
            ip: IpAddr::V4(Ipv4Addr::new(a, b, c, d)),
            port,
        }
    }

    /// The same host with a different port.
    pub fn with_port(self, port: u16) -> Self {
        SimAddr { ip: self.ip, port }
    }
}

impl fmt::Display for SimAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ip {
            IpAddr::V4(ip) => write!(f, "{ip}:{}", self.port),
            IpAddr::V6(ip) => write!(f, "[{ip}]:{}", self.port),
        }
    }
}

/// Error returned when parsing a [`SimAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSimAddrError;

impl fmt::Display for ParseSimAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulated address syntax")
    }
}

impl std::error::Error for ParseSimAddrError {}

impl FromStr for SimAddr {
    type Err = ParseSimAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let sock: std::net::SocketAddr = s.parse().map_err(|_| ParseSimAddrError)?;
        Ok(SimAddr {
            ip: sock.ip(),
            port: sock.port(),
        })
    }
}

impl From<std::net::SocketAddr> for SimAddr {
    fn from(s: std::net::SocketAddr) -> Self {
        SimAddr {
            ip: s.ip(),
            port: s.port(),
        }
    }
}

/// Well-known port numbers used across the simulation.
pub mod ports {
    /// Classic DNS over UDP/TCP ("Do53").
    pub const DNS: u16 = 53;
    /// HTTPS, used by DNS-over-HTTPS.
    pub const HTTPS: u16 = 443;
    /// Network Time Protocol.
    pub const NTP: u16 = 123;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_v4_and_v6() {
        let v4 = SimAddr::v4(192, 0, 2, 1, 53);
        assert_eq!(v4.to_string(), "192.0.2.1:53");
        let v6 = SimAddr::new("2001:db8::1".parse().unwrap(), 443);
        assert_eq!(v6.to_string(), "[2001:db8::1]:443");
    }

    #[test]
    fn parse_roundtrip() {
        let addr: SimAddr = "198.51.100.7:443".parse().unwrap();
        assert_eq!(addr, SimAddr::v4(198, 51, 100, 7, 443));
        assert!("not-an-address".parse::<SimAddr>().is_err());
    }

    #[test]
    fn with_port_changes_only_port() {
        let addr = SimAddr::v4(10, 0, 0, 1, 53);
        let https = addr.with_port(ports::HTTPS);
        assert_eq!(https.ip, addr.ip);
        assert_eq!(https.port, 443);
    }

    #[test]
    fn socketaddr_conversion() {
        let sock: std::net::SocketAddr = "127.0.0.1:8080".parse().unwrap();
        let addr = SimAddr::from(sock);
        assert_eq!(addr.port, 8080);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimAddr::v4(1, 1, 1, 1, 443);
        let b = SimAddr::v4(8, 8, 8, 8, 443);
        assert!(a < b);
    }
}
