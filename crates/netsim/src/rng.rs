//! Deterministic random number generation for reproducible experiments.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random number generator handle.
///
/// Every simulation component receives its randomness from a `SimRng`
/// forked from the scenario's master seed, so that a run is fully
/// reproducible from a single `u64`.
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator for a named sub-component.
    ///
    /// The derivation mixes the label into fresh seed material so that two
    /// differently named forks never produce correlated streams.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut seed = self.inner.gen::<u64>();
        for (i, b) in label.bytes().enumerate() {
            seed = seed
                .rotate_left(7)
                .wrapping_add(u64::from(b) << (i % 8 * 8).min(56));
        }
        SimRng::seed_from_u64(seed)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform value in `[low, high)`; returns `low` when the range is empty.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            low
        } else {
            self.inner.gen_range(low..high)
        }
    }

    /// Uniform integer in `[low, high)`; returns `low` when the range is empty.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        if high <= low {
            low
        } else {
            self.inner.gen_range(low..high)
        }
    }

    /// A uniformly random `u16`, e.g. for DNS transaction identifiers.
    pub fn gen_u16(&mut self) -> u16 {
        self.inner.gen()
    }

    /// A uniformly random `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Chooses `k` distinct indices out of `0..n` (Floyd's algorithm); when
    /// `k >= n`, returns all indices in order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.inner.gen_range(0..=j);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        use rand::seq::SliceRandom;
        slice.shuffle(&mut self.inner);
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen_u64() == b.gen_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_deterministic_and_label_sensitive() {
        let mut parent1 = SimRng::seed_from_u64(99);
        let mut parent2 = SimRng::seed_from_u64(99);
        let mut fa = parent1.fork("alpha");
        let mut fb = parent2.fork("alpha");
        assert_eq!(fa.gen_u64(), fb.gen_u64());

        let mut parent3 = SimRng::seed_from_u64(99);
        let mut fc = parent3.fork("beta");
        let mut parent4 = SimRng::seed_from_u64(99);
        let mut fd = parent4.fork("alpha");
        assert_ne!(fc.gen_u64(), fd.gen_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_handles_degenerate_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(rng.range_f64(5.0, 5.0), 5.0);
        assert_eq!(rng.range_u64(9, 3), 9);
        let v = rng.range_f64(1.0, 2.0);
        assert!((1.0..2.0).contains(&v));
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let mut rng = SimRng::seed_from_u64(21);
        let sample = rng.sample_indices(20, 7);
        assert_eq!(sample.len(), 7);
        let mut dedup = sample.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 7);
        assert!(sample.iter().all(|&i| i < 20));
        assert_eq!(rng.sample_indices(3, 10), vec![0, 1, 2]);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut data: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(data, sorted);
    }
}
