//! Client-population load generation.
//!
//! The serving layers above the simulator need to be exercised the way the
//! paper's north star demands — *heavy traffic from many clients* — not one
//! scripted transaction at a time. This module provides that workload
//! generator: a [`ClientPopulation`] of distinct source addresses and a
//! [`LoadDriver`] that, round after round, fires one request per client
//! **concurrently** (all departures share an instant, the round costs the
//! slowest exchange's virtual time via
//! [`SimNet::transact_concurrent_from`]) and aggregates delivery outcomes
//! and latency into [`LoadStats`].
//!
//! The driver is payload-agnostic: a callback builds each client's request,
//! a second callback observes each response, and an optional between-rounds
//! hook lets the experiment run background work (cache refreshes,
//! adversary moves) off the query path. Everything is deterministic in the
//! simulation seed.

use std::time::Duration;

use crate::addr::SimAddr;
use crate::network::{ConcurrentRequest, SimNet};
use crate::time::SimInstant;

/// A set of distinct client source addresses.
#[derive(Debug, Clone)]
pub struct ClientPopulation {
    clients: Vec<SimAddr>,
}

/// Distinct host addresses the `spread` sequence draws from
/// `100.64.0.0/10` before it starts varying the source port.
const SPREAD_HOSTS: usize = 64 * 250 * 250;

impl ClientPopulation {
    /// Synthesises `count` clients with distinct `(address, port)` pairs in
    /// the carrier NAT range (`100.64.0.0/10`), the address space a real
    /// resolver would see an ISP's customers from: four million distinct
    /// hosts, then distinct source ports on top — unique for any population
    /// the simulator can hold.
    pub fn spread(count: usize) -> Self {
        ClientPopulation {
            clients: (0..count).map(Self::spread_addr).collect(),
        }
    }

    /// The `i`-th endpoint of the `spread` sequence. Every octet derivation
    /// stays in range by construction (the second octet spans `64..=127`),
    /// so large populations neither overflow nor leave the /10.
    fn spread_addr(i: usize) -> SimAddr {
        let host = i % SPREAD_HOSTS;
        SimAddr::v4(
            100,
            64 + (host / (250 * 250)) as u8, // sdoh-lint: allow(no-narrowing-cast, "host is below 250^3, so the quotient is below 250")
            (host / 250 % 250) as u8, // sdoh-lint: allow(no-narrowing-cast, "the modulo keeps the octet below 250")
            (host % 250 + 1) as u8, // sdoh-lint: allow(no-narrowing-cast, "the modulo keeps the octet below 251")
            40_000 + ((i / SPREAD_HOSTS) % 20_000) as u16, // sdoh-lint: allow(no-narrowing-cast, "the modulo keeps the port offset below 20000")
        )
    }

    /// A population from explicit addresses.
    pub fn from_addrs(clients: Vec<SimAddr>) -> Self {
        ClientPopulation { clients }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Returns `true` for an empty population.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The client addresses.
    pub fn addrs(&self) -> &[SimAddr] {
        &self.clients
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Requests sent.
    pub requests: u64,
    /// Requests that received a response payload.
    pub responses: u64,
    /// Requests that failed (timeout, unreachable, partition).
    pub failures: u64,
    /// Fastest observed request round trip.
    pub min_latency: Duration,
    /// Slowest observed request round trip.
    pub max_latency: Duration,
    /// Sum of all round trips (for the mean).
    pub total_latency: Duration,
    /// Virtual time the whole run spanned, think time included.
    pub elapsed: Duration,
}

impl LoadStats {
    /// Mean request round trip over all sent requests.
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / u32::try_from(self.requests).unwrap_or(u32::MAX)
        }
    }

    /// Served requests per second of elapsed virtual time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.responses as f64 / secs
        }
    }

    fn record(&mut self, latency: Duration, ok: bool) {
        self.requests += 1;
        if ok {
            self.responses += 1;
        } else {
            self.failures += 1;
        }
        if self.requests == 1 || latency < self.min_latency {
            self.min_latency = latency;
        }
        if latency > self.max_latency {
            self.max_latency = latency;
        }
        self.total_latency += latency;
    }
}

/// Drives a [`ClientPopulation`] against a [`SimNet`] in concurrent rounds.
#[derive(Debug)]
pub struct LoadDriver<'a> {
    net: &'a SimNet,
    population: ClientPopulation,
    think_time: Duration,
}

impl<'a> LoadDriver<'a> {
    /// Creates a driver for `population` on `net`.
    pub fn new(net: &'a SimNet, population: ClientPopulation) -> Self {
        LoadDriver {
            net,
            population,
            think_time: Duration::ZERO,
        }
    }

    /// Sets the virtual pause between rounds, returning `self` for
    /// chaining.
    pub fn think_time(mut self, think_time: Duration) -> Self {
        self.think_time = think_time;
        self
    }

    /// The population being driven.
    pub fn population(&self) -> &ClientPopulation {
        &self.population
    }

    /// Runs `rounds` concurrent rounds. For every round and client,
    /// `make_request(round, client, addr)` builds the request (`None` lets
    /// the client sit the round out); `on_response(round, client, result)`
    /// observes each delivered outcome.
    pub fn run<F, G>(&self, rounds: usize, mut make_request: F, mut on_response: G) -> LoadStats
    where
        F: FnMut(usize, usize, SimAddr) -> Option<ConcurrentRequest>,
        G: FnMut(usize, usize, &crate::network::NetResult<Vec<u8>>),
    {
        self.run_with_hook(rounds, &mut make_request, &mut on_response, |_| {})
    }

    /// Like [`LoadDriver::run`], with `between_rounds(round)` invoked after
    /// each round's outcomes are delivered and before the think-time pause —
    /// the place to pump background work (e.g. cache refreshes) off any
    /// client's query path.
    pub fn run_with_hook<F, G, H>(
        &self,
        rounds: usize,
        make_request: &mut F,
        on_response: &mut G,
        mut between_rounds: H,
    ) -> LoadStats
    where
        F: FnMut(usize, usize, SimAddr) -> Option<ConcurrentRequest>,
        G: FnMut(usize, usize, &crate::network::NetResult<Vec<u8>>),
        H: FnMut(usize),
    {
        let started = self.net.now();
        let mut stats = LoadStats::default();
        for round in 0..rounds {
            let mut batch: Vec<(SimAddr, ConcurrentRequest)> = Vec::new();
            let mut senders: Vec<usize> = Vec::new();
            for (client, &addr) in self.population.clients.iter().enumerate() {
                if let Some(request) = make_request(round, client, addr) {
                    batch.push((addr, request));
                    senders.push(client);
                }
            }
            stats.rounds += 1;
            if !batch.is_empty() {
                let departed: SimInstant = self.net.now();
                let outcomes = self.net.transact_concurrent_from(batch);
                for outcome in outcomes {
                    let latency = outcome.completed_at.saturating_duration_since(departed);
                    stats.record(latency, outcome.result.is_ok());
                    if let Some(&sender) = senders.get(outcome.index) {
                        on_response(round, sender, &outcome.result);
                    }
                }
            }
            between_rounds(round);
            if !self.think_time.is_zero() && round + 1 < rounds {
                self.net.clock().advance(self.think_time);
            }
        }
        stats.elapsed = self.net.clock().elapsed_since(started);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::link::LinkConfig;
    use crate::service::{FnService, ServiceResponse};

    const TIMEOUT: Duration = Duration::from_secs(2);

    fn echo_net(seed: u64, latency: Duration) -> (SimNet, SimAddr) {
        let net = SimNet::new(seed);
        net.set_default_link(LinkConfig::with_latency(latency));
        let server = SimAddr::v4(192, 0, 2, 1, 53);
        net.register(
            server,
            FnService::new("echo", |_ctx, _from, _ch, p: &[u8]| {
                ServiceResponse::Reply(p.to_vec())
            }),
        );
        (net, server)
    }

    #[test]
    fn population_addresses_are_distinct() {
        let population = ClientPopulation::spread(500);
        assert_eq!(population.len(), 500);
        assert!(!population.is_empty());
        let mut addrs: Vec<SimAddr> = population.addrs().to_vec();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 500, "no duplicate client addresses");
    }

    #[test]
    fn spread_stays_in_range_for_populations_of_millions() {
        // Spot-check the derivation at the host-space boundaries without
        // materialising millions of addresses: every endpoint stays inside
        // 100.64.0.0/10 and endpoints remain pairwise distinct, including
        // past the four-million-host wrap where ports take over.
        let indices = [
            0,
            1,
            249,
            250,
            SPREAD_HOSTS - 1,
            SPREAD_HOSTS,
            SPREAD_HOSTS + 1,
            12_000_000,
            16_000_000,
        ];
        let mut endpoints = Vec::new();
        for &i in &indices {
            let addr = ClientPopulation::spread_addr(i);
            match addr.ip {
                std::net::IpAddr::V4(v4) => {
                    let [a, b, _, d] = v4.octets();
                    assert_eq!(a, 100, "index {i}");
                    assert!((64..=127).contains(&b), "index {i} left the /10");
                    assert!(d >= 1, "index {i}");
                }
                std::net::IpAddr::V6(_) => panic!("spread is IPv4"),
            }
            endpoints.push(addr);
        }
        endpoints.sort();
        endpoints.dedup();
        assert_eq!(endpoints.len(), indices.len(), "distinct endpoints");
    }

    #[test]
    fn a_round_costs_the_slowest_exchange_not_the_sum() {
        let (net, server) = echo_net(1, Duration::from_millis(10));
        let driver = LoadDriver::new(&net, ClientPopulation::spread(100));
        let stats = driver.run(
            1,
            |_round, _client, _addr| {
                Some(ConcurrentRequest::new(
                    server,
                    ChannelKind::Plain,
                    b"ping".to_vec(),
                    TIMEOUT,
                ))
            },
            |_round, _client, result| assert!(result.is_ok()),
        );
        assert_eq!(stats.requests, 100);
        assert_eq!(stats.responses, 100);
        assert_eq!(stats.failures, 0);
        // 100 concurrent 20 ms round trips cost 20 ms, not 2 s.
        assert_eq!(stats.elapsed, Duration::from_millis(20));
        assert_eq!(stats.mean_latency(), Duration::from_millis(20));
        assert_eq!(stats.min_latency, stats.max_latency);
        assert!(stats.throughput() > 4_000.0);
    }

    #[test]
    fn think_time_and_hooks_between_rounds() {
        let (net, server) = echo_net(2, Duration::from_millis(5));
        let driver =
            LoadDriver::new(&net, ClientPopulation::spread(4)).think_time(Duration::from_secs(1));
        assert_eq!(driver.population().len(), 4);
        let mut hook_rounds = Vec::new();
        let stats = driver.run_with_hook(
            3,
            &mut |_round, client, _addr| {
                // Odd clients sit every round out.
                (client % 2 == 0).then(|| {
                    ConcurrentRequest::new(server, ChannelKind::Plain, b"x".to_vec(), TIMEOUT)
                })
            },
            &mut |_round, client, _result| assert_eq!(client % 2, 0),
            |round| hook_rounds.push(round),
        );
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.requests, 6, "2 active clients x 3 rounds");
        assert_eq!(hook_rounds, vec![0, 1, 2]);
        // Two think-time pauses plus three 10 ms rounds.
        assert_eq!(stats.elapsed, Duration::from_millis(2_030));
    }

    #[test]
    fn failures_are_counted() {
        let net = SimNet::new(3);
        let ghost = SimAddr::v4(203, 0, 113, 9, 53);
        let driver = LoadDriver::new(&net, ClientPopulation::spread(3));
        let stats = driver.run(
            1,
            |_round, _client, _addr| {
                Some(ConcurrentRequest::new(
                    ghost,
                    ChannelKind::Plain,
                    b"x".to_vec(),
                    TIMEOUT,
                ))
            },
            |_round, _client, _result| {},
        );
        assert_eq!(stats.failures, 3);
        assert_eq!(stats.responses, 0);
        // The forward-path delay was still paid before the error came back.
        assert!(stats.mean_latency() < TIMEOUT);
        assert_eq!(LoadStats::default().throughput(), 0.0);
        assert_eq!(LoadStats::default().mean_latency(), Duration::ZERO);
    }
}
