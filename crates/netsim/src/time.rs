//! Virtual time for deterministic simulation.
//!
//! All latency accounting in the simulator uses a [`SimClock`], a shared
//! monotonically increasing counter of nanoseconds since the start of the
//! simulation. Experiments never read the host clock, which keeps every run
//! reproducible from its seed.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// An instant of virtual time, measured in nanoseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimInstant = SimInstant { nanos: 0 };

    /// Creates an instant from nanoseconds since the epoch.
    pub fn from_nanos(nanos: u64) -> Self {
        SimInstant { nanos }
    }

    /// Nanoseconds since the simulation epoch.
    pub fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Seconds since the simulation epoch as a floating-point value.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// The instant `duration` after `self`, saturating on overflow.
    pub fn saturating_add(self, duration: Duration) -> SimInstant {
        SimInstant {
            nanos: self
                .nanos
                .saturating_add(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)),
        }
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimInstant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `SimClock` yields a handle to the same underlying time source.
///
/// # Examples
///
/// ```
/// use sdoh_netsim::SimClock;
/// use std::time::Duration;
///
/// let clock = SimClock::new();
/// let t0 = clock.now();
/// clock.advance(Duration::from_millis(20));
/// assert_eq!(clock.now().saturating_duration_since(t0), Duration::from_millis(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    state: Arc<Mutex<ClockState>>,
}

#[derive(Debug, Default)]
struct ClockState {
    now: SimInstant,
    drift_rate: f64,
    steps: u64,
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.state.lock().now
    }

    /// Advances the clock by `duration`, scaled by any injected drift.
    pub fn advance(&self, duration: Duration) {
        let mut state = self.state.lock();
        let effective = if state.drift_rate == 0.0 {
            duration
        } else {
            // A drifting time source stretches (or compresses) every
            // elapsed interval; the rate is clamped so time never reverses.
            let scale = (1.0 + state.drift_rate).max(0.0);
            Duration::from_nanos((duration.as_nanos() as f64 * scale) as u64) // sdoh-lint: allow(no-narrowing-cast, "float-to-int as-casts saturate and map NaN to zero")
        };
        state.now = state.now.saturating_add(effective);
    }

    /// Advances the clock to `instant` if it is in the future; a clock never
    /// moves backwards.
    pub fn advance_to(&self, instant: SimInstant) {
        let mut state = self.state.lock();
        if instant > state.now {
            state.now = instant;
        }
    }

    /// Steps the clock forward by `jump` instantly — a chaos fault modelling
    /// a time-source step (VM pause, leap smear gone wrong, operator reset).
    ///
    /// Unlike [`SimClock::advance`] the jump is never scaled by drift, and
    /// each step is counted so campaigns can trace how often they fired.
    pub fn step(&self, jump: Duration) {
        let mut state = self.state.lock();
        state.now = state.now.saturating_add(jump);
        state.steps += 1;
    }

    /// Number of [`SimClock::step`] faults applied so far.
    pub fn steps(&self) -> u64 {
        self.state.lock().steps
    }

    /// Injects a drift rate: every subsequently advanced interval is scaled
    /// by `1 + rate` (e.g. `1e-4` runs the clock 100 ppm fast, negative
    /// rates run it slow; rates at or below `-1` freeze it). Zero clears
    /// the fault and restores exact nanosecond accounting.
    pub fn set_drift(&self, rate: f64) {
        self.state.lock().drift_rate = rate;
    }

    /// The currently injected drift rate.
    pub fn drift(&self) -> f64 {
        self.state.lock().drift_rate
    }

    /// Elapsed virtual time since `start`.
    pub fn elapsed_since(&self, start: SimInstant) -> Duration {
        self.now().saturating_duration_since(start)
    }

    /// Rewinds the clock to `instant`.
    ///
    /// Only the simulator core may do this: it models concurrency by running
    /// the exchanges of one batch sequentially, restarting each from the
    /// batch's departure instant. From the outside the clock stays
    /// monotonic — the batch as a whole ends at the latest completion.
    pub(crate) fn rewind_to(&self, instant: SimInstant) {
        self.state.lock().now = instant;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_epoch() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
    }

    #[test]
    fn advance_accumulates() {
        let clock = SimClock::new();
        clock.advance(Duration::from_millis(5));
        clock.advance(Duration::from_micros(250));
        assert_eq!(clock.now().as_nanos(), 5_250_000);
    }

    #[test]
    fn clones_share_time() {
        let clock = SimClock::new();
        let clone = clock.clone();
        clock.advance(Duration::from_secs(1));
        assert_eq!(clone.now().as_secs_f64(), 1.0);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(10));
        clock.advance_to(SimInstant::from_nanos(5));
        assert_eq!(clock.now().as_secs_f64(), 10.0);
        clock.advance_to(SimInstant::from_nanos(11_000_000_000));
        assert_eq!(clock.now().as_secs_f64(), 11.0);
    }

    #[test]
    fn instant_arithmetic() {
        let a = SimInstant::from_nanos(1_000);
        let b = a.saturating_add(Duration::from_nanos(500));
        assert_eq!(b.as_nanos(), 1_500);
        assert_eq!(b.saturating_duration_since(a), Duration::from_nanos(500));
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        let t = SimInstant::from_nanos(1_500_000_000);
        assert_eq!(t.to_string(), "1.500000s");
    }

    #[test]
    fn elapsed_since_tracks_clock() {
        let clock = SimClock::new();
        let start = clock.now();
        clock.advance(Duration::from_millis(42));
        assert_eq!(clock.elapsed_since(start), Duration::from_millis(42));
    }

    #[test]
    fn step_jumps_forward_and_is_counted() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(1));
        clock.step(Duration::from_secs(120));
        assert_eq!(clock.now().as_secs_f64(), 121.0);
        assert_eq!(clock.steps(), 1);
        let clone = clock.clone();
        clone.step(Duration::from_secs(1));
        assert_eq!(clock.steps(), 2, "clones share the step counter");
    }

    #[test]
    fn drift_scales_advanced_intervals() {
        let clock = SimClock::new();
        clock.set_drift(0.5);
        assert_eq!(clock.drift(), 0.5);
        clock.advance(Duration::from_secs(10));
        assert_eq!(clock.now().as_secs_f64(), 15.0, "runs 50% fast");

        clock.set_drift(-0.5);
        clock.advance(Duration::from_secs(10));
        assert_eq!(clock.now().as_secs_f64(), 20.0, "runs 50% slow");

        clock.set_drift(0.0);
        clock.advance(Duration::from_nanos(7));
        assert_eq!(
            clock.now().as_nanos(),
            20_000_000_007,
            "zero drift restores exact accounting"
        );
    }

    #[test]
    fn extreme_negative_drift_freezes_but_never_reverses() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(5));
        clock.set_drift(-2.0);
        clock.advance(Duration::from_secs(100));
        assert_eq!(clock.now().as_secs_f64(), 5.0);
    }

    #[test]
    fn step_is_not_scaled_by_drift() {
        let clock = SimClock::new();
        clock.set_drift(1.0);
        clock.step(Duration::from_secs(10));
        assert_eq!(clock.now().as_secs_f64(), 10.0);
    }
}
