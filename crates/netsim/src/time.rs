//! Virtual time for deterministic simulation.
//!
//! All latency accounting in the simulator uses a [`SimClock`], a shared
//! monotonically increasing counter of nanoseconds since the start of the
//! simulation. Experiments never read the host clock, which keeps every run
//! reproducible from its seed.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// An instant of virtual time, measured in nanoseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant {
    nanos: u64,
}

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimInstant = SimInstant { nanos: 0 };

    /// Creates an instant from nanoseconds since the epoch.
    pub fn from_nanos(nanos: u64) -> Self {
        SimInstant { nanos }
    }

    /// Nanoseconds since the simulation epoch.
    pub fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Seconds since the simulation epoch as a floating-point value.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// The instant `duration` after `self`, saturating on overflow.
    pub fn saturating_add(self, duration: Duration) -> SimInstant {
        SimInstant {
            nanos: self.nanos.saturating_add(duration.as_nanos() as u64),
        }
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimInstant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `SimClock` yields a handle to the same underlying time source.
///
/// # Examples
///
/// ```
/// use sdoh_netsim::SimClock;
/// use std::time::Duration;
///
/// let clock = SimClock::new();
/// let t0 = clock.now();
/// clock.advance(Duration::from_millis(20));
/// assert_eq!(clock.now().saturating_duration_since(t0), Duration::from_millis(20));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<Mutex<SimInstant>>,
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        *self.now.lock()
    }

    /// Advances the clock by `duration`.
    pub fn advance(&self, duration: Duration) {
        let mut now = self.now.lock();
        *now = now.saturating_add(duration);
    }

    /// Advances the clock to `instant` if it is in the future; a clock never
    /// moves backwards.
    pub fn advance_to(&self, instant: SimInstant) {
        let mut now = self.now.lock();
        if instant > *now {
            *now = instant;
        }
    }

    /// Elapsed virtual time since `start`.
    pub fn elapsed_since(&self, start: SimInstant) -> Duration {
        self.now().saturating_duration_since(start)
    }

    /// Rewinds the clock to `instant`.
    ///
    /// Only the simulator core may do this: it models concurrency by running
    /// the exchanges of one batch sequentially, restarting each from the
    /// batch's departure instant. From the outside the clock stays
    /// monotonic — the batch as a whole ends at the latest completion.
    pub(crate) fn rewind_to(&self, instant: SimInstant) {
        *self.now.lock() = instant;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_epoch() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
    }

    #[test]
    fn advance_accumulates() {
        let clock = SimClock::new();
        clock.advance(Duration::from_millis(5));
        clock.advance(Duration::from_micros(250));
        assert_eq!(clock.now().as_nanos(), 5_250_000);
    }

    #[test]
    fn clones_share_time() {
        let clock = SimClock::new();
        let clone = clock.clone();
        clock.advance(Duration::from_secs(1));
        assert_eq!(clone.now().as_secs_f64(), 1.0);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = SimClock::new();
        clock.advance(Duration::from_secs(10));
        clock.advance_to(SimInstant::from_nanos(5));
        assert_eq!(clock.now().as_secs_f64(), 10.0);
        clock.advance_to(SimInstant::from_nanos(11_000_000_000));
        assert_eq!(clock.now().as_secs_f64(), 11.0);
    }

    #[test]
    fn instant_arithmetic() {
        let a = SimInstant::from_nanos(1_000);
        let b = a.saturating_add(Duration::from_nanos(500));
        assert_eq!(b.as_nanos(), 1_500);
        assert_eq!(b.saturating_duration_since(a), Duration::from_nanos(500));
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        let t = SimInstant::from_nanos(1_500_000_000);
        assert_eq!(t.to_string(), "1.500000s");
    }

    #[test]
    fn elapsed_since_tracks_clock() {
        let clock = SimClock::new();
        let start = clock.now();
        clock.advance(Duration::from_millis(42));
        assert_eq!(clock.elapsed_since(start), Duration::from_millis(42));
    }
}
