//! Link characteristics: latency, jitter, loss and partitions.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Configuration of a (directed pair treated as symmetric) link between two
/// hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: Duration,
    /// Additional uniformly distributed one-way jitter in `[0, jitter)`.
    pub jitter: Duration,
    /// Probability that a plain datagram is lost (per direction).
    pub loss: f64,
    /// Probability that a plain request datagram is duplicated in flight:
    /// the destination service handles the payload twice and the redundant
    /// reply is discarded on the wire.
    pub duplicate: f64,
    /// Probability that a plain response datagram is reordered: it is held
    /// back by an extra delay in `[0, reorder_window)`, letting later
    /// responses overtake it within a concurrent batch.
    pub reorder: f64,
    /// Upper bound of the extra hold-back delay a reordered response
    /// suffers.
    pub reorder_window: Duration,
    /// When `true`, nothing gets through in either direction.
    pub blocked: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Duration::from_millis(10),
            jitter: Duration::from_millis(2),
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: Duration::from_millis(50),
            blocked: false,
        }
    }
}

impl LinkConfig {
    /// A symmetric link with the given one-way latency and no jitter or loss.
    pub fn with_latency(latency: Duration) -> Self {
        LinkConfig {
            latency,
            jitter: Duration::ZERO,
            ..LinkConfig::default()
        }
    }

    /// Sets the jitter bound, returning `self` for chaining.
    pub fn jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability, returning `self` for chaining.
    pub fn loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Sets the duplication probability, returning `self` for chaining.
    pub fn duplicate(mut self, duplicate: f64) -> Self {
        self.duplicate = duplicate.clamp(0.0, 1.0);
        self
    }

    /// Sets the reordering probability and hold-back window, returning
    /// `self` for chaining.
    pub fn reorder(mut self, reorder: f64, window: Duration) -> Self {
        self.reorder = reorder.clamp(0.0, 1.0);
        self.reorder_window = window;
        self
    }

    /// Marks the link as blocked (network partition).
    pub fn blocked(mut self) -> Self {
        self.blocked = true;
        self
    }

    /// Samples a one-way delay for a transmission over this link.
    pub fn sample_delay(&self, rng: &mut SimRng) -> Duration {
        if self.jitter.is_zero() {
            return self.latency;
        }
        let extra = rng.range_u64(0, u64::try_from(self.jitter.as_nanos()).unwrap_or(u64::MAX));
        self.latency + Duration::from_nanos(extra)
    }

    /// Samples whether a plain datagram is lost on this link.
    pub fn sample_loss(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.loss)
    }

    /// Samples whether a plain request datagram is duplicated on this link.
    /// Draws no randomness when duplication is disabled, so enabling the
    /// knob on one link leaves the random stream of every other exchange
    /// untouched.
    pub fn sample_duplicate(&self, rng: &mut SimRng) -> bool {
        self.duplicate > 0.0 && rng.chance(self.duplicate)
    }

    /// Samples the extra hold-back delay of a reordered response: `None`
    /// when the response is delivered in order (also drawing no randomness
    /// when reordering is disabled).
    pub fn sample_reorder(&self, rng: &mut SimRng) -> Option<Duration> {
        if self.reorder <= 0.0 || !rng.chance(self.reorder) {
            return None;
        }
        if self.reorder_window.is_zero() {
            return Some(Duration::ZERO);
        }
        let extra = rng.range_u64(
            0,
            u64::try_from(self.reorder_window.as_nanos()).unwrap_or(u64::MAX),
        );
        Some(Duration::from_nanos(extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_is_usable() {
        let cfg = LinkConfig::default();
        assert!(!cfg.blocked);
        assert_eq!(cfg.loss, 0.0);
        assert!(cfg.latency > Duration::ZERO);
    }

    #[test]
    fn builder_chain() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(30))
            .jitter(Duration::from_millis(5))
            .loss(0.25);
        assert_eq!(cfg.latency, Duration::from_millis(30));
        assert_eq!(cfg.jitter, Duration::from_millis(5));
        assert_eq!(cfg.loss, 0.25);
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(LinkConfig::default().loss(7.0).loss, 1.0);
        assert_eq!(LinkConfig::default().loss(-3.0).loss, 0.0);
    }

    #[test]
    fn sample_delay_within_bounds() {
        let cfg =
            LinkConfig::with_latency(Duration::from_millis(10)).jitter(Duration::from_millis(4));
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = cfg.sample_delay(&mut rng);
            assert!(d >= Duration::from_millis(10));
            assert!(d < Duration::from_millis(14));
        }
    }

    #[test]
    fn sample_delay_without_jitter_is_exact() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(7));
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(cfg.sample_delay(&mut rng), Duration::from_millis(7));
    }

    #[test]
    fn sample_loss_respects_probability() {
        let mut rng = SimRng::seed_from_u64(3);
        let lossless = LinkConfig::default();
        assert!(!(0..100).any(|_| lossless.sample_loss(&mut rng)));
        let lossy = LinkConfig::default().loss(1.0);
        assert!((0..10).all(|_| lossy.sample_loss(&mut rng)));
    }

    #[test]
    fn blocked_builder() {
        assert!(LinkConfig::default().blocked().blocked);
    }

    #[test]
    fn duplicate_and_reorder_builders() {
        let cfg = LinkConfig::default()
            .duplicate(0.4)
            .reorder(0.2, Duration::from_millis(80));
        assert_eq!(cfg.duplicate, 0.4);
        assert_eq!(cfg.reorder, 0.2);
        assert_eq!(cfg.reorder_window, Duration::from_millis(80));
    }

    #[test]
    fn duplicate_and_reorder_are_clamped() {
        assert_eq!(LinkConfig::default().duplicate(3.0).duplicate, 1.0);
        assert_eq!(LinkConfig::default().duplicate(-1.0).duplicate, 0.0);
        assert_eq!(
            LinkConfig::default().reorder(9.0, Duration::ZERO).reorder,
            1.0
        );
        assert_eq!(
            LinkConfig::default().reorder(-9.0, Duration::ZERO).reorder,
            0.0
        );
    }

    #[test]
    fn disabled_knobs_draw_no_randomness() {
        let cfg = LinkConfig::default();
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..10 {
            assert!(!cfg.sample_duplicate(&mut a));
            assert!(cfg.sample_reorder(&mut a).is_none());
        }
        // `a` drew nothing, so it still agrees with the untouched `b`.
        assert_eq!(a.gen_u64(), b.gen_u64());
    }

    #[test]
    fn sample_duplicate_respects_probability() {
        let mut rng = SimRng::seed_from_u64(4);
        let always = LinkConfig::default().duplicate(1.0);
        assert!((0..10).all(|_| always.sample_duplicate(&mut rng)));
    }

    #[test]
    fn sample_reorder_stays_within_window() {
        let cfg = LinkConfig::default().reorder(1.0, Duration::from_millis(25));
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            let extra = cfg.sample_reorder(&mut rng).expect("reorder always fires");
            assert!(extra < Duration::from_millis(25));
        }
    }
}
