//! Link characteristics: latency, jitter, loss and partitions.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Configuration of a (directed pair treated as symmetric) link between two
/// hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: Duration,
    /// Additional uniformly distributed one-way jitter in `[0, jitter)`.
    pub jitter: Duration,
    /// Probability that a plain datagram is lost (per direction).
    pub loss: f64,
    /// When `true`, nothing gets through in either direction.
    pub blocked: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Duration::from_millis(10),
            jitter: Duration::from_millis(2),
            loss: 0.0,
            blocked: false,
        }
    }
}

impl LinkConfig {
    /// A symmetric link with the given one-way latency and no jitter or loss.
    pub fn with_latency(latency: Duration) -> Self {
        LinkConfig {
            latency,
            jitter: Duration::ZERO,
            ..LinkConfig::default()
        }
    }

    /// Sets the jitter bound, returning `self` for chaining.
    pub fn jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability, returning `self` for chaining.
    pub fn loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Marks the link as blocked (network partition).
    pub fn blocked(mut self) -> Self {
        self.blocked = true;
        self
    }

    /// Samples a one-way delay for a transmission over this link.
    pub fn sample_delay(&self, rng: &mut SimRng) -> Duration {
        if self.jitter.is_zero() {
            return self.latency;
        }
        let extra = rng.range_u64(0, self.jitter.as_nanos() as u64);
        self.latency + Duration::from_nanos(extra)
    }

    /// Samples whether a plain datagram is lost on this link.
    pub fn sample_loss(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_is_usable() {
        let cfg = LinkConfig::default();
        assert!(!cfg.blocked);
        assert_eq!(cfg.loss, 0.0);
        assert!(cfg.latency > Duration::ZERO);
    }

    #[test]
    fn builder_chain() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(30))
            .jitter(Duration::from_millis(5))
            .loss(0.25);
        assert_eq!(cfg.latency, Duration::from_millis(30));
        assert_eq!(cfg.jitter, Duration::from_millis(5));
        assert_eq!(cfg.loss, 0.25);
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(LinkConfig::default().loss(7.0).loss, 1.0);
        assert_eq!(LinkConfig::default().loss(-3.0).loss, 0.0);
    }

    #[test]
    fn sample_delay_within_bounds() {
        let cfg =
            LinkConfig::with_latency(Duration::from_millis(10)).jitter(Duration::from_millis(4));
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = cfg.sample_delay(&mut rng);
            assert!(d >= Duration::from_millis(10));
            assert!(d < Duration::from_millis(14));
        }
    }

    #[test]
    fn sample_delay_without_jitter_is_exact() {
        let cfg = LinkConfig::with_latency(Duration::from_millis(7));
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(cfg.sample_delay(&mut rng), Duration::from_millis(7));
    }

    #[test]
    fn sample_loss_respects_probability() {
        let mut rng = SimRng::seed_from_u64(3);
        let lossless = LinkConfig::default();
        assert!(!(0..100).any(|_| lossless.sample_loss(&mut rng)));
        let lossy = LinkConfig::default().loss(1.0);
        assert!((0..10).all(|_| lossy.sample_loss(&mut rng)));
    }

    #[test]
    fn blocked_builder() {
        assert!(LinkConfig::default().blocked().blocked);
    }
}
