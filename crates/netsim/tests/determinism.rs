//! Integration tests for the simulator's headline property: runs are
//! deterministic functions of their seed, and metrics account for every
//! transaction.

use std::time::Duration;

use proptest::prelude::*;
use sdoh_netsim::{
    ChannelKind, FnService, LinkConfig, OffPathSpoofer, ServiceResponse, SimAddr, SimNet,
    SpoofStrategy,
};

fn run_workload(
    seed: u64,
    requests: u32,
    loss: f64,
    spoof: f64,
) -> (Vec<Result<Vec<u8>, String>>, u64, sdoh_netsim::Metrics) {
    let net = SimNet::new(seed);
    net.set_default_link(
        LinkConfig::with_latency(Duration::from_millis(7))
            .jitter(Duration::from_millis(3))
            .loss(loss),
    );
    let server = SimAddr::v4(192, 0, 2, 1, 53);
    net.register(
        server,
        FnService::new("echo", |_ctx, _from, _ch, p: &[u8]| {
            ServiceResponse::Reply(p.to_vec())
        }),
    );
    if spoof > 0.0 {
        net.set_adversary(OffPathSpoofer::new(
            SpoofStrategy::FixedProbability(spoof),
            |_q, _rng| Some(b"forged".to_vec()),
        ));
    }
    let client = SimAddr::v4(10, 0, 0, 1, 40000);
    let mut outcomes = Vec::new();
    for i in 0..requests {
        let channel = if i % 2 == 0 {
            ChannelKind::Plain
        } else {
            ChannelKind::Secure
        };
        let result = net
            .transact(
                client,
                server,
                channel,
                format!("req-{i}").as_bytes(),
                Duration::from_secs(1),
            )
            .map_err(|e| e.to_string());
        outcomes.push(result);
    }
    (outcomes, net.now().as_nanos(), net.metrics())
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = run_workload(1234, 50, 0.1, 0.3);
    let b = run_workload(1234, 50, 0.1, 0.3);
    assert_eq!(a.0, b.0, "same outcomes");
    assert_eq!(a.1, b.1, "same virtual end time");
    assert_eq!(a.2, b.2, "same metrics");
}

#[test]
fn different_seeds_usually_differ() {
    let a = run_workload(1, 50, 0.2, 0.5);
    let b = run_workload(2, 50, 0.2, 0.5);
    assert!(
        a.0 != b.0 || a.1 != b.1,
        "two seeds producing bit-identical noisy runs is vanishingly unlikely"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Metrics always account for every request: each request either gets a
    /// response, times out, or hits an unreachable endpoint.
    #[test]
    fn metrics_account_for_every_request(
        seed in any::<u64>(),
        requests in 1u32..40,
        loss in 0.0f64..0.5,
        spoof in 0.0f64..1.0,
    ) {
        let (outcomes, _, metrics) = run_workload(seed, requests, loss, spoof);
        prop_assert_eq!(metrics.requests, requests as u64);
        prop_assert_eq!(
            metrics.responses + metrics.timeouts + metrics.unreachable,
            requests as u64
        );
        let successes = outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        prop_assert_eq!(successes, metrics.responses);
        // Forged responses only ever happen on plain channels.
        prop_assert!(metrics.forged_responses <= metrics.plain_requests);
        prop_assert_eq!(metrics.plain_requests + metrics.secure_requests, requests as u64);
    }

    /// Virtual time only moves forward and grows with traffic.
    #[test]
    fn virtual_time_is_monotone(seed in any::<u64>(), requests in 1u32..30) {
        let (_, end_a, _) = run_workload(seed, requests, 0.0, 0.0);
        let (_, end_b, _) = run_workload(seed, requests + 5, 0.0, 0.0);
        prop_assert!(end_a > 0);
        prop_assert!(end_b >= end_a);
    }
}
