//! The five lint rules, as token-pattern matchers over a [`FileView`].
//!
//! Every matcher works on the significant-token stream (comments and
//! string contents are invisible), and every rule except the vocabulary
//! check skips tokens inside test items — panicking, wall clocks and
//! scratch metric names are all legitimate in tests.

use std::collections::BTreeSet;

use crate::engine::FileView;
use crate::lexer::TokenKind;
use crate::report::Diagnostic;

/// Identifier of one lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No locks or allocations in the configured serving-path modules.
    HotPathPurity,
    /// No ambient wall clock or OS entropy in sim-facing crates.
    Determinism,
    /// No panicking constructs in non-test library code.
    NoPanic,
    /// No bare `as` casts to numeric types that can lose value.
    NoNarrowingCast,
    /// Every `sdoh_*` metric-name literal must be in the shared vocabulary.
    MetricsVocabulary,
    /// Nothing reachable from the serving entry points may lock, allocate
    /// or panic (whole-workspace call-graph rule, see [`crate::graph`]).
    TransitiveHotPathPurity,
    /// No ambient wall clock or OS entropy reachable from the sim-facing
    /// crates' public entry points (call-graph rule).
    TransitiveDeterminism,
    /// The control-plane lock-acquisition graph must be acyclic
    /// (call-graph rule).
    LockOrder,
}

impl RuleId {
    pub const ALL: [RuleId; 8] = [
        RuleId::HotPathPurity,
        RuleId::Determinism,
        RuleId::NoPanic,
        RuleId::NoNarrowingCast,
        RuleId::MetricsVocabulary,
        RuleId::TransitiveHotPathPurity,
        RuleId::TransitiveDeterminism,
        RuleId::LockOrder,
    ];

    /// The rules that run per file over token patterns. The remaining
    /// rules need the whole-workspace call graph and run once per sweep.
    pub const FILE_LOCAL: [RuleId; 5] = [
        RuleId::HotPathPurity,
        RuleId::Determinism,
        RuleId::NoPanic,
        RuleId::NoNarrowingCast,
        RuleId::MetricsVocabulary,
    ];

    /// Whether this rule runs on the workspace call graph rather than on
    /// one file's token stream.
    pub fn is_graph_rule(self) -> bool {
        matches!(
            self,
            RuleId::TransitiveHotPathPurity | RuleId::TransitiveDeterminism | RuleId::LockOrder
        )
    }

    /// The kebab-case rule id used in diagnostics and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HotPathPurity => "hot-path-purity",
            RuleId::Determinism => "determinism",
            RuleId::NoPanic => "no-panic",
            RuleId::NoNarrowingCast => "no-narrowing-cast",
            RuleId::MetricsVocabulary => "metrics-vocabulary",
            RuleId::TransitiveHotPathPurity => "transitive-hot-path-purity",
            RuleId::TransitiveDeterminism => "transitive-determinism",
            RuleId::LockOrder => "lock-order",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::HotPathPurity => {
                "no locks or allocations in the configured serving-path modules (file-local)"
            }
            RuleId::Determinism => {
                "no ambient wall clock or OS entropy in sim-facing crates (file-local)"
            }
            RuleId::NoPanic => "no panicking constructs in non-test library code (file-local)",
            RuleId::NoNarrowingCast => {
                "no bare `as` casts to numeric types that can lose value (file-local)"
            }
            RuleId::MetricsVocabulary => {
                "every sdoh_* metric-name literal must be in the shared vocabulary (file-local)"
            }
            RuleId::TransitiveHotPathPurity => {
                "nothing reachable from the serving entry points may lock, allocate or panic (call graph)"
            }
            RuleId::TransitiveDeterminism => {
                "no wall clock or OS entropy reachable from sim-facing public entry points (call graph)"
            }
            RuleId::LockOrder => {
                "the control-plane lock-acquisition graph must be acyclic (call graph)"
            }
        }
    }

    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }
}

/// All rule names, for error messages.
pub fn known_rule_names() -> Vec<&'static str> {
    RuleId::ALL.iter().map(|r| r.name()).collect()
}

/// Run one rule over a file view, appending diagnostics.
pub fn run_rule(
    rule: RuleId,
    file: &str,
    view: &FileView<'_>,
    vocab: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    match rule {
        RuleId::HotPathPurity => hot_path_purity(file, view, out),
        RuleId::Determinism => determinism(file, view, out),
        RuleId::NoPanic => no_panic(file, view, out),
        RuleId::NoNarrowingCast => no_narrowing_cast(file, view, out),
        RuleId::MetricsVocabulary => metrics_vocabulary(file, view, vocab, out),
        // Graph rules run once per sweep over the workspace call graph,
        // not per file — see `crate::graph`.
        RuleId::TransitiveHotPathPurity | RuleId::TransitiveDeterminism | RuleId::LockOrder => {}
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    file: &str,
    rule: RuleId,
    view: &FileView<'_>,
    si: usize,
    message: String,
) {
    let (line, col) = view.sig_pos(si);
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        col,
        rule: rule.name(),
        message,
    });
}

/// `.name(` — a method call on some receiver.
fn is_method_call(view: &FileView<'_>, si: usize, name: &str) -> bool {
    view.is_punct(si, '.') && view.sig_text(si + 1) == name && view.is_punct(si + 2, '(')
}

/// `Head::tail` — a two-segment path suffix.
fn is_path2(view: &FileView<'_>, si: usize, head: &str, tail: &str) -> bool {
    view.sig_text(si) == head
        && view.is_punct(si + 1, ':')
        && view.is_punct(si + 2, ':')
        && view.sig_text(si + 3) == tail
}

/// `name!` — a macro invocation.
fn is_macro(view: &FileView<'_>, si: usize, name: &str) -> bool {
    view.sig_text(si) == name
        && view.sig_kind(si) == Some(TokenKind::Ident)
        && view.is_punct(si + 1, '!')
}

fn hot_path_purity(file: &str, view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    for si in 0..view.sig_len() {
        if view.in_test(si) {
            continue;
        }
        if is_method_call(view, si, "lock") {
            push(out, file, RuleId::HotPathPurity, view, si + 1,
                "`.lock()` on a serving-path module: the hot path must stay lock-free; move the locking off the query path or allowlist a cold-path use".to_string());
        } else if is_method_call(view, si, "to_vec") {
            push(out, file, RuleId::HotPathPurity, view, si + 1,
                "`.to_vec()` allocates on a serving-path module: reuse a buffer or allowlist a cold-path use".to_string());
        } else if is_method_call(view, si, "collect") {
            push(out, file, RuleId::HotPathPurity, view, si + 1,
                "`.collect()` allocates on a serving-path module: reuse a buffer or allowlist a cold-path use".to_string());
        } else if is_path2(view, si, "Box", "new") {
            push(out, file, RuleId::HotPathPurity, view, si,
                "`Box::new` allocates on a serving-path module: preallocate or allowlist a cold-path use".to_string());
        } else if is_path2(view, si, "Vec", "new") {
            push(out, file, RuleId::HotPathPurity, view, si,
                "`Vec::new` allocates on a serving-path module: preallocate or allowlist a cold-path use".to_string());
        } else if is_macro(view, si, "format") {
            push(out, file, RuleId::HotPathPurity, view, si,
                "`format!` allocates on a serving-path module: preformat off the hot path or allowlist a cold-path use".to_string());
        } else if is_macro(view, si, "vec") {
            push(out, file, RuleId::HotPathPurity, view, si,
                "`vec!` allocates on a serving-path module: preallocate or allowlist a cold-path use".to_string());
        }
    }
}

/// Identifiers that reach for ambient OS entropy.
const ENTROPY_IDENTS: [&str; 4] = ["OsRng", "thread_rng", "from_entropy", "getrandom"];

fn determinism(file: &str, view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    for si in 0..view.sig_len() {
        if view.in_test(si) {
            continue;
        }
        if is_path2(view, si, "Instant", "now") || is_path2(view, si, "SystemTime", "now") {
            push(out, file, RuleId::Determinism, view, si, format!(
                "`{}::now()` reads the ambient wall clock in a sim-facing crate: inject time through the seeded simulator clock (wall clock is a `runtime`-only privilege)",
                view.sig_text(si)));
        } else if view.sig_kind(si) == Some(TokenKind::Ident)
            && ENTROPY_IDENTS.contains(&view.sig_text(si))
        {
            push(out, file, RuleId::Determinism, view, si, format!(
                "`{}` draws ambient OS entropy in a sim-facing crate: all randomness must flow from the campaign seed",
                view.sig_text(si)));
        }
    }
}

/// Keyword-ish identifiers that can legitimately precede a `[` that is not
/// an indexing expression (array types, slice patterns, array literals).
const NON_INDEX_PRECEDERS: [&str; 22] = [
    "mut", "ref", "dyn", "in", "as", "return", "break", "continue", "else", "move", "where",
    "impl", "for", "if", "while", "match", "let", "pub", "const", "static", "fn", "unsafe",
];

fn no_panic(file: &str, view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    for si in 0..view.sig_len() {
        if view.in_test(si) {
            continue;
        }
        if is_method_call(view, si, "unwrap") {
            push(out, file, RuleId::NoPanic, view, si + 1,
                "`.unwrap()` in library code: return a `Result`, or allowlist with the invariant that makes failure impossible".to_string());
        } else if is_method_call(view, si, "expect") {
            push(out, file, RuleId::NoPanic, view, si + 1,
                "`.expect()` in library code: return a `Result`, or allowlist with the invariant that makes failure impossible".to_string());
        } else if is_macro(view, si, "panic")
            || is_macro(view, si, "unreachable")
            || is_macro(view, si, "todo")
            || is_macro(view, si, "unimplemented")
        {
            push(out, file, RuleId::NoPanic, view, si, format!(
                "`{}!` in library code: return an error, or allowlist with the invariant that makes this unreachable",
                view.sig_text(si)));
        } else if view.is_punct(si, '[') && is_indexing_bracket(view, si) {
            push(out, file, RuleId::NoPanic, view, si,
                "indexing (`[...]`) can panic in library code: use `.get()`, or allowlist with the bounds invariant".to_string());
        }
    }
}

/// Heuristic: a `[` is an indexing/slicing expression when the previous
/// significant token could end an expression — an identifier (other than a
/// keyword), a closing `)`/`]`, or the `?` operator. Attributes (`#[...]`),
/// macro brackets (`vec![...]`), array types (`: [u8; 4]`) and array
/// literals (`= [1, 2]`) are all preceded by other tokens and are skipped.
pub(crate) fn is_indexing_bracket(view: &FileView<'_>, si: usize) -> bool {
    let Some(prev) = si.checked_sub(1) else {
        return false;
    };
    if view.is_punct(prev, ')') || view.is_punct(prev, ']') || view.is_punct(prev, '?') {
        return true;
    }
    view.sig_kind(prev) == Some(TokenKind::Ident)
        && !NON_INDEX_PRECEDERS.contains(&view.sig_text(prev))
}

/// Cast targets that can lose value from some wider or differently-signed
/// source. `f64`, `u128` and `i128` are exempt: nothing in this workspace
/// is wider, and counters-to-`f64` conversions are the metrics plane's
/// documented representation.
const NARROW_TARGETS: [&str; 11] = [
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "f32",
];

fn no_narrowing_cast(file: &str, view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    for si in 0..view.sig_len() {
        if view.in_test(si) {
            continue;
        }
        if view.sig_text(si) == "as"
            && view.sig_kind(si) == Some(TokenKind::Ident)
            && NARROW_TARGETS.contains(&view.sig_text(si + 1))
        {
            push(out, file, RuleId::NoNarrowingCast, view, si, format!(
                "bare `as {}` can truncate or re-interpret: use `From`/`TryFrom` or a checked/saturating conversion, or allowlist with why value loss is impossible",
                view.sig_text(si + 1)));
        }
    }
}

/// The prefix every exported metric name carries. Assembled so this file's
/// own literal does not itself look like a metric name.
const METRIC_PREFIX: &str = "sdoh_";

/// Does a string literal's inner text look like one of our metric names?
fn is_metric_name(inner: &str) -> bool {
    inner.len() > METRIC_PREFIX.len()
        && inner.starts_with(METRIC_PREFIX)
        && inner
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Extract the inner text of a string literal token (between the outermost
/// quotes). Returns `None` for literals with escapes, which metric names
/// never contain.
pub fn string_literal_inner(text: &str) -> Option<&str> {
    let first = text.find('"')?;
    let last = text.rfind('"')?;
    if last <= first {
        return None;
    }
    let inner = text.get(first + 1..last)?;
    if inner.contains('\\') {
        return None;
    }
    Some(inner)
}

fn metrics_vocabulary(
    file: &str,
    view: &FileView<'_>,
    vocab: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for si in 0..view.sig_len() {
        if view.in_test(si) || view.sig_kind(si) != Some(TokenKind::Str) {
            continue;
        }
        let Some(inner) = string_literal_inner(view.sig_text(si)) else {
            continue;
        };
        if is_metric_name(inner) && !vocab.contains(inner) {
            push(out, file, RuleId::MetricsVocabulary, view, si, format!(
                "metric name `{inner}` is not in the shared vocabulary: add it, with a help string, to the tables in crates/core/src/serve/samples.rs"));
        }
    }
}
