//! Workspace walking and rule scoping: which files are scanned, which
//! rules apply to each, and where the shared metric vocabulary lives.
//!
//! The scan covers every workspace member's `src/` tree plus the umbrella
//! crate's `src/`. Exemptions, by design rather than omission:
//!
//! - `crates/compat/**` — vendored stand-ins for unavailable registry
//!   dependencies; not our code to annotate.
//! - `tests/`, `benches/`, `examples/` — panics, wall clocks and scratch
//!   metric names are all legitimate outside the library.
//! - `crates/bench/src/**` — the experiment harness: binaries that drive
//!   the stack and panic on broken environments by design. The vocabulary
//!   rule still applies there, because experiments asserting on metric
//!   names is exactly the drift the rule exists to catch.
//! - `src/**` (the umbrella crate's scenario layer) — like bench, it is
//!   attended scaffolding: it wires fixed, self-consistent topologies for
//!   examples, integration tests and experiments, where a panic on a
//!   mis-built fixture is the desired failure mode. Determinism and the
//!   vocabulary rule still apply.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::{self, FileAnalysis};
use crate::graph::{self, Entry, GraphConfig};
use crate::lexer::{lex, TokenKind};
use crate::report::{Diagnostic, Report};
use crate::rules::{string_literal_inner, RuleId};

/// Path of the vocabulary module, relative to the workspace root.
pub const VOCABULARY_PATH: &str = "crates/core/src/serve/samples.rs";

/// Sim-facing crates where ambient wall clock and OS entropy are banned.
const DETERMINISM_CRATES: [&str; 6] = ["netsim", "chaos", "core", "dns-server", "doh", "ntp"];

/// Serving-path modules that must stay lock- and allocation-free.
const HOT_PATH_FILES: [&str; 1] = ["crates/runtime/src/runtime.rs"];
const HOT_PATH_PREFIXES: [&str; 1] = ["crates/core/src/serve/"];

/// Which rules apply to a workspace-relative path (with `/` separators).
pub fn rules_for(rel: &str) -> Vec<RuleId> {
    let mut rules = Vec::new();
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");

    if HOT_PATH_FILES.contains(&rel) || HOT_PATH_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        rules.push(RuleId::HotPathPurity);
    }
    if DETERMINISM_CRATES.contains(&crate_name) {
        rules.push(RuleId::Determinism);
    }
    // The experiment harness and the umbrella scenario layer may panic
    // and cast freely: both run attended (experiments, examples, fixture
    // builders), and their arithmetic is reporting, not security math.
    let attended = crate_name == "bench" || !rel.starts_with("crates/");
    if !attended {
        rules.push(RuleId::NoPanic);
        rules.push(RuleId::NoNarrowingCast);
    }
    if rel != VOCABULARY_PATH {
        rules.push(RuleId::MetricsVocabulary);
    }
    rules
}

/// Build the metric-name vocabulary from the tables in
/// [`VOCABULARY_PATH`]: every string literal in that file that looks like
/// a metric name is vocabulary (the file's own tests pin that each row
/// also carries a non-empty help string).
pub fn vocabulary_from_source(source: &str) -> BTreeSet<String> {
    let mut vocab = BTreeSet::new();
    for token in lex(source) {
        if token.kind != TokenKind::Str {
            continue;
        }
        let Some(text) = source.get(token.start..token.end) else {
            continue;
        };
        if let Some(inner) = string_literal_inner(text) {
            if inner.starts_with("sdoh") {
                vocab.insert(inner.to_string());
            }
        }
    }
    vocab
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// The `src/` trees the workspace scan covers.
fn scan_roots(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut members: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() && name != "compat" {
            members.push(path.join("src"));
        }
    }
    members.sort();
    roots.extend(members);
    Ok(roots)
}

/// Workspace-relative path with forward slashes.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut label = String::new();
    for comp in rel.components() {
        if !label.is_empty() {
            label.push('/');
        }
        label.push_str(&comp.as_os_str().to_string_lossy());
    }
    label
}

/// The call-graph configuration for *this* workspace: where the serving
/// path starts, which crates must stay deterministic, and which crates'
/// locks feed the lock-order analysis.
pub fn graph_config() -> GraphConfig {
    GraphConfig {
        // The shard serving path: the dispatcher that routes wire queries
        // to shards, the per-shard worker loop, the wire-level serve
        // helper, and the resolver entry points they dispatch into
        // (`handle_query` is reached through `dyn QueryHandler`, which
        // call resolution deliberately does not follow — so the concrete
        // implementation is an entry point of its own).
        purity_entries: vec![
            Entry::free("runtime", "dispatcher_loop"),
            Entry::free("runtime", "worker_loop"),
            Entry::free("runtime", "serve_wire"),
            Entry::method("core", "CachingPoolResolver", "handle_query"),
            Entry::method("core", "CachingPoolResolver", "serve_batch"),
        ],
        determinism_crates: DETERMINISM_CRATES.iter().map(|c| c.to_string()).collect(),
        lock_crates: vec!["runtime".to_string()],
    }
}

/// Options for a workspace lint run.
#[derive(Debug, Default)]
pub struct LintOptions {
    /// Run only these rules (all eight when `None`). The directive
    /// pseudo-rules (`unused-allow`, `bad-directive`) always run.
    pub rule_filter: Option<Vec<RuleId>>,
    /// Also serialize the call graph (returned in [`Report::callgraph`]).
    pub emit_callgraph: bool,
}

/// Lint the whole workspace rooted at `root` with all rules enabled.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_with(root, &LintOptions::default())
}

/// Lint the whole workspace rooted at `root`.
///
/// Three phases: (1) scan every file on a scoped thread pool, running the
/// file-local rules and the item parser; (2) build the call graph and run
/// the transitive rules; (3) apply allow directives, collapse file-local/
/// transitive twins, and sort by `(file, line, col, rule)` so output is
/// deterministic regardless of walk order or thread interleaving.
pub fn lint_workspace_with(root: &Path, options: &LintOptions) -> Result<Report, String> {
    let vocab_path = root.join(VOCABULARY_PATH);
    let vocab_source = fs::read_to_string(&vocab_path)
        .map_err(|e| format!("cannot read vocabulary {}: {e}", vocab_path.display()))?;
    let vocab = vocabulary_from_source(&vocab_source);
    if vocab.is_empty() {
        return Err(format!(
            "vocabulary {} contains no metric names — refusing to lint against an empty vocabulary",
            vocab_path.display()
        ));
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for scan_root in scan_roots(root)? {
        if scan_root.is_dir() {
            collect_rs_files(&scan_root, &mut files)?;
        }
    }

    let enabled: Vec<RuleId> = match &options.rule_filter {
        Some(filter) => filter.clone(),
        None => RuleId::ALL.to_vec(),
    };

    // Phase 1: parallel per-file analysis. Results carry their file index
    // so the merged order is the sorted file order, not thread order.
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<FileAnalysis, Diagnostic>)>> =
        Mutex::new(Vec::with_capacity(files.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(files.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(path) = files.get(i) else { break };
                let rel = relative_label(root, path);
                let item = match fs::read_to_string(path) {
                    Ok(source) => {
                        let rules: Vec<RuleId> = rules_for(&rel)
                            .into_iter()
                            .filter(|r| enabled.contains(r))
                            .collect();
                        Ok(engine::analyze_source(&rel, &source, &rules, &vocab))
                    }
                    Err(e) => Err(Diagnostic {
                        file: rel,
                        line: 0,
                        col: 0,
                        rule: "io-error",
                        message: format!("cannot read file: {e}"),
                    }),
                };
                // A poisoned mutex only means another worker panicked while
                // pushing; the vector itself is still usable.
                let mut slot = results.lock().unwrap_or_else(|p| p.into_inner());
                slot.push((i, item));
            });
        }
    });
    let mut collected = results.into_inner().unwrap_or_else(|p| p.into_inner());
    collected.sort_by_key(|(i, _)| *i);

    let mut report = Report::default();
    let mut analyses: Vec<FileAnalysis> = Vec::with_capacity(collected.len());
    for (_, item) in collected {
        match item {
            Ok(analysis) => {
                analyses.push(analysis);
                report.files_scanned += 1;
            }
            Err(diag) => report.diagnostics.push(diag),
        }
    }

    // Phase 2: the whole-workspace call-graph rules.
    report.callgraph = graph::run_graph_rules(
        &mut analyses,
        &graph_config(),
        &enabled,
        options.emit_callgraph,
    );

    // Phase 3: allows, dedup, deterministic sort.
    report
        .diagnostics
        .extend(engine::finalize(analyses, &enabled));
    report.diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(report)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
