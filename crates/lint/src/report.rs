//! Diagnostic type and the two output formats: human `file:line:col` lines
//! and a machine-readable JSON report (hand-rolled — this crate has zero
//! dependencies).

/// One finding: where, which rule, and what to do about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (characters).
    pub col: usize,
    /// Rule id (`no-panic`, ...) or pseudo-rule (`unused-allow`,
    /// `bad-directive`, `io-error`).
    pub rule: &'static str,
    pub message: String,
}

/// The result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    /// The serialized call graph, when the run asked for it
    /// (`--emit-callgraph`). Not part of the JSON diagnostics report.
    pub callgraph: Option<String>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Render diagnostics as `file:line:col: rule: message` lines plus a
/// trailing summary.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            d.file, d.line, d.col, d.rule, d.message
        ));
    }
    out.push_str(&format!(
        "sdoh-lint: {} diagnostic(s) across {} file(s) scanned\n",
        report.diagnostics.len(),
        report.files_scanned
    ));
    out
}

/// Render the report as JSON.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"diagnostic_count\": {},\n",
        report.diagnostics.len()
    ));
    out.push_str("  \"diagnostics\": [");
    let mut first = true;
    for d in &report.diagnostics {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&d.file),
            d.line,
            d.col,
            json_string(d.rule),
            json_string(&d.message)
        ));
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escape a string for JSON output.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                file: "x.rs".to_string(),
                line: 3,
                col: 7,
                rule: "no-panic",
                message: "don't".to_string(),
            }],
            files_scanned: 1,
            callgraph: None,
        };
        let json = render_json(&report);
        assert!(json.contains("\"files_scanned\": 1"));
        assert!(json.contains("\"diagnostic_count\": 1"));
        assert!(json.contains("\"rule\": \"no-panic\""));
        let human = render_human(&report);
        assert!(human.contains("x.rs:3:7: no-panic: don't"));
    }
}
