//! Item-level parsing on top of the lexer: functions, impl blocks, modules
//! and `use` imports, with per-function *facts* — calls made, locks taken,
//! allocation/formatting sites, panic sites, ambient clock/entropy reads.
//!
//! This is deliberately **not** a Rust parser. It is a single recursive
//! walk over the significant-token stream that recognizes just enough item
//! structure to attribute every fact to the function containing it, and
//! just enough of each call expression to resolve it later (see
//! [`crate::graph`]): the callee path segments, whether the receiver of a
//! method call is `self` or a typed parameter, and the declared types of
//! parameters. Everything it cannot classify lands in a conservative
//! "unknown callee" bucket rather than silently vanishing — the graph
//! rules report how many calls they could not follow.

use crate::engine::FileView;
use crate::lexer::TokenKind;

/// Keywords that can precede `(` without being a call.
const CALL_KEYWORDS: [&str; 10] = [
    "if", "else", "match", "while", "for", "loop", "return", "fn", "in", "move",
];

/// What kind of invariant-relevant operation a [`Fact`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactKind {
    /// A `.lock()` acquisition.
    Lock,
    /// An allocation or formatting site (`Box::new`, `Vec::new`, `vec!`,
    /// `format!`, `.to_vec()`, `.collect()`) — the same vocabulary the
    /// file-local `hot-path-purity` rule matches.
    Alloc,
    /// A panicking construct (`unwrap`/`expect`/`panic!`/`unreachable!`/
    /// `todo!`/`unimplemented!`/indexing) — the `no-panic` vocabulary.
    Panic,
    /// An ambient wall-clock read (`Instant::now`, `SystemTime::now`).
    Clock,
    /// An ambient OS-entropy draw (`OsRng`, `thread_rng`, ...).
    Entropy,
}

/// One invariant-relevant site inside a function body.
#[derive(Clone, Debug)]
pub struct Fact {
    pub kind: FactKind,
    /// Human description of the construct (`.lock()`, `format!`, ...).
    pub what: String,
    pub line: usize,
    pub col: usize,
}

/// The receiver of a method call, as far as the token stream tells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Receiver {
    /// `self.method(...)` — resolve against the enclosing impl type.
    SelfRecv,
    /// `param.method(...)` where `param` is a parameter with a declared
    /// type we captured — resolve against that type.
    Param(String),
    /// Anything else: field chains, call results, locals. Resolved by
    /// method name across the workspace, conservatively.
    Other,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub callee: Callee,
    pub line: usize,
    pub col: usize,
}

/// The shape of a call expression.
#[derive(Clone, Debug)]
pub enum Callee {
    /// `foo(...)` or `path::to::foo(...)` — the full segment list, last
    /// segment is the function name.
    Path(Vec<String>),
    /// `.name(...)` with the classified receiver.
    Method { name: String, receiver: Receiver },
}

/// The declared type of a function parameter, reduced to what resolution
/// needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamType {
    /// A named (possibly generic) type — the last path segment.
    Named(String),
    /// `dyn Trait`, `impl Trait`, generics, or anything else we cannot
    /// name statically. Method calls on these go to the unknown bucket.
    Opaque,
}

/// A lock-lifetime-relevant event inside a function body, in source order.
/// The lock-order rule replays these to approximate which locks are held
/// when another lock is acquired or a call is made.
#[derive(Clone, Debug)]
pub enum LockEvent {
    /// A `.lock()` acquisition. `bound` means the guard was bound with
    /// `let` (held to the end of the enclosing block); unbound guards are
    /// temporaries dropped at the end of their statement.
    Acquire {
        lock: String,
        bound: bool,
        depth: usize,
        line: usize,
        col: usize,
    },
    /// A call, by index into [`FnRecord::calls`].
    Call { index: usize, depth: usize },
    /// A `;` at the given depth — temporaries die here.
    StatementEnd { depth: usize },
    /// A `}` closing a block; `depth` is the depth *after* closing —
    /// `let`-bound guards acquired deeper than this die here.
    BlockClose { depth: usize },
}

/// One parsed function (or method) and its facts.
#[derive(Clone, Debug)]
pub struct FnRecord {
    /// Workspace crate key (directory name under `crates/`, or the
    /// umbrella pseudo-crate) — see [`crate_of`].
    pub crate_name: String,
    /// Enclosing `mod` path inside the file.
    pub module_path: Vec<String>,
    /// The impl/trait type this is a method of, if any.
    pub self_type: Option<String>,
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Line of the `fn` keyword.
    pub def_line: usize,
    /// Last line of the body (== `def_line` for bodyless declarations).
    pub end_line: usize,
    /// Carried any `pub` marker (including `pub(crate)`).
    pub is_pub: bool,
    /// Defined inside a test item — excluded from every graph rule.
    pub in_test: bool,
    pub facts: Vec<Fact>,
    pub calls: Vec<CallSite>,
    pub lock_events: Vec<LockEvent>,
    /// Parameter name → declared type, for receiver resolution.
    pub params: Vec<(String, ParamType)>,
}

impl FnRecord {
    /// `crate::Type::name`-style display label used in call chains.
    pub fn label(&self) -> String {
        match &self.self_type {
            Some(ty) => format!("{}::{}::{}", self.crate_name, ty, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// A `use` import: the name it binds in this file → the full path.
#[derive(Clone, Debug)]
pub struct Import {
    pub name: String,
    pub path: Vec<String>,
}

/// Everything the parser extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    pub functions: Vec<FnRecord>,
    pub imports: Vec<Import>,
}

/// The workspace crate key of a workspace-relative path: the directory
/// name under `crates/` (`core`, `runtime`, ...), or `secure-doh` for the
/// umbrella crate's `src/` tree.
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("secure-doh")
        .to_string()
}

/// Maps a path's first segment (a crate alias as written in source:
/// `sdoh_core`, `crate`, `secure_doh`) to the workspace crate key, given
/// the crate the reference appears in. `None` for `std`, `core` (the
/// language crate), and every other non-workspace root.
pub fn crate_alias(seg: &str, current: &str) -> Option<String> {
    match seg {
        "crate" | "self" | "super" => Some(current.to_string()),
        "secure_doh" => Some("secure-doh".to_string()),
        _ => seg.strip_prefix("sdoh_").map(|rest| rest.replace('_', "-")),
    }
}

/// Parses one file's items. `rel` selects the crate key; the view must be
/// built from the same source.
pub fn parse_file(rel: &str, view: &FileView<'_>) -> FileItems {
    let mut items = FileItems::default();
    let mut parser = Parser {
        view,
        file: rel.to_string(),
        crate_name: crate_of(rel),
        items: &mut items,
    };
    let len = parser.view.sig_len();
    parser.parse_items(0, len, &mut Vec::new(), None);
    items
}

struct Parser<'a, 'v> {
    view: &'a FileView<'v>,
    file: String,
    crate_name: String,
    items: &'a mut FileItems,
}

impl Parser<'_, '_> {
    fn text(&self, si: usize) -> &str {
        self.view.sig_text(si)
    }

    fn is(&self, si: usize, c: char) -> bool {
        self.view.is_punct(si, c)
    }

    /// Index just past the bracket structure opening at `si` (which must
    /// be `(`, `[` or `{`). Counts all three bracket kinds.
    fn skip_balanced(&self, si: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = si;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Index just past a generic parameter list opening at `si` (`<`).
    fn skip_generics(&self, si: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = si;
        while i < end {
            match self.text(i) {
                "<" => depth += 1,
                ">" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                // `->` inside Fn(...) -> Ret generics: the `>` of `->`
                // must not close our angle depth.
                "-" if self.is(i + 1, '>') => i += 1,
                "(" | "[" | "{" => {
                    i = self.skip_balanced(i, end);
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Index just past the `;`-terminated item starting at `si` (skipping
    /// bracket structures on the way).
    fn skip_to_semicolon(&self, si: usize, end: usize) -> usize {
        let mut i = si;
        while i < end {
            match self.text(i) {
                ";" => return i + 1,
                "(" | "[" | "{" => {
                    i = self.skip_balanced(i, end);
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// The recursive item walk over `[si, end)`.
    fn parse_items(
        &mut self,
        mut si: usize,
        end: usize,
        module_path: &mut Vec<String>,
        self_type: Option<&str>,
    ) {
        let mut is_pub = false;
        while si < end {
            let text = self.text(si);
            match text {
                "#" if self.is(si + 1, '[') => {
                    si = self.skip_balanced(si + 1, end);
                    continue;
                }
                "pub" => {
                    is_pub = true;
                    si += 1;
                    if self.is(si, '(') {
                        si = self.skip_balanced(si, end);
                    }
                    continue;
                }
                "use" => {
                    si = self.parse_use(si + 1, end);
                    is_pub = false;
                    continue;
                }
                "mod" => {
                    let name = self.text(si + 1).to_string();
                    let mut i = si + 2;
                    if self.is(i, '{') {
                        let close = self.skip_balanced(i, end);
                        module_path.push(name);
                        self.parse_items(i + 1, close.saturating_sub(1), module_path, self_type);
                        module_path.pop();
                        si = close;
                    } else {
                        i = self.skip_to_semicolon(i, end);
                        si = i;
                    }
                    is_pub = false;
                    continue;
                }
                "impl" | "trait" => {
                    si = self.parse_impl_or_trait(si, end, module_path, text == "trait");
                    is_pub = false;
                    continue;
                }
                "fn" => {
                    si = self.parse_fn(si, end, module_path, self_type, is_pub);
                    is_pub = false;
                    continue;
                }
                "struct" | "enum" | "union" | "static" | "const" | "type" | "extern"
                | "macro_rules" => {
                    // Skip to the end of the item: its brace body or `;`.
                    let mut i = si + 1;
                    while i < end {
                        match self.text(i) {
                            ";" => {
                                i += 1;
                                break;
                            }
                            "{" => {
                                i = self.skip_balanced(i, end);
                                break;
                            }
                            "<" => {
                                i = self.skip_generics(i, end);
                                continue;
                            }
                            "(" | "[" => {
                                // Tuple struct body — `;` still follows.
                                i = self.skip_balanced(i, end);
                                continue;
                            }
                            "fn" | "impl" | "mod" => break, // malformed; resync
                            _ => i += 1,
                        }
                    }
                    si = i;
                    is_pub = false;
                    continue;
                }
                _ => {
                    si += 1;
                    is_pub = false;
                }
            }
        }
    }

    /// Parses `use a::b::{c, d as e};` starting just past `use`.
    /// Returns the index past the terminating `;`.
    fn parse_use(&mut self, si: usize, end: usize) -> usize {
        let stop = self.skip_to_semicolon(si, end);
        let mut prefix: Vec<String> = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // prefix lengths at `{`
        let mut current: Vec<String> = Vec::new();
        let mut alias: Option<String> = None;
        let mut i = si;
        let flush = |prefix: &[String],
                     current: &mut Vec<String>,
                     alias: &mut Option<String>,
                     items: &mut FileItems| {
            if current.is_empty() {
                return;
            }
            let mut path = prefix.to_vec();
            path.append(current);
            let name = alias
                .take()
                .or_else(|| path.last().cloned())
                .unwrap_or_default();
            if !name.is_empty() && name != "*" {
                items.imports.push(Import { name, path });
            }
        };
        while i < stop {
            let text = self.text(i);
            match text {
                "{" => {
                    prefix.append(&mut current);
                    stack.push(prefix.len());
                    i += 1;
                }
                "}" => {
                    flush(&prefix, &mut current, &mut alias, self.items);
                    let keep = stack.pop().unwrap_or(0);
                    prefix.truncate(keep.min(prefix.len()));
                    // Track how deep the *enclosing* group prefix was: the
                    // segments this group added are popped with it.
                    let outer = stack.last().copied().unwrap_or(0);
                    prefix.truncate(outer.max(prefix.len().min(keep)));
                    i += 1;
                }
                "," => {
                    flush(&prefix, &mut current, &mut alias, self.items);
                    i += 1;
                }
                ";" => {
                    flush(&prefix, &mut current, &mut alias, self.items);
                    i += 1;
                }
                "as" => {
                    alias = Some(self.text(i + 1).to_string());
                    i += 2;
                }
                ":" => i += 1,
                "*" => {
                    current.clear();
                    i += 1;
                }
                _ if self.view.sig_kind(i) == Some(TokenKind::Ident) => {
                    current.push(text.to_string());
                    i += 1;
                }
                _ => i += 1,
            }
        }
        flush(&prefix, &mut current, &mut alias, self.items);
        stop
    }

    /// Parses an `impl`/`trait` item header and recurses into its body
    /// with the self type set. Returns the index past the item.
    fn parse_impl_or_trait(
        &mut self,
        si: usize,
        end: usize,
        module_path: &mut Vec<String>,
        is_trait: bool,
    ) -> usize {
        let mut i = si + 1;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut seen_for = false;
        while i < end {
            let text = self.text(i);
            match text {
                "{" => break,
                ";" => return i + 1, // `impl Trait for Type;` etc.
                "<" => {
                    i = self.skip_generics(i, end);
                    continue;
                }
                "(" | "[" => {
                    i = self.skip_balanced(i, end);
                    continue;
                }
                "for" => {
                    seen_for = true;
                    after_for = None;
                    i += 1;
                    continue;
                }
                "where" => {
                    // Bounds may mention types; stop collecting the name.
                    while i < end && !self.is(i, '{') {
                        if self.is(i, '<') {
                            i = self.skip_generics(i, end);
                        } else {
                            i += 1;
                        }
                    }
                    break;
                }
                _ => {
                    if self.view.sig_kind(i) == Some(TokenKind::Ident) && text != "dyn" {
                        if seen_for {
                            after_for = Some(text.to_string());
                        } else {
                            last_ident = Some(text.to_string());
                        }
                    }
                    i += 1;
                }
            }
        }
        if i >= end || !self.is(i, '{') {
            return i;
        }
        let close = self.skip_balanced(i, end);
        // `impl Trait for Type` → Type; `impl Type` → Type; for traits the
        // trait name itself scopes the default methods.
        let self_type = if is_trait {
            last_ident
        } else {
            after_for.or(last_ident)
        };
        self.parse_items(
            i + 1,
            close.saturating_sub(1),
            module_path,
            self_type.as_deref(),
        );
        close
    }

    /// Parses one `fn` item starting at the `fn` keyword; returns the
    /// index past the body (or `;`).
    fn parse_fn(
        &mut self,
        si: usize,
        end: usize,
        module_path: &mut Vec<String>,
        self_type: Option<&str>,
        is_pub: bool,
    ) -> usize {
        let name = self.text(si + 1).to_string();
        let (def_line, _) = self.view.sig_pos(si);
        let mut i = si + 2;
        if self.is(i, '<') {
            i = self.skip_generics(i, end);
        }
        if !self.is(i, '(') {
            return si + 1; // not a function header; resync
        }
        let params_close = self.skip_balanced(i, end);
        let params = self.parse_params(i + 1, params_close.saturating_sub(1));
        // Scan past the return type / where clause to the body or `;`.
        let mut j = params_close;
        while j < end {
            match self.text(j) {
                "{" => break,
                ";" => {
                    // Bodyless declaration (trait method signature).
                    self.items.functions.push(FnRecord {
                        crate_name: self.crate_name.clone(),
                        module_path: module_path.clone(),
                        self_type: self_type.map(str::to_string),
                        name,
                        file: self.file.clone(),
                        def_line,
                        end_line: def_line,
                        is_pub,
                        in_test: self.view.in_test(si),
                        facts: Vec::new(),
                        calls: Vec::new(),
                        lock_events: Vec::new(),
                        params,
                    });
                    return j + 1;
                }
                "<" => {
                    j = self.skip_generics(j, end);
                    continue;
                }
                "(" | "[" => {
                    j = self.skip_balanced(j, end);
                    continue;
                }
                _ => j += 1,
            }
        }
        if j >= end {
            return end;
        }
        let close = self.skip_balanced(j, end);
        let body_start = j + 1;
        let body_end = close.saturating_sub(1);
        let (end_line, _) = self.view.sig_pos(body_end.max(j));
        let mut record = FnRecord {
            crate_name: self.crate_name.clone(),
            module_path: module_path.clone(),
            self_type: self_type.map(str::to_string),
            name,
            file: self.file.clone(),
            def_line,
            end_line: end_line.max(def_line),
            is_pub,
            in_test: self.view.in_test(si),
            facts: Vec::new(),
            calls: Vec::new(),
            lock_events: Vec::new(),
            params,
        };
        self.scan_body(body_start, body_end, &mut record, module_path, self_type);
        self.items.functions.push(record);
        close
    }

    /// Extracts `name: Type` pairs from a parameter list token range.
    fn parse_params(&self, si: usize, end: usize) -> Vec<(String, ParamType)> {
        let mut params = Vec::new();
        let mut i = si;
        while i < end {
            // Parameter name: first ident of the pattern (skip `mut`).
            let mut name: Option<String> = None;
            while i < end && !self.is(i, ':') && !self.is(i, ',') {
                let text = self.text(i);
                if self.view.sig_kind(i) == Some(TokenKind::Ident)
                    && text != "mut"
                    && text != "ref"
                    && name.is_none()
                {
                    name = Some(text.to_string());
                }
                match text {
                    "(" | "[" | "{" => i = self.skip_balanced(i, end),
                    "<" => i = self.skip_generics(i, end),
                    _ => i += 1,
                }
            }
            if i >= end || self.is(i, ',') {
                i += 1;
                continue; // `self` receiver or pattern without a type
            }
            // Type: skip `&`, lifetimes, `mut`; classify the head.
            i += 1; // past `:`
            let mut ty = ParamType::Opaque;
            let mut segments: Vec<String> = Vec::new();
            while i < end && !self.is(i, ',') {
                let text = self.text(i);
                match text {
                    "&" | "mut" => i += 1,
                    _ if self.view.sig_kind(i) == Some(TokenKind::Lifetime) => i += 1,
                    "dyn" | "impl" => {
                        ty = ParamType::Opaque;
                        i = self.skip_param_type(i, end);
                        break;
                    }
                    "(" | "[" => {
                        // Tuple/array/slice type.
                        ty = ParamType::Opaque;
                        i = self.skip_balanced(i, end);
                        break;
                    }
                    _ if self.view.sig_kind(i) == Some(TokenKind::Ident) => {
                        segments.push(text.to_string());
                        i += 1;
                        if self.is(i, '<') {
                            i = self.skip_generics(i, end);
                            break;
                        }
                        if self.is(i, ':') && self.is(i + 1, ':') {
                            i += 2;
                            continue;
                        }
                        break;
                    }
                    _ => {
                        i += 1;
                        break;
                    }
                }
            }
            if let Some(last) = segments.last() {
                ty = ParamType::Named(last.clone());
            }
            // Drain the rest of this parameter.
            while i < end && !self.is(i, ',') {
                match self.text(i) {
                    "(" | "[" | "{" => i = self.skip_balanced(i, end),
                    "<" => i = self.skip_generics(i, end),
                    _ => i += 1,
                }
            }
            i += 1; // past `,`
            if let Some(name) = name {
                if name != "self" {
                    params.push((name, ty));
                }
            }
        }
        params
    }

    /// Skips the remainder of one parameter's type from a `dyn`/`impl`.
    fn skip_param_type(&self, si: usize, end: usize) -> usize {
        let mut i = si;
        while i < end && !self.is(i, ',') {
            match self.text(i) {
                "(" | "[" | "{" => i = self.skip_balanced(i, end),
                "<" => i = self.skip_generics(i, end),
                _ => i += 1,
            }
        }
        i
    }

    /// Scans a function body for facts, calls and lock events. Nested
    /// items (`fn`, `mod`, `impl` inside the body) are parsed as their own
    /// records and excluded from this body's facts.
    fn scan_body(
        &mut self,
        si: usize,
        end: usize,
        record: &mut FnRecord,
        module_path: &mut Vec<String>,
        self_type: Option<&str>,
    ) {
        let mut depth = 0usize;
        let mut i = si;
        while i < end {
            let text = self.text(i);
            // Nested items get their own records; their tokens must not
            // pollute this function's facts.
            if (text == "fn" || text == "impl" || text == "trait") && self.starts_nested_item(i) {
                let next = if text == "fn" {
                    self.parse_fn(i, end, module_path, self_type, false)
                } else {
                    self.parse_impl_or_trait(i, end, module_path, text == "trait")
                };
                i = next.max(i + 1);
                continue;
            }
            if text == "use" {
                i = self.parse_use(i + 1, end);
                continue;
            }
            if text == "let" && self.view.sig_kind(i) == Some(TokenKind::Ident) {
                self.record_let_binding(i, end, record);
                i += 1; // the initializer still gets scanned for facts/calls
                continue;
            }
            if self.view.in_test(i) {
                i += 1;
                continue;
            }
            match text {
                "{" => {
                    depth += 1;
                    i += 1;
                    continue;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    record.lock_events.push(LockEvent::BlockClose { depth });
                    i += 1;
                    continue;
                }
                ";" => {
                    record.lock_events.push(LockEvent::StatementEnd { depth });
                    i += 1;
                    continue;
                }
                _ => {}
            }
            let (line, col) = self.view.sig_pos(i);
            // Method calls and method-shaped facts: `.name(`.
            if self.is(i, '.')
                && self.view.sig_kind(i + 1) == Some(TokenKind::Ident)
                && self.is(i + 2, '(')
            {
                let name = self.text(i + 1).to_string();
                let (mline, mcol) = self.view.sig_pos(i + 1);
                match name.as_str() {
                    "lock" => {
                        let lock = self.lock_name(i);
                        let bound = self.lock_is_bound(i);
                        record.facts.push(Fact {
                            kind: FactKind::Lock,
                            what: format!("`{lock}.lock()`"),
                            line: mline,
                            col: mcol,
                        });
                        record.lock_events.push(LockEvent::Acquire {
                            lock,
                            bound,
                            depth,
                            line: mline,
                            col: mcol,
                        });
                    }
                    "to_vec" | "collect" => record.facts.push(Fact {
                        kind: FactKind::Alloc,
                        what: format!("`.{name}()`"),
                        line: mline,
                        col: mcol,
                    }),
                    "unwrap" | "expect" => record.facts.push(Fact {
                        kind: FactKind::Panic,
                        what: format!("`.{name}()`"),
                        line: mline,
                        col: mcol,
                    }),
                    _ => {
                        let receiver = self.method_receiver(i, &record.params);
                        record.lock_events.push(LockEvent::Call {
                            index: record.calls.len(),
                            depth,
                        });
                        record.calls.push(CallSite {
                            callee: Callee::Method { name, receiver },
                            line: mline,
                            col: mcol,
                        });
                    }
                }
                i += 2; // continue at the `(`
                continue;
            }
            // Macros: the panicking family, the allocating family.
            if self.view.sig_kind(i) == Some(TokenKind::Ident) && self.is(i + 1, '!') {
                match text {
                    "panic" | "unreachable" | "todo" | "unimplemented" => {
                        record.facts.push(Fact {
                            kind: FactKind::Panic,
                            what: format!("`{text}!`"),
                            line,
                            col,
                        });
                    }
                    "format" | "vec" => record.facts.push(Fact {
                        kind: FactKind::Alloc,
                        what: format!("`{text}!`"),
                        line,
                        col,
                    }),
                    _ => {}
                }
                i += 2;
                continue;
            }
            // Path-shaped facts and calls: `Seg::seg(...)` / `foo(...)`.
            if self.view.sig_kind(i) == Some(TokenKind::Ident) && !self.is_path_continuation(i) {
                let (path, after) = self.read_path(i, end);
                if let Some(fact) = path_fact(&path) {
                    let (kind, what) = fact;
                    record.facts.push(Fact {
                        kind,
                        what,
                        line,
                        col,
                    });
                    i = after;
                    continue;
                }
                if self.is(after, '(') && path.len() >= 2 && !CALL_KEYWORDS.contains(&text) {
                    record.lock_events.push(LockEvent::Call {
                        index: record.calls.len(),
                        depth,
                    });
                    record.calls.push(CallSite {
                        callee: Callee::Path(path),
                        line,
                        col,
                    });
                    i = after;
                    continue;
                }
                if self.is(after, '(') && path.len() == 1 && !CALL_KEYWORDS.contains(&text) {
                    record.lock_events.push(LockEvent::Call {
                        index: record.calls.len(),
                        depth,
                    });
                    record.calls.push(CallSite {
                        callee: Callee::Path(path),
                        line,
                        col,
                    });
                    i = after;
                    continue;
                }
                if ENTROPY_IDENTS.contains(&text) {
                    record.facts.push(Fact {
                        kind: FactKind::Entropy,
                        what: format!("`{text}`"),
                        line,
                        col,
                    });
                }
                i = after;
                continue;
            }
            // Indexing brackets (the `no-panic` family).
            if self.is(i, '[') && crate::rules::is_indexing_bracket(self.view, i) {
                record.facts.push(Fact {
                    kind: FactKind::Panic,
                    what: "indexing (`[...]`)".to_string(),
                    line,
                    col,
                });
            }
            i += 1;
        }
    }

    /// Records the declared or constructor-implied type of a `let` binding
    /// so later method calls through it resolve like typed parameters.
    /// Without this, `let mut hasher = DefaultHasher::new()` leaves
    /// `hasher.finish()` to by-name resolution, which pins it on any
    /// workspace `finish` — a non-workspace type must land in the unknown
    /// bucket instead. Pattern bindings and non-path initializers stay
    /// untracked ([`Receiver::Other`]).
    fn record_let_binding(&self, si: usize, end: usize, record: &mut FnRecord) {
        let mut i = si + 1;
        if self.text(i) == "mut" {
            i += 1;
        }
        if self.view.sig_kind(i) != Some(TokenKind::Ident) {
            return;
        }
        let name = self.text(i).to_string();
        let ty = if self.is(i + 1, ':') && !self.is(i + 2, ':') {
            // `let name: Type = ...` — the annotation names the type.
            let mut j = i + 2;
            while j < end
                && (self.is(j, '&')
                    || self.text(j) == "mut"
                    || self.view.sig_kind(j) == Some(TokenKind::Lifetime))
            {
                j += 1;
            }
            (self.view.sig_kind(j) == Some(TokenKind::Ident)).then(|| self.text(j).to_string())
        } else if self.is(i + 1, '=')
            && !self.is(i + 2, '=')
            && self.view.sig_kind(i + 2) == Some(TokenKind::Ident)
        {
            // `let name = Type::constructor(...)` — the last type-shaped
            // (uppercase) segment names the type.
            let (path, _) = self.read_path(i + 2, end);
            path.iter()
                .rev()
                .find(|seg| seg.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
                .cloned()
        } else {
            None
        };
        if let Some(ty) = ty {
            record.params.push((name, ParamType::Named(ty)));
        }
    }

    /// Whether the `fn`/`impl`/`trait` keyword at `si` really starts a
    /// nested item (versus `impl Trait` in a type position or a bound).
    fn starts_nested_item(&self, si: usize) -> bool {
        let text = self.text(si);
        if text == "fn" {
            // `fn` in a type (`fn(...)` pointer / `Fn(...)` bound) has no
            // following ident; an item always does.
            return self.view.sig_kind(si + 1) == Some(TokenKind::Ident);
        }
        if text == "impl" {
            // `impl Trait` in type position follows `:`/`->`/`<`/`(`/`,`/
            // `=`; an impl item starts a statement. Heuristic: previous
            // token is `;`, `{`, `}` or the body start.
            let Some(prev) = si.checked_sub(1) else {
                return true;
            };
            return self.is(prev, ';') || self.is(prev, '{') || self.is(prev, '}');
        }
        // `trait` keyword inside a body is always an item.
        true
    }

    /// Whether the ident at `si` is preceded by `::` or `.` (i.e. not the
    /// head of a path expression).
    fn is_path_continuation(&self, si: usize) -> bool {
        let Some(prev) = si.checked_sub(1) else {
            return false;
        };
        if self.is(prev, '.') {
            return true;
        }
        prev.checked_sub(1)
            .map(|p2| self.is(p2, ':') && self.is(prev, ':'))
            .unwrap_or(false)
    }

    /// Reads a `a::b::c` path starting at the ident at `si`; returns the
    /// segments and the index just past the path.
    fn read_path(&self, si: usize, end: usize) -> (Vec<String>, usize) {
        let mut segments = vec![self.text(si).to_string()];
        let mut i = si + 1;
        loop {
            // Turbofish in the middle of a path: `Vec::<u8>::new`.
            if self.is(i, ':') && self.is(i + 1, ':') && self.is(i + 2, '<') {
                let after = self.skip_generics(i + 2, end);
                if self.is(after, ':') && self.is(after + 1, ':') {
                    i = after;
                } else {
                    return (segments, after);
                }
            }
            if self.is(i, ':')
                && self.is(i + 1, ':')
                && self.view.sig_kind(i + 2) == Some(TokenKind::Ident)
            {
                segments.push(self.text(i + 2).to_string());
                i += 3;
            } else {
                return (segments, i);
            }
        }
    }

    /// The name of the lock acquired by the `.lock()` whose `.` is at
    /// `si`: the identifier immediately before the dot.
    fn lock_name(&self, si: usize) -> String {
        si.checked_sub(1)
            .filter(|&p| self.view.sig_kind(p) == Some(TokenKind::Ident))
            .map(|p| self.text(p).to_string())
            .unwrap_or_else(|| "?".to_string())
    }

    /// Whether the `.lock()` at `si` (the `.`) is bound by a `let`: walk
    /// left past the receiver chain; a `=` preceded (eventually) by `let`
    /// within the same statement means the guard lives to the end of the
    /// enclosing block.
    fn lock_is_bound(&self, si: usize) -> bool {
        let mut i = si;
        // Walk left past `recv.chain` idents and dots (and `self`).
        while let Some(prev) = i.checked_sub(1) {
            let t = self.text(prev);
            if self.view.sig_kind(prev) == Some(TokenKind::Ident) || t == "." {
                i = prev;
            } else {
                break;
            }
        }
        let Some(eq) = i.checked_sub(1) else {
            return false;
        };
        if !self.is(eq, '=') || self.is(eq.saturating_sub(1), '=') {
            return false;
        }
        // Walk left past the pattern to `let`.
        let mut j = eq;
        for _ in 0..16 {
            let Some(prev) = j.checked_sub(1) else {
                return false;
            };
            let t = self.text(prev);
            if t == "let" {
                return true;
            }
            if self.view.sig_kind(prev) == Some(TokenKind::Ident)
                || t == "_"
                || t == "mut"
                || t == ":"
                || t == "&"
            {
                j = prev;
                continue;
            }
            return false;
        }
        false
    }

    /// Classifies the receiver of the method call whose `.` is at `si`.
    fn method_receiver(&self, si: usize, params: &[(String, ParamType)]) -> Receiver {
        let Some(prev) = si.checked_sub(1) else {
            return Receiver::Other;
        };
        if self.view.sig_kind(prev) != Some(TokenKind::Ident) {
            return Receiver::Other;
        }
        // A chained receiver (`a.b.method`) is not the bare name.
        if self.is_path_continuation(prev) {
            return Receiver::Other;
        }
        let name = self.text(prev);
        if name == "self" {
            return Receiver::SelfRecv;
        }
        if params.iter().any(|(p, _)| p == name) {
            return Receiver::Param(name.to_string());
        }
        Receiver::Other
    }
}

/// Identifiers that reach for ambient OS entropy (mirrors the file-local
/// `determinism` rule).
const ENTROPY_IDENTS: [&str; 4] = ["OsRng", "thread_rng", "from_entropy", "getrandom"];

/// Facts expressed as two-segment paths: allocation constructors and
/// ambient clock reads.
fn path_fact(path: &[String]) -> Option<(FactKind, String)> {
    let [head, tail] = path else {
        return None;
    };
    match (head.as_str(), tail.as_str()) {
        ("Box", "new") | ("Vec", "new") => Some((FactKind::Alloc, format!("`{head}::{tail}`"))),
        ("Instant", "now") | ("SystemTime", "now") => {
            Some((FactKind::Clock, format!("`{head}::{tail}()`")))
        }
        _ => None,
    }
}
