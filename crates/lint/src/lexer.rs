//! A small hand-written Rust lexer: just enough token structure for the
//! lint rules to match against real code without being fooled by comments,
//! string literals, raw strings, or the `'a`-lifetime-versus-`'a'`-char
//! ambiguity.
//!
//! The lexer is deliberately lossy about things the rules never look at
//! (keywords are plain [`TokenKind::Ident`]s, every operator byte is its own
//! [`TokenKind::Punct`], numeric suffixes stay glued to their number), and
//! deliberately careful about the things that would cause false positives:
//! nothing inside a comment or a string literal ever becomes a code token.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `as`, `u32`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A string literal in any form: `"..."`, `r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`.
    Str,
    /// A numeric literal, including suffix (`42`, `0xFF`, `1.5e3`, `7u32`).
    Number,
    /// A single punctuation byte (`.`, `:`, `[`, `!`, ...).
    Punct,
    /// A `// ...` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* ... */` comment (nesting handled).
    BlockComment,
}

/// One lexeme with its byte span and 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column (in characters) of the first character.
    pub col: usize,
}

/// Character cursor with incremental line/column tracking.
struct Cursor<'a> {
    source: &'a str,
    /// `(byte_offset, char)` pairs for the whole file.
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(source: &'a str) -> Self {
        Cursor {
            source,
            chars: source.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// The character `ahead` positions past the cursor, if any.
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of the character under the cursor (or end of input).
    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(off, _)| off)
            .unwrap_or(self.source.len())
    }

    /// Consume one character, updating line/column.
    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consume `n` characters.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex a whole source file into tokens. Never fails: malformed input
/// (unterminated strings or comments) is tolerated by running the current
/// token to end of file, which is the forgiving behaviour a lint wants.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor::new(source);
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let (line, col, start) = (cur.line, cur.col, cur.offset());
        let kind = lex_one(&mut cur, c);
        tokens.push(Token {
            kind,
            start,
            end: cur.offset(),
            line,
            col,
        });
    }
    tokens
}

fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    if c == '/' && cur.peek(1) == Some('/') {
        lex_line_comment(cur)
    } else if c == '/' && cur.peek(1) == Some('*') {
        lex_block_comment(cur)
    } else if let Some(prefix) = string_prefix(cur) {
        lex_string(cur, prefix)
    } else if c == 'b' && cur.peek(1) == Some('\'') {
        cur.bump();
        lex_char_literal(cur)
    } else if c == '\'' {
        lex_quote(cur)
    } else if is_ident_start(c) {
        while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
            cur.bump();
        }
        TokenKind::Ident
    } else if c.is_ascii_digit() {
        lex_number(cur)
    } else {
        cur.bump();
        TokenKind::Punct
    }
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::LineComment
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump_n(2); // consume `/*`
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump_n(2);
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump_n(2);
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
    TokenKind::BlockComment
}

/// Description of a string literal opener at the cursor.
struct StringPrefix {
    /// Characters before the opening quote (`r`/`b`/`br` plus hashes).
    lead: usize,
    /// Number of `#` guards (0 for non-raw strings).
    hashes: usize,
    /// Whether this is a raw string (no escape processing).
    raw: bool,
}

/// Detect `"`, `b"`, `r"`, `br"`, `r#...#"`, `br#...#"` at the cursor.
fn string_prefix(cur: &Cursor<'_>) -> Option<StringPrefix> {
    let c = cur.peek(0)?;
    if c == '"' {
        return Some(StringPrefix {
            lead: 0,
            hashes: 0,
            raw: false,
        });
    }
    let after_b = if c == 'b' { 1 } else { 0 };
    if c == 'b' && cur.peek(1) == Some('"') {
        return Some(StringPrefix {
            lead: 1,
            hashes: 0,
            raw: false,
        });
    }
    if cur.peek(after_b) == Some('r') {
        let mut hashes = 0;
        while cur.peek(after_b + 1 + hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek(after_b + 1 + hashes) == Some('"') {
            return Some(StringPrefix {
                lead: after_b + 1 + hashes,
                hashes,
                raw: true,
            });
        }
    }
    None
}

fn lex_string(cur: &mut Cursor<'_>, prefix: StringPrefix) -> TokenKind {
    cur.bump_n(prefix.lead + 1); // prefix chars plus the opening quote
    if prefix.raw {
        // Scan for `"` followed by `prefix.hashes` hash marks.
        while let Some(c) = cur.bump() {
            if c != '"' {
                continue;
            }
            let mut matched = true;
            for ahead in 0..prefix.hashes {
                if cur.peek(ahead) != Some('#') {
                    matched = false;
                    break;
                }
            }
            if matched {
                cur.bump_n(prefix.hashes);
                break;
            }
        }
    } else {
        while let Some(c) = cur.bump() {
            if c == '\\' {
                cur.bump(); // skip the escaped character
            } else if c == '"' {
                break;
            }
        }
    }
    TokenKind::Str
}

/// Lex a `'`-introduced token: lifetime or char literal.
///
/// `'a'` (quote, one char, quote) and `'\n'` (escape) are char literals;
/// `'a`, `'static`, `'_` followed by anything but a closing quote are
/// lifetimes.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.peek(1) == Some('\\') || cur.peek(2) == Some('\'') {
        lex_char_literal(cur)
    } else {
        cur.bump(); // the quote
        while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
            cur.bump();
        }
        TokenKind::Lifetime
    }
}

/// Lex a char/byte literal starting at the opening quote. Handles multi-
/// character escapes (`'\u{1F600}'`) by scanning to the closing quote.
fn lex_char_literal(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump();
        } else if c == '\'' || c == '\n' {
            break;
        }
    }
    TokenKind::Char
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // first digit
    while let Some(c) = cur.peek(0) {
        let fraction_dot = c == '.' && cur.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false);
        if is_ident_continue(c) || fraction_dot {
            cur.bump();
        } else {
            break;
        }
    }
    TokenKind::Number
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source)
            .iter()
            .map(|t| {
                (
                    t.kind,
                    source.get(t.start..t.end).unwrap_or_default().to_string(),
                )
            })
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = a.unwrap() + 0xFF;");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", "+", "0xFF", ";"]
        );
    }

    #[test]
    fn comments_swallow_code_like_text() {
        let toks = kinds("a // .unwrap() is fine here\nb /* panic! */ c");
        let code: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| !matches!(k, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(code, vec!["a", "b", "c"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ x");
        assert_eq!(toks.first().map(|(k, _)| *k), Some(TokenKind::BlockComment));
        assert_eq!(toks.last().map(|(_, t)| t.clone()), Some("x".to_string()));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "panic!(\"no\")"; t"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs.len(), 1);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "t"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"r#"contains "quotes" and \ backslash"# x"###);
        assert_eq!(toks.first().map(|(k, _)| *k), Some(TokenKind::Str));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"b"bytes" br#"raw"# ident"##);
        let counts = toks.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        assert_eq!(counts, 2);
        assert_eq!(
            toks.last().map(|(_, t)| t.clone()),
            Some("ident".to_string())
        );
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let toks = kinds(r"<'a> 'x' '\n' b'\0' 'static");
        let by_kind: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            by_kind,
            vec![
                TokenKind::Punct,    // <
                TokenKind::Lifetime, // 'a
                TokenKind::Punct,    // >
                TokenKind::Char,     // 'x'
                TokenKind::Char,     // '\n'
                TokenKind::Char,     // b'\0'
                TokenKind::Lifetime, // 'static
            ]
        );
    }

    #[test]
    fn line_and_column_positions() {
        let toks = lex("ab\n  cd");
        let positions: Vec<(usize, usize)> = toks.iter().map(|t| (t.line, t.col)).collect();
        assert_eq!(positions, vec![(1, 1), (2, 3)]);
    }

    #[test]
    fn unicode_escape_char_literal() {
        let toks = kinds(r"'\u{1F600}' x");
        assert_eq!(toks.first().map(|(k, _)| *k), Some(TokenKind::Char));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let toks = kinds("\"never closed");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks.first().map(|(k, _)| *k), Some(TokenKind::Str));
    }
}
