//! `sdoh-lint` — in-tree static analysis for the secure-DoH workspace.
//!
//! The stack's headline claims are *invariants*, not features: the serving
//! path is lock-free and allocation-free, chaos campaigns are
//! byte-identical per seed, and the security math must never silently
//! truncate. Nothing in rustc or clippy enforces any of that — a stray
//! `.lock()` or `Instant::now()` in the wrong crate would sail through CI.
//! This crate is the mechanical enforcement: a zero-dependency binary with
//! a small hand-written Rust lexer (comments, strings, raw strings,
//! lifetime-versus-char-literal disambiguation) and five token-pattern
//! rules, run over every workspace `src/` tree in the CI `lint` job.
//!
//! # Rules
//!
//! | rule | scope | what it bans |
//! |------|-------|--------------|
//! | `hot-path-purity` | `crates/runtime/src/runtime.rs`, `crates/core/src/serve/**` | `.lock()`, `Box::new`, `Vec::new`, `vec!`, `.to_vec()`, `format!`, `.collect()` — the serving path must stay lock-free and allocation-free (PR 3/PR 8) |
//! | `determinism` | `netsim`, `chaos`, `core`, `dns-server`, `doh`, `ntp` | `Instant::now()`, `SystemTime::now()`, `OsRng`, `thread_rng`, `from_entropy`, `getrandom` — sim-facing crates take time and entropy from seeded handles only, so campaigns stay byte-identical per seed; the wall clock is a `runtime`-only privilege |
//! | `no-panic` | all library code | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `[i]` indexing — library code returns errors; a panic in a shard worker wedges the shard |
//! | `no-narrowing-cast` | all library code | bare `as` to `u8`/`u16`/`u32`/`u64`/`usize`/`i8`/`i16`/`i32`/`i64`/`isize`/`f32` — the family behind two real bugs: the `as u32` divisor truncation in `ResolverMetrics::average_generation_latency` (fixed in PR 2) and the `attempts as i32` wrap in `SpoofStrategy::success_probability` (fixed in PR 4). `f64`/`u128`/`i128` targets are exempt: nothing in the workspace is wider |
//! | `metrics-vocabulary` | everywhere except the vocabulary itself | `sdoh_*` metric-name string literals that are not in the shared vocabulary tables in `crates/core/src/serve/samples.rs` — so exporters, the registry, experiments and docs cannot drift apart on names |
//!
//! Test code (`#[cfg(test)]` items, `#[test]`/`#[bench]`/`#[should_panic]`
//! functions) is exempt from every rule except the directive checks:
//! panicking asserts, wall-clock timeouts and scratch metric names are all
//! legitimate in tests. `crates/compat/**` (vendored dependency stand-ins)
//! and `crates/bench` (the attended experiment harness; vocabulary rule
//! still applies) are exempt by configuration — see
//! [`workspace::rules_for`].
//!
//! # The escape hatch
//!
//! A violation that is *correct* — a lock on a cold path inside a hot-path
//! module, an `expect` whose invariant genuinely cannot fail — is
//! allowlisted in place, with a reason:
//!
//! ```text
//! let shard = table.lookup(key); // sdoh-lint: allow(no-panic, "table is built covering every key")
//!
//! // sdoh-lint: allow(hot-path-purity, "cold path: snapshot aggregation runs on the stats thread")
//! fn aggregate(&self) -> Snapshot { ... }
//! ```
//!
//! A directive trailing code suppresses that line only; a directive on its
//! own line suppresses the item that follows (through its braced body or
//! terminating `;`). An allow that suppresses nothing is itself an error
//! (`unused-allow`), and a malformed or unknown directive is an error
//! (`bad-directive`) — the allowlist cannot silently rot.
//!
//! # Running it
//!
//! ```text
//! cargo run -p sdoh-lint                      # human output, exit 1 on findings
//! cargo run -p sdoh-lint -- --format json     # JSON report on stdout
//! cargo run -p sdoh-lint -- --out lint.json   # human output + JSON report file
//! ```
//!
//! The CI `lint` job runs the binary on every push and uploads the JSON
//! report as a workflow artifact.

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use engine::check_source;
pub use report::{render_human, render_json, Diagnostic, Report};
pub use rules::RuleId;
pub use workspace::{find_workspace_root, lint_workspace, rules_for, vocabulary_from_source};
