//! `sdoh-lint` — in-tree static analysis for the secure-DoH workspace.
//!
//! The stack's headline claims are *invariants*, not features: the serving
//! path is lock-free and allocation-free, chaos campaigns are
//! byte-identical per seed, and the security math must never silently
//! truncate. Nothing in rustc or clippy enforces any of that — a stray
//! `.lock()` or `Instant::now()` in the wrong crate would sail through CI.
//! This crate is the mechanical enforcement: a zero-dependency binary with
//! a small hand-written Rust lexer (comments, strings, raw strings,
//! lifetime-versus-char-literal disambiguation), five token-pattern
//! rules, and three call-graph rules built on an item-level parser that
//! extracts per-function facts and resolves calls across crates. It runs
//! over every workspace `src/` tree in the CI `lint` job. The full
//! catalogue — motivation, allow scoping and known false-negative limits
//! per rule — lives in `crates/lint/RULES.md`.
//!
//! # File-local rules
//!
//! | rule | scope | what it bans |
//! |------|-------|--------------|
//! | `hot-path-purity` | `crates/runtime/src/runtime.rs`, `crates/core/src/serve/**` | `.lock()`, `Box::new`, `Vec::new`, `vec!`, `.to_vec()`, `format!`, `.collect()` — the serving path must stay lock-free and allocation-free (PR 3/PR 8) |
//! | `determinism` | `netsim`, `chaos`, `core`, `dns-server`, `doh`, `ntp` | `Instant::now()`, `SystemTime::now()`, `OsRng`, `thread_rng`, `from_entropy`, `getrandom` — sim-facing crates take time and entropy from seeded handles only, so campaigns stay byte-identical per seed; the wall clock is a `runtime`-only privilege |
//! | `no-panic` | all library code | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `[i]` indexing — library code returns errors; a panic in a shard worker wedges the shard |
//! | `no-narrowing-cast` | all library code | bare `as` to `u8`/`u16`/`u32`/`u64`/`usize`/`i8`/`i16`/`i32`/`i64`/`isize`/`f32` — the family behind two real bugs: the `as u32` divisor truncation in `ResolverMetrics::average_generation_latency` (fixed in PR 2) and the `attempts as i32` wrap in `SpoofStrategy::success_probability` (fixed in PR 4). `f64`/`u128`/`i128` targets are exempt: nothing in the workspace is wider |
//! | `metrics-vocabulary` | everywhere except the vocabulary itself | `sdoh_*` metric-name string literals that are not in the shared vocabulary tables in `crates/core/src/serve/samples.rs` — so exporters, the registry, experiments and docs cannot drift apart on names |
//!
//! # Call-graph rules
//!
//! The three transitive rules share one whole-workspace call graph:
//! every file is parsed into per-function facts (locks, allocations,
//! panic sites, clock/entropy reads, lock-acquisition events) and call
//! sites, resolved through `use` imports, `self`/typed-parameter/
//! `let`-bound receivers, and a conservative by-name pass scoped to the
//! caller's crate and imports. Unresolvable calls land in a counted
//! *unknown bucket*, dumped with `--emit-callgraph` — never silently
//! dropped.
//!
//! | rule | what it bans |
//! |------|--------------|
//! | `transitive-hot-path-purity` | any lock, allocation or panic site *reachable* from the serving entry points (`dispatcher_loop`, `worker_loop`, `serve_wire`, `CachingPoolResolver::{handle_query, serve_batch}`); the diagnostic carries the full call chain |
//! | `transitive-determinism` | ambient clock/entropy reads reachable from any public function of the sim-facing crates |
//! | `lock-order` | cycles in the ordered lock-acquisition graph of the control plane — each cycle is reported once, with every conflicting ordering and both witnesses |
//!
//! A standalone allow directive for a transitive rule above a function is
//! a *pruning boundary*: the traversal stops there, so one directive
//! documents a whole cold-path cone (the coalesced miss path, control
//! probes, the v0 wire codec). An allow for a file-local twin rule also
//! covers the transitive finding at the same site, and when both rules
//! fire on one line only the transitive diagnostic (with the chain) is
//! reported. A configured entry point that matches no function is itself
//! a diagnostic, so a rename cannot make a rule vacuously pass.
//!
//! Test code (`#[cfg(test)]` items, `#[test]`/`#[bench]`/`#[should_panic]`
//! functions) is exempt from every rule except the directive checks:
//! panicking asserts, wall-clock timeouts and scratch metric names are all
//! legitimate in tests. `crates/compat/**` (vendored dependency stand-ins)
//! and `crates/bench` (the attended experiment harness; vocabulary rule
//! still applies) are exempt by configuration — see
//! [`workspace::rules_for`].
//!
//! # The escape hatch
//!
//! A violation that is *correct* — a lock on a cold path inside a hot-path
//! module, an `expect` whose invariant genuinely cannot fail — is
//! allowlisted in place, with a reason:
//!
//! ```text
//! let shard = table.lookup(key); // sdoh-lint: allow(no-panic, "table is built covering every key")
//!
//! // sdoh-lint: allow(hot-path-purity, "cold path: snapshot aggregation runs on the stats thread")
//! fn aggregate(&self) -> Snapshot { ... }
//! ```
//!
//! A directive trailing code suppresses that line only; a directive on its
//! own line suppresses the item that follows (through its braced body or
//! terminating `;`). An allow that suppresses nothing is itself an error
//! (`unused-allow`), and a malformed or unknown directive is an error
//! (`bad-directive`) — the allowlist cannot silently rot.
//!
//! # Running it
//!
//! ```text
//! cargo run -p sdoh-lint                          # human output, exit 1 on findings
//! cargo run -p sdoh-lint -- --format json         # JSON report on stdout
//! cargo run -p sdoh-lint -- --out lint.json       # human output + JSON report file
//! cargo run -p sdoh-lint -- --rule lock-order     # one rule only (repeatable)
//! cargo run -p sdoh-lint -- --list-rules          # the rule catalogue
//! cargo run -p sdoh-lint -- --emit-callgraph g.json  # dump the resolved call graph
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` internal error.
//! Scanning fans out over a scoped thread pool; the report is sorted by
//! `(file, line, col, rule)`, so output is deterministic regardless of
//! thread scheduling.
//!
//! The CI `lint` job runs the binary on every push and uploads the JSON
//! report and the call-graph dump as workflow artifacts; a separate
//! nightly-toolchain `tsan` job runs the `sdoh-runtime` and `sdoh-core`
//! test suites under ThreadSanitizer (`-Zsanitizer=thread` with
//! `-Zbuild-std`), so the locks the `lock-order` rule reasons about are
//! also dynamically race-checked.

pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod workspace;

pub use engine::{analyze_source, check_source};
pub use graph::{check_sources, Entry, GraphConfig};
pub use report::{render_human, render_json, Diagnostic, Report};
pub use rules::RuleId;
pub use workspace::{
    find_workspace_root, graph_config, lint_workspace, lint_workspace_with, rules_for,
    vocabulary_from_source, LintOptions,
};
