//! The rule engine: turns one lexed source file into diagnostics.
//!
//! The engine owns the three pieces of context every rule needs:
//!
//! 1. **Significant tokens** — the token stream with comments removed, so
//!    rules can match patterns like `.` `unwrap` `(` without tripping over
//!    interleaved comments.
//! 2. **Test regions** — items annotated `#[cfg(test)]`, `#[test]`,
//!    `#[bench]` or `#[should_panic]` are marked so rules that only apply
//!    to production library code skip them. `#[cfg(not(test))]` is
//!    production code and stays in scope.
//! 3. **Allow directives** — `// sdoh-lint: allow(<rule>, "<reason>")`
//!    comments. A directive trailing code applies to its own line; a
//!    directive on a line of its own applies to the next item (through the
//!    end of its braced body or terminating `;`/`,`). Directives that
//!    suppress nothing are themselves reported (`unused-allow`), and
//!    malformed or unknown directives are reported (`bad-directive`), so
//!    the escape hatch cannot silently rot.

use std::collections::BTreeSet;

use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{self, FileItems};
use crate::report::Diagnostic;
use crate::rules::{self, RuleId};

/// A lexed file plus the derived context rules match against.
pub struct FileView<'a> {
    source: &'a str,
    tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    sig: Vec<usize>,
    /// Parallel to `sig`: true when the token sits inside a test item.
    in_test: Vec<bool>,
}

impl<'a> FileView<'a> {
    pub fn new(source: &'a str) -> Self {
        let tokens = lex(source);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut view = FileView {
            source,
            tokens,
            in_test: vec![false; sig.len()],
            sig,
        };
        view.mark_test_regions();
        view
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    fn sig_tok(&self, si: usize) -> Option<&Token> {
        self.sig.get(si).and_then(|&ti| self.tokens.get(ti))
    }

    /// Text of the `si`-th significant token ("" past the end).
    pub fn sig_text(&self, si: usize) -> &str {
        self.sig_tok(si)
            .and_then(|t| self.source.get(t.start..t.end))
            .unwrap_or("")
    }

    pub fn sig_kind(&self, si: usize) -> Option<TokenKind> {
        self.sig_tok(si).map(|t| t.kind)
    }

    /// `(line, col)` of the `si`-th significant token.
    pub fn sig_pos(&self, si: usize) -> (usize, usize) {
        self.sig_tok(si).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    pub fn is_punct(&self, si: usize, c: char) -> bool {
        self.sig_kind(si) == Some(TokenKind::Punct)
            && self.sig_text(si).chars().eq(std::iter::once(c))
    }

    pub fn in_test(&self, si: usize) -> bool {
        self.in_test.get(si).copied().unwrap_or(false)
    }

    /// Find the significant-token index of the end of the item starting at
    /// `start`: the `}` closing the first brace block opened at bracket
    /// depth zero, or the first `;` (or, for field/variant/arm scopes, `,`)
    /// at depth zero. Returns the last token index when the file ends
    /// first, and `start` itself when the enclosing block closes
    /// immediately.
    fn item_end(&self, start: usize) -> usize {
        // Declaration items can carry commas at bracket depth zero inside
        // generic parameter lists and return types (`-> Result<A, B>`),
        // so a comma only terminates non-item scopes such as struct
        // fields, enum variants and match arms.
        let item_like = self.starts_declaration(start);
        let mut depth = 0usize;
        let mut si = start;
        while si < self.sig.len() {
            let text = self.sig_text(si);
            match text {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        // Closing the enclosing block: the item ended on the
                        // previous token.
                        return si.saturating_sub(1).max(start);
                    }
                    depth -= 1;
                    if depth == 0 && text == "}" {
                        return si;
                    }
                }
                ";" if depth == 0 => return si,
                "," if depth == 0 && !item_like => return si,
                _ => {}
            }
            si += 1;
        }
        self.sig.len().saturating_sub(1).max(start)
    }

    /// Whether the tokens at `start` open a declaration item (`fn`,
    /// `struct`, `impl`, ...) rather than a field, variant, match arm or
    /// statement. Leading attributes, visibility and modifiers are skipped.
    fn starts_declaration(&self, start: usize) -> bool {
        let mut depth = 0usize;
        // Bounded scan: prefixes (attributes, `pub(crate)`, modifier
        // chains) are short; anything longer is not a declaration header.
        for si in start..self.sig.len().min(start + 256) {
            let text = self.sig_text(si);
            match text {
                "[" | "(" => depth += 1,
                "]" | ")" => depth = depth.saturating_sub(1),
                _ if depth > 0 => {}
                // extern "C" carries a string literal before `fn`.
                _ if self.sig_kind(si) == Some(TokenKind::Str) => {}
                "#" | "pub" | "const" | "unsafe" | "async" | "extern" | "default" => {}
                "fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "union" | "type"
                | "macro" | "static" => return true,
                _ => return false,
            }
        }
        false
    }

    /// Mark every token belonging to a test-only item.
    fn mark_test_regions(&mut self) {
        let mut si = 0usize;
        while si < self.sig.len() {
            if self.sig_text(si) == "#" && self.sig_text(si + 1) == "[" {
                let (close, is_test) = self.classify_attribute(si + 1);
                if is_test {
                    let end = self.item_end(si);
                    for flag in self
                        .in_test
                        .iter_mut()
                        .skip(si)
                        .take(end.saturating_sub(si) + 1)
                    {
                        *flag = true;
                    }
                    si = end + 1;
                    continue;
                }
                si = close + 1;
                continue;
            }
            si += 1;
        }
    }

    /// Given the index of an attribute's `[`, return the index of its
    /// matching `]` and whether the attribute marks test-only code.
    fn classify_attribute(&self, open: usize) -> (usize, bool) {
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let mut si = open;
        while si < self.sig.len() {
            let text = self.sig_text(si);
            match text {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if self.sig_kind(si) == Some(TokenKind::Ident) {
                        idents.push(text);
                    }
                }
            }
            si += 1;
        }
        let first = idents.first().copied().unwrap_or("");
        let is_test = !idents.contains(&"not")
            && (first == "test"
                || first == "should_panic"
                || first == "bench"
                || (first == "cfg" && idents.contains(&"test")));
        (si, is_test)
    }
}

/// A parsed allow directive awaiting use.
pub(crate) struct Allow {
    pub(crate) rule: RuleId,
    pub(crate) reason: String,
    /// First and last source line the directive suppresses.
    pub(crate) from_line: usize,
    pub(crate) to_line: usize,
    /// Position of the directive comment itself.
    pub(crate) line: usize,
    pub(crate) col: usize,
    pub(crate) used: bool,
}

/// Outcome of trying to read one comment as a directive.
enum DirectiveParse {
    NotADirective,
    Malformed(String),
    Allow { rule: RuleId, reason: String },
}

/// Parse `// sdoh-lint: allow(rule, "reason")`. Doc comments (`///`,
/// `//!`) are never directives, so documentation can quote the syntax.
fn parse_directive(comment: &str) -> DirectiveParse {
    let Some(rest) = comment.strip_prefix("//") else {
        return DirectiveParse::NotADirective;
    };
    if rest.starts_with('/') || rest.starts_with('!') {
        return DirectiveParse::NotADirective;
    }
    let trimmed = rest.trim();
    let Some(body) = trimmed.strip_prefix("sdoh-lint:") else {
        return DirectiveParse::NotADirective;
    };
    let body = body.trim();
    let Some(args) = body
        .strip_prefix("allow(")
        .and_then(|b| b.strip_suffix(')'))
    else {
        return DirectiveParse::Malformed(format!(
            "expected `allow(<rule>, \"<reason>\")`, found `{body}`"
        ));
    };
    let Some((rule_name, reason_part)) = args.split_once(',') else {
        return DirectiveParse::Malformed(
            "allow directive needs a reason: `allow(<rule>, \"<reason>\")`".to_string(),
        );
    };
    let rule_name = rule_name.trim();
    let Some(rule) = RuleId::from_name(rule_name) else {
        return DirectiveParse::Malformed(format!(
            "unknown rule `{rule_name}` (known rules: {})",
            rules::known_rule_names().join(", ")
        ));
    };
    let reason = reason_part.trim();
    let inner = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or("");
    if inner.trim().is_empty() {
        return DirectiveParse::Malformed(
            "allow directive needs a non-empty quoted reason".to_string(),
        );
    }
    DirectiveParse::Allow {
        rule,
        reason: inner.to_string(),
    }
}

/// A rule finding before allow directives are applied. `also` lists
/// additional rule names whose allow directives may suppress this
/// diagnostic — a transitive diagnostic accepts the allow of its
/// file-local twin so already-annotated sites need no second directive.
pub(crate) struct RawDiag {
    pub(crate) diag: Diagnostic,
    pub(crate) also: &'static [&'static str],
}

/// One analyzed file: raw findings, allow directives, and the parsed
/// items the call-graph rules consume. Produced by [`analyze_source`],
/// consumed by `finalize`.
pub struct FileAnalysis {
    pub(crate) file: String,
    /// Findings still subject to allow directives.
    pub(crate) raw: Vec<RawDiag>,
    /// Findings that bypass allows (`bad-directive`).
    pub(crate) direct: Vec<Diagnostic>,
    pub(crate) allows: Vec<Allow>,
    /// Parsed functions and imports for the call-graph rules.
    pub items: FileItems,
}

impl FileAnalysis {
    /// Marks (and reports) a *boundary* allow: a directive for one of
    /// `rule_names` whose scope covers a whole function span
    /// `[def_line, end_line]`. The graph traversal prunes at such
    /// functions, so the directive counts as used.
    pub(crate) fn mark_boundary_allow(
        &mut self,
        rule_names: &[&'static str],
        def_line: usize,
        end_line: usize,
    ) -> bool {
        let mut hit = false;
        for allow in &mut self.allows {
            if rule_names.contains(&allow.rule.name())
                && allow.from_line <= def_line
                && end_line <= allow.to_line
            {
                allow.used = true;
                hit = true;
            }
        }
        hit
    }
}

/// Phase 1: lex, parse and run the file-local rules over one source file.
/// Allow directives are collected but not yet applied — graph rules may
/// still add findings to this file (see `finalize`).
pub fn analyze_source(
    file: &str,
    source: &str,
    enabled: &[RuleId],
    vocab: &BTreeSet<String>,
) -> FileAnalysis {
    let view = FileView::new(source);
    let mut direct: Vec<Diagnostic> = Vec::new();
    let allows = collect_allows(file, source, &view, &mut direct);

    let mut findings: Vec<Diagnostic> = Vec::new();
    for rule in enabled {
        rules::run_rule(*rule, file, &view, vocab, &mut findings);
    }
    let raw = findings
        .into_iter()
        .map(|diag| RawDiag { diag, also: &[] })
        .collect();

    FileAnalysis {
        file: file.to_string(),
        raw,
        direct,
        allows,
        items: parser::parse_file(file, &view),
    }
}

/// Phase 3: apply allow directives, collapse file-local/transitive twins,
/// report unused allows, and sort. `analyses` carries the per-file raw
/// findings; graph-rule findings must already be appended to their file's
/// `raw` list (see `crate::graph`). `audited` is the run's enabled rule
/// set: an allow for a rule outside it is left alone rather than reported
/// as `unused-allow`, since a rule that never ran can suppress nothing.
pub(crate) fn finalize(analyses: Vec<FileAnalysis>, audited: &[RuleId]) -> Vec<Diagnostic> {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for mut analysis in analyses {
        diagnostics.append(&mut analysis.direct);

        // Diagnostic dedup: a line matched by both a file-local rule and
        // its transitive counterpart collapses to the transitive
        // diagnostic, which carries the call chain. The twin pairing is
        // the transitive diagnostic's `also` list.
        let shadowed: Vec<bool> = analysis
            .raw
            .iter()
            .map(|raw| {
                raw.also.is_empty()
                    && analysis
                        .raw
                        .iter()
                        .any(|t| t.also.contains(&raw.diag.rule) && t.diag.line == raw.diag.line)
            })
            .collect();
        let deduped: Vec<RawDiag> = analysis
            .raw
            .iter()
            .zip(&shadowed)
            .filter(|(_, &s)| !s)
            .map(|(raw, _)| RawDiag {
                diag: raw.diag.clone(),
                also: raw.also,
            })
            .collect();

        for raw in deduped {
            let suppressed = analysis.allows.iter_mut().find(|a| {
                (a.rule.name() == raw.diag.rule || raw.also.contains(&a.rule.name()))
                    && a.from_line <= raw.diag.line
                    && raw.diag.line <= a.to_line
            });
            match suppressed {
                Some(allow) => allow.used = true,
                None => diagnostics.push(raw.diag),
            }
        }

        for allow in &analysis.allows {
            if !allow.used && audited.contains(&allow.rule) {
                diagnostics.push(Diagnostic {
                    file: analysis.file.clone(),
                    line: allow.line,
                    col: allow.col,
                    rule: "unused-allow",
                    message: format!(
                        "allow({}, \"{}\") suppressed nothing on lines {}-{} — remove it or fix its scope",
                        allow.rule.name(),
                        allow.reason,
                        allow.from_line,
                        allow.to_line
                    ),
                });
            }
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.col,
            b.rule,
            b.message.as_str(),
        ))
    });
    diagnostics
}

/// Check one source file against `enabled` rules, applying and validating
/// allow directives. `vocab` is the shared metric-name vocabulary for the
/// `metrics-vocabulary` rule. This is the single-file entry point; the
/// graph rules need the whole workspace and never fire here.
pub fn check_source(
    file: &str,
    source: &str,
    enabled: &[RuleId],
    vocab: &BTreeSet<String>,
) -> Vec<Diagnostic> {
    finalize(vec![analyze_source(file, source, enabled, vocab)], enabled)
}

/// Extract allow directives from comment tokens, computing each one's
/// suppression scope. Malformed directives become `bad-directive`
/// diagnostics immediately.
fn collect_allows(
    file: &str,
    source: &str,
    view: &FileView<'_>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for token in &view.tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let text = source.get(token.start..token.end).unwrap_or("");
        match parse_directive(text) {
            DirectiveParse::NotADirective => {}
            DirectiveParse::Malformed(message) => diagnostics.push(Diagnostic {
                file: file.to_string(),
                line: token.line,
                col: token.col,
                rule: "bad-directive",
                message,
            }),
            DirectiveParse::Allow { rule, reason } => {
                let trailing = (0..view.sig_len()).any(|si| {
                    let (line, col) = view.sig_pos(si);
                    line == token.line && col < token.col
                });
                let (from_line, to_line) = if trailing {
                    (token.line, token.line)
                } else {
                    standalone_scope(view, token.line)
                };
                allows.push(Allow {
                    rule,
                    reason,
                    from_line,
                    to_line,
                    line: token.line,
                    col: token.col,
                    used: false,
                });
            }
        }
    }
    allows
}

/// Scope of a directive on its own line: from the first significant token
/// after the directive through the end of that item.
fn standalone_scope(view: &FileView<'_>, directive_line: usize) -> (usize, usize) {
    let start = (0..view.sig_len()).find(|&si| view.sig_pos(si).0 > directive_line);
    let Some(start) = start else {
        // Nothing follows: empty scope, the allow will report as unused.
        return (directive_line + 1, directive_line);
    };
    let end = view.item_end(start);
    let (from_line, _) = view.sig_pos(start);
    let (to_line, _) = view.sig_pos(end);
    (from_line, to_line.max(from_line))
}
