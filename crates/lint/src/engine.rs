//! The rule engine: turns one lexed source file into diagnostics.
//!
//! The engine owns the three pieces of context every rule needs:
//!
//! 1. **Significant tokens** — the token stream with comments removed, so
//!    rules can match patterns like `.` `unwrap` `(` without tripping over
//!    interleaved comments.
//! 2. **Test regions** — items annotated `#[cfg(test)]`, `#[test]`,
//!    `#[bench]` or `#[should_panic]` are marked so rules that only apply
//!    to production library code skip them. `#[cfg(not(test))]` is
//!    production code and stays in scope.
//! 3. **Allow directives** — `// sdoh-lint: allow(<rule>, "<reason>")`
//!    comments. A directive trailing code applies to its own line; a
//!    directive on a line of its own applies to the next item (through the
//!    end of its braced body or terminating `;`/`,`). Directives that
//!    suppress nothing are themselves reported (`unused-allow`), and
//!    malformed or unknown directives are reported (`bad-directive`), so
//!    the escape hatch cannot silently rot.

use std::collections::BTreeSet;

use crate::lexer::{lex, Token, TokenKind};
use crate::report::Diagnostic;
use crate::rules::{self, RuleId};

/// A lexed file plus the derived context rules match against.
pub struct FileView<'a> {
    source: &'a str,
    tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    sig: Vec<usize>,
    /// Parallel to `sig`: true when the token sits inside a test item.
    in_test: Vec<bool>,
}

impl<'a> FileView<'a> {
    pub fn new(source: &'a str) -> Self {
        let tokens = lex(source);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut view = FileView {
            source,
            tokens,
            in_test: vec![false; sig.len()],
            sig,
        };
        view.mark_test_regions();
        view
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    fn sig_tok(&self, si: usize) -> Option<&Token> {
        self.sig.get(si).and_then(|&ti| self.tokens.get(ti))
    }

    /// Text of the `si`-th significant token ("" past the end).
    pub fn sig_text(&self, si: usize) -> &str {
        self.sig_tok(si)
            .and_then(|t| self.source.get(t.start..t.end))
            .unwrap_or("")
    }

    pub fn sig_kind(&self, si: usize) -> Option<TokenKind> {
        self.sig_tok(si).map(|t| t.kind)
    }

    /// `(line, col)` of the `si`-th significant token.
    pub fn sig_pos(&self, si: usize) -> (usize, usize) {
        self.sig_tok(si).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    pub fn is_punct(&self, si: usize, c: char) -> bool {
        self.sig_kind(si) == Some(TokenKind::Punct)
            && self.sig_text(si).chars().eq(std::iter::once(c))
    }

    pub fn in_test(&self, si: usize) -> bool {
        self.in_test.get(si).copied().unwrap_or(false)
    }

    /// Find the significant-token index of the end of the item starting at
    /// `start`: the `}` closing the first brace block opened at bracket
    /// depth zero, or the first `;` (or, for field/variant/arm scopes, `,`)
    /// at depth zero. Returns the last token index when the file ends
    /// first, and `start` itself when the enclosing block closes
    /// immediately.
    fn item_end(&self, start: usize) -> usize {
        // Declaration items can carry commas at bracket depth zero inside
        // generic parameter lists and return types (`-> Result<A, B>`),
        // so a comma only terminates non-item scopes such as struct
        // fields, enum variants and match arms.
        let item_like = self.starts_declaration(start);
        let mut depth = 0usize;
        let mut si = start;
        while si < self.sig.len() {
            let text = self.sig_text(si);
            match text {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        // Closing the enclosing block: the item ended on the
                        // previous token.
                        return si.saturating_sub(1).max(start);
                    }
                    depth -= 1;
                    if depth == 0 && text == "}" {
                        return si;
                    }
                }
                ";" if depth == 0 => return si,
                "," if depth == 0 && !item_like => return si,
                _ => {}
            }
            si += 1;
        }
        self.sig.len().saturating_sub(1).max(start)
    }

    /// Whether the tokens at `start` open a declaration item (`fn`,
    /// `struct`, `impl`, ...) rather than a field, variant, match arm or
    /// statement. Leading attributes, visibility and modifiers are skipped.
    fn starts_declaration(&self, start: usize) -> bool {
        let mut depth = 0usize;
        // Bounded scan: prefixes (attributes, `pub(crate)`, modifier
        // chains) are short; anything longer is not a declaration header.
        for si in start..self.sig.len().min(start + 256) {
            let text = self.sig_text(si);
            match text {
                "[" | "(" => depth += 1,
                "]" | ")" => depth = depth.saturating_sub(1),
                _ if depth > 0 => {}
                // extern "C" carries a string literal before `fn`.
                _ if self.sig_kind(si) == Some(TokenKind::Str) => {}
                "#" | "pub" | "const" | "unsafe" | "async" | "extern" | "default" => {}
                "fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "union" | "type"
                | "macro" | "static" => return true,
                _ => return false,
            }
        }
        false
    }

    /// Mark every token belonging to a test-only item.
    fn mark_test_regions(&mut self) {
        let mut si = 0usize;
        while si < self.sig.len() {
            if self.sig_text(si) == "#" && self.sig_text(si + 1) == "[" {
                let (close, is_test) = self.classify_attribute(si + 1);
                if is_test {
                    let end = self.item_end(si);
                    for flag in self
                        .in_test
                        .iter_mut()
                        .skip(si)
                        .take(end.saturating_sub(si) + 1)
                    {
                        *flag = true;
                    }
                    si = end + 1;
                    continue;
                }
                si = close + 1;
                continue;
            }
            si += 1;
        }
    }

    /// Given the index of an attribute's `[`, return the index of its
    /// matching `]` and whether the attribute marks test-only code.
    fn classify_attribute(&self, open: usize) -> (usize, bool) {
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let mut si = open;
        while si < self.sig.len() {
            let text = self.sig_text(si);
            match text {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if self.sig_kind(si) == Some(TokenKind::Ident) {
                        idents.push(text);
                    }
                }
            }
            si += 1;
        }
        let first = idents.first().copied().unwrap_or("");
        let is_test = !idents.contains(&"not")
            && (first == "test"
                || first == "should_panic"
                || first == "bench"
                || (first == "cfg" && idents.contains(&"test")));
        (si, is_test)
    }
}

/// A parsed allow directive awaiting use.
struct Allow {
    rule: RuleId,
    reason: String,
    /// First and last source line the directive suppresses.
    from_line: usize,
    to_line: usize,
    /// Position of the directive comment itself.
    line: usize,
    col: usize,
    used: bool,
}

/// Outcome of trying to read one comment as a directive.
enum DirectiveParse {
    NotADirective,
    Malformed(String),
    Allow { rule: RuleId, reason: String },
}

/// Parse `// sdoh-lint: allow(rule, "reason")`. Doc comments (`///`,
/// `//!`) are never directives, so documentation can quote the syntax.
fn parse_directive(comment: &str) -> DirectiveParse {
    let Some(rest) = comment.strip_prefix("//") else {
        return DirectiveParse::NotADirective;
    };
    if rest.starts_with('/') || rest.starts_with('!') {
        return DirectiveParse::NotADirective;
    }
    let trimmed = rest.trim();
    let Some(body) = trimmed.strip_prefix("sdoh-lint:") else {
        return DirectiveParse::NotADirective;
    };
    let body = body.trim();
    let Some(args) = body
        .strip_prefix("allow(")
        .and_then(|b| b.strip_suffix(')'))
    else {
        return DirectiveParse::Malformed(format!(
            "expected `allow(<rule>, \"<reason>\")`, found `{body}`"
        ));
    };
    let Some((rule_name, reason_part)) = args.split_once(',') else {
        return DirectiveParse::Malformed(
            "allow directive needs a reason: `allow(<rule>, \"<reason>\")`".to_string(),
        );
    };
    let rule_name = rule_name.trim();
    let Some(rule) = RuleId::from_name(rule_name) else {
        return DirectiveParse::Malformed(format!(
            "unknown rule `{rule_name}` (known rules: {})",
            rules::known_rule_names().join(", ")
        ));
    };
    let reason = reason_part.trim();
    let inner = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or("");
    if inner.trim().is_empty() {
        return DirectiveParse::Malformed(
            "allow directive needs a non-empty quoted reason".to_string(),
        );
    }
    DirectiveParse::Allow {
        rule,
        reason: inner.to_string(),
    }
}

/// Check one source file against `enabled` rules, applying and validating
/// allow directives. `vocab` is the shared metric-name vocabulary for the
/// `metrics-vocabulary` rule.
pub fn check_source(
    file: &str,
    source: &str,
    enabled: &[RuleId],
    vocab: &BTreeSet<String>,
) -> Vec<Diagnostic> {
    let view = FileView::new(source);
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut allows = collect_allows(file, source, &view, &mut diagnostics);

    let mut raw: Vec<Diagnostic> = Vec::new();
    for rule in enabled {
        rules::run_rule(*rule, file, &view, vocab, &mut raw);
    }

    for diag in raw {
        let suppressed = allows.iter_mut().find(|a| {
            a.rule.name() == diag.rule && a.from_line <= diag.line && diag.line <= a.to_line
        });
        match suppressed {
            Some(allow) => allow.used = true,
            None => diagnostics.push(diag),
        }
    }

    for allow in &allows {
        if !allow.used {
            diagnostics.push(Diagnostic {
                file: file.to_string(),
                line: allow.line,
                col: allow.col,
                rule: "unused-allow",
                message: format!(
                    "allow({}, \"{}\") suppressed nothing on lines {}-{} — remove it or fix its scope",
                    allow.rule.name(),
                    allow.reason,
                    allow.from_line,
                    allow.to_line
                ),
            });
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.line, a.col, a.rule, a.message.as_str()).cmp(&(
            b.line,
            b.col,
            b.rule,
            b.message.as_str(),
        ))
    });
    diagnostics
}

/// Extract allow directives from comment tokens, computing each one's
/// suppression scope. Malformed directives become `bad-directive`
/// diagnostics immediately.
fn collect_allows(
    file: &str,
    source: &str,
    view: &FileView<'_>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for token in &view.tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let text = source.get(token.start..token.end).unwrap_or("");
        match parse_directive(text) {
            DirectiveParse::NotADirective => {}
            DirectiveParse::Malformed(message) => diagnostics.push(Diagnostic {
                file: file.to_string(),
                line: token.line,
                col: token.col,
                rule: "bad-directive",
                message,
            }),
            DirectiveParse::Allow { rule, reason } => {
                let trailing = (0..view.sig_len()).any(|si| {
                    let (line, col) = view.sig_pos(si);
                    line == token.line && col < token.col
                });
                let (from_line, to_line) = if trailing {
                    (token.line, token.line)
                } else {
                    standalone_scope(view, token.line)
                };
                allows.push(Allow {
                    rule,
                    reason,
                    from_line,
                    to_line,
                    line: token.line,
                    col: token.col,
                    used: false,
                });
            }
        }
    }
    allows
}

/// Scope of a directive on its own line: from the first significant token
/// after the directive through the end of that item.
fn standalone_scope(view: &FileView<'_>, directive_line: usize) -> (usize, usize) {
    let start = (0..view.sig_len()).find(|&si| view.sig_pos(si).0 > directive_line);
    let Some(start) = start else {
        // Nothing follows: empty scope, the allow will report as unused.
        return (directive_line + 1, directive_line);
    };
    let end = view.item_end(start);
    let (from_line, _) = view.sig_pos(start);
    let (to_line, _) = view.sig_pos(end);
    (from_line, to_line.max(from_line))
}
