//! The workspace call graph and the three transitive rules that run on
//! it: `transitive-hot-path-purity`, `transitive-determinism` and
//! `lock-order`.
//!
//! ## Call resolution
//!
//! Calls are resolved from the per-function [`CallSite`](crate::parser::CallSite)s the parser
//! extracted, through a name index built over every parsed function:
//!
//! * **Qualified paths** (`sdoh_core::serve_batch`, `Message::decode`)
//!   resolve through the crate-alias map and the `(type, method)` index.
//! * **Bare names** (`question_hash(...)`) resolve inside the caller's
//!   crate first, then through the file's `use` imports.
//! * **`self.method(...)`** resolves against the enclosing impl type.
//! * **`param.method(...)`** resolves against the parameter's declared
//!   type when it names a workspace type; `dyn`/`impl`/generic receivers
//!   go to the *unknown bucket* — dynamic dispatch is a documented
//!   false-negative boundary (each concrete implementation must be listed
//!   as its own entry point to be covered).
//! * **Other receivers** (field chains, call results) resolve by method
//!   name, restricted to candidates whose type is defined in the caller's
//!   crate or imported by the caller's file — a precision guard that
//!   keeps common method names (`push`, `get`) from fabricating edges
//!   into unrelated crates.
//!
//! Everything unresolved is counted in the unknown bucket and surfaced in
//! the call-graph dump, never silently dropped.
//!
//! ## Traversal boundaries
//!
//! A standalone allow directive for a transitive rule placed above a
//! function makes that function a *pruning boundary*: the traversal does
//! not enter it, and the directive is marked used. This is how cold-path
//! funnels (config application, snapshots, the coalesced miss path) are
//! documented without annotating every line below them.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::engine::{FileAnalysis, RawDiag};
use crate::parser::{crate_alias, Callee, FactKind, FnRecord, LockEvent, ParamType, Receiver};
use crate::report::Diagnostic;
use crate::rules::RuleId;

/// One analysis entry point: a free function or a method of a named type
/// in a workspace crate.
#[derive(Clone, Debug)]
pub struct Entry {
    pub crate_name: String,
    pub self_type: Option<String>,
    pub name: String,
}

impl Entry {
    pub fn free(crate_name: &str, name: &str) -> Entry {
        Entry {
            crate_name: crate_name.to_string(),
            self_type: None,
            name: name.to_string(),
        }
    }

    pub fn method(crate_name: &str, self_type: &str, name: &str) -> Entry {
        Entry {
            crate_name: crate_name.to_string(),
            self_type: Some(self_type.to_string()),
            name: name.to_string(),
        }
    }
}

/// Where the graph rules start and which crates they scope to.
#[derive(Clone, Debug, Default)]
pub struct GraphConfig {
    /// Serving entry points for `transitive-hot-path-purity`.
    pub purity_entries: Vec<Entry>,
    /// Crates whose public functions seed `transitive-determinism`.
    pub determinism_crates: Vec<String>,
    /// Crates whose lock acquisitions feed `lock-order`.
    pub lock_crates: Vec<String>,
}

/// The built call graph: every parsed function plus resolved edges.
pub(crate) struct Graph {
    fns: Vec<FnRecord>,
    /// Adjacency: resolved callee indices per function.
    edges: Vec<Vec<usize>>,
    /// Resolved targets per call site: `call_targets[f][c]` lists the
    /// candidates of the `c`-th call in function `f` (empty = unknown).
    call_targets: Vec<Vec<Vec<usize>>>,
    /// Calls that resolved to no workspace function.
    unknown_calls: usize,
    /// file → index into the analyses slice.
    file_index: BTreeMap<String, usize>,
}

impl Graph {
    pub(crate) fn build(analyses: &[FileAnalysis]) -> Graph {
        let mut fns: Vec<FnRecord> = Vec::new();
        let mut file_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut imports: BTreeMap<&str, BTreeMap<&str, &[String]>> = BTreeMap::new();
        for (ai, analysis) in analyses.iter().enumerate() {
            file_index.insert(analysis.file.clone(), ai);
            let per_file = imports.entry(analysis.file.as_str()).or_default();
            for import in &analysis.items.imports {
                per_file.insert(import.name.as_str(), &import.path);
            }
            fns.extend(analysis.items.functions.iter().cloned());
        }

        // Name indices. All BTreeMaps so iteration, and therefore every
        // diagnostic, is deterministic.
        let mut free: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut types_by_crate: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.self_type {
                Some(ty) => {
                    typed
                        .entry((ty.as_str(), f.name.as_str()))
                        .or_default()
                        .push(i);
                    methods_by_name.entry(f.name.as_str()).or_default().push(i);
                    types_by_crate
                        .entry(f.crate_name.as_str())
                        .or_default()
                        .insert(ty.as_str());
                }
                None => free
                    .entry((f.crate_name.as_str(), f.name.as_str()))
                    .or_default()
                    .push(i),
            }
        }

        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
        let mut call_targets: Vec<Vec<Vec<usize>>> = Vec::with_capacity(fns.len());
        let mut unknown_calls = 0usize;
        for f in &fns {
            let file_imports = imports.get(f.file.as_str());
            let mut adj: BTreeSet<usize> = BTreeSet::new();
            let mut per_call: Vec<Vec<usize>> = Vec::with_capacity(f.calls.len());
            for call in &f.calls {
                let targets = resolve(
                    f,
                    &call.callee,
                    file_imports,
                    &free,
                    &typed,
                    &methods_by_name,
                    &types_by_crate,
                );
                if targets.is_empty() {
                    unknown_calls += 1;
                }
                adj.extend(targets.iter().copied());
                per_call.push(targets);
            }
            edges.push(adj.into_iter().collect());
            call_targets.push(per_call);
        }

        Graph {
            fns,
            edges,
            call_targets,
            unknown_calls,
            file_index,
        }
    }

    fn find_entry(&self, entry: &Entry) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.in_test
                    && f.crate_name == entry.crate_name
                    && f.name == entry.name
                    && f.self_type == entry.self_type
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Serializes the graph as JSON for the CI artifact: nodes, resolved
    /// edges and the unknown-call count.
    pub(crate) fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"nodes\": [\n");
        for (i, f) in self.fns.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"id\": {}, \"label\": {}, \"file\": {}, \"line\": {}, \"crate\": {}, \"is_pub\": {}, \"in_test\": {}, \"facts\": {}, \"calls\": {}}}",
                i,
                crate::report::json_string(&f.label()),
                crate::report::json_string(&f.file),
                f.def_line,
                crate::report::json_string(&f.crate_name),
                f.is_pub,
                f.in_test,
                f.facts.len(),
                f.calls.len(),
            ));
        }
        out.push_str("\n  ],\n  \"edges\": [\n");
        let mut first = true;
        for (i, adj) in self.edges.iter().enumerate() {
            for j in adj {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&format!("    [{i}, {j}]"));
            }
        }
        out.push_str(&format!(
            "\n  ],\n  \"unknown_calls\": {}\n}}\n",
            self.unknown_calls
        ));
        out
    }
}

/// Resolves one call site to candidate function indices (empty =
/// unknown bucket).
fn resolve(
    caller: &FnRecord,
    callee: &Callee,
    file_imports: Option<&BTreeMap<&str, &[String]>>,
    free: &BTreeMap<(&str, &str), Vec<usize>>,
    typed: &BTreeMap<(&str, &str), Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    types_by_crate: &BTreeMap<&str, BTreeSet<&str>>,
) -> Vec<usize> {
    match callee {
        Callee::Method { name, receiver } => match receiver {
            Receiver::SelfRecv => {
                let Some(ty) = caller.self_type.as_deref() else {
                    return Vec::new();
                };
                typed.get(&(ty, name.as_str())).cloned().unwrap_or_default()
            }
            Receiver::Param(param) => {
                let ty = caller
                    .params
                    .iter()
                    .find(|(p, _)| p == param)
                    .map(|(_, t)| t);
                match ty {
                    Some(ParamType::Named(t)) => typed
                        .get(&(t.as_str(), name.as_str()))
                        .cloned()
                        .unwrap_or_default(),
                    _ => Vec::new(),
                }
            }
            Receiver::Other => {
                // Precision guard: only accept candidates whose type is
                // in scope of the caller — defined in its crate or
                // imported by name in its file.
                let empty = BTreeSet::new();
                let local_types = types_by_crate
                    .get(caller.crate_name.as_str())
                    .unwrap_or(&empty);
                methods_by_name
                    .get(name.as_str())
                    .map(|candidates| {
                        candidates
                            .iter()
                            .copied()
                            .filter(|&i| {
                                candidate_in_scope(i, local_types, file_imports, typed, name)
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
        },
        Callee::Path(segments) => resolve_path(caller, segments, file_imports, free, typed, 0),
    }
}

/// Whether a by-name method candidate's type is visible to the caller.
/// Used only through [`resolve`]; the indirection keeps borrow scopes
/// simple.
fn candidate_in_scope(
    candidate: usize,
    local_types: &BTreeSet<&str>,
    file_imports: Option<&BTreeMap<&str, &[String]>>,
    typed: &BTreeMap<(&str, &str), Vec<usize>>,
    name: &str,
) -> bool {
    // Find the candidate's type by scanning the typed index.
    for (&(ty, m), indices) in typed {
        if m == name && indices.contains(&candidate) {
            if local_types.contains(ty) {
                return true;
            }
            if file_imports.map(|im| im.contains_key(ty)).unwrap_or(false) {
                return true;
            }
        }
    }
    false
}

/// Resolves a path call (`a::b::c(...)`), expanding through one level of
/// `use` imports. `depth` guards against pathological alias loops.
fn resolve_path(
    caller: &FnRecord,
    segments: &[String],
    file_imports: Option<&BTreeMap<&str, &[String]>>,
    free: &BTreeMap<(&str, &str), Vec<usize>>,
    typed: &BTreeMap<(&str, &str), Vec<usize>>,
    depth: usize,
) -> Vec<usize> {
    if depth > 2 {
        return Vec::new();
    }
    let Some(name) = segments.last() else {
        return Vec::new();
    };
    if segments.len() == 1 {
        // Bare call: same crate first, then expand a matching import.
        if let Some(hits) = free.get(&(caller.crate_name.as_str(), name.as_str())) {
            return hits.clone();
        }
        if let Some(path) = file_imports.and_then(|im| im.get(name.as_str())) {
            if path.len() > 1 {
                return resolve_path(caller, path, file_imports, free, typed, depth + 1);
            }
        }
        return Vec::new();
    }
    // Qualified: `Type::method` when the second-to-last segment is
    // type-like, otherwise `module::function` rooted at a crate alias.
    let qualifier = segments
        .get(segments.len().saturating_sub(2))
        .map(String::as_str)
        .unwrap_or("");
    if qualifier
        .chars()
        .next()
        .map(char::is_uppercase)
        .unwrap_or(false)
    {
        let candidates = typed
            .get(&(qualifier, name.as_str()))
            .cloned()
            .unwrap_or_default();
        return candidates;
    }
    let root = segments.first().map(String::as_str).unwrap_or("");
    if let Some(crate_key) = crate_alias(root, &caller.crate_name) {
        return free
            .get(&(crate_key.as_str(), name.as_str()))
            .cloned()
            .unwrap_or_default();
    }
    // The root may itself be an imported module name:
    // `use crate::control; ... control::apply(...)`.
    if let Some(path) = file_imports.and_then(|im| im.get(root)) {
        let mut expanded: Vec<String> = path.to_vec();
        expanded.extend(segments.iter().skip(1).cloned());
        return resolve_path(caller, &expanded, file_imports, free, typed, depth + 1);
    }
    Vec::new()
}

/// A diagnostic produced by a graph rule, waiting to be appended to its
/// file's raw findings, plus the boundary-allow marks the traversal hit.
pub(crate) struct GraphOutcome {
    pub(crate) findings: Vec<RawDiag>,
    /// `(file, rule names, def_line, end_line)` of every pruning boundary
    /// the traversals used.
    pub(crate) boundaries: Vec<(String, &'static [&'static str], usize, usize)>,
    pub(crate) callgraph_json: Option<String>,
}

/// Runs the enabled graph rules over the analyzed workspace, appending
/// findings into each file's raw list and marking boundary allows used.
/// Returns the call-graph JSON dump when requested.
pub(crate) fn run_graph_rules(
    analyses: &mut [FileAnalysis],
    config: &GraphConfig,
    enabled: &[RuleId],
    emit_callgraph: bool,
) -> Option<String> {
    let outcome = {
        let graph = Graph::build(analyses);
        let mut outcome = GraphOutcome {
            findings: Vec::new(),
            boundaries: Vec::new(),
            callgraph_json: emit_callgraph.then(|| graph.to_json()),
        };
        if enabled.contains(&RuleId::TransitiveHotPathPurity) {
            transitive_purity(&graph, analyses, config, &mut outcome);
        }
        if enabled.contains(&RuleId::TransitiveDeterminism) {
            transitive_determinism(&graph, analyses, config, &mut outcome);
        }
        if enabled.contains(&RuleId::LockOrder) {
            lock_order(&graph, analyses, config, &mut outcome);
        }
        outcome
    };

    let by_file: BTreeMap<String, usize> = analyses
        .iter()
        .enumerate()
        .map(|(i, analysis)| (analysis.file.clone(), i))
        .collect();
    for raw in outcome.findings {
        // Findings on a synthetic file (`<graph-config>`) attach to the
        // first analysis so they survive finalize; no allow can cover
        // them there (directive scopes start at line 1).
        let ai = by_file.get(&raw.diag.file).copied().unwrap_or(0);
        if let Some(analysis) = analyses.get_mut(ai) {
            analysis.raw.push(raw);
        }
    }
    for (file, rules, def_line, end_line) in outcome.boundaries {
        if let Some(&ai) = by_file.get(&file) {
            if let Some(analysis) = analyses.get_mut(ai) {
                analysis.mark_boundary_allow(rules, def_line, end_line);
            }
        }
    }
    outcome.callgraph_json
}

/// Check a set of in-memory sources together: file-local rules per file,
/// then the graph rules over the combined call graph, then allows, dedup
/// and the deterministic sort. This is the multi-file analogue of
/// [`crate::check_source`], used by the fixture tests to pin cross-crate
/// edges and lock cycles without touching the filesystem.
pub fn check_sources(
    files: &[(&str, &str)],
    enabled: &[RuleId],
    vocab: &BTreeSet<String>,
    config: &GraphConfig,
) -> Vec<Diagnostic> {
    let file_local: Vec<RuleId> = enabled
        .iter()
        .copied()
        .filter(|r| !r.is_graph_rule())
        .collect();
    let mut analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(rel, source)| crate::engine::analyze_source(rel, source, &file_local, vocab))
        .collect();
    run_graph_rules(&mut analyses, config, enabled, false);
    crate::engine::finalize(analyses, enabled)
}

/// Whether a function span is covered by a standalone allow for any of
/// `rule_names` — the read-only half of the pruning-boundary check.
fn has_boundary_allow(
    analyses: &[FileAnalysis],
    file_index: &BTreeMap<String, usize>,
    f: &FnRecord,
    rule_names: &'static [&'static str],
) -> bool {
    let Some(&ai) = file_index.get(&f.file) else {
        return false;
    };
    let Some(analysis) = analyses.get(ai) else {
        return false;
    };
    analysis.allows.iter().any(|a| {
        rule_names.contains(&a.rule.name()) && a.from_line <= f.def_line && f.end_line <= a.to_line
    })
}

/// Breadth-first reachability from `entries`, pruning at boundary allows
/// for `rule_names`. Returns `(parent, order)`: `parent[i]` is the BFS
/// predecessor (`usize::MAX` for entries and unreached nodes), `order`
/// lists reached indices in visit order. Boundary hits are recorded in
/// `outcome` so their directives count as used.
fn reach(
    graph: &Graph,
    analyses: &[FileAnalysis],
    entries: &[usize],
    rule_names: &'static [&'static str],
    outcome: &mut GraphOutcome,
) -> (Vec<usize>, Vec<usize>) {
    let mut parent = vec![usize::MAX; graph.fns.len()];
    let mut seen = vec![false; graph.fns.len()];
    let mut order: Vec<usize> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &e in entries {
        let Some(f) = graph.fns.get(e) else { continue };
        if f.in_test {
            continue;
        }
        if has_boundary_allow(analyses, &graph.file_index, f, rule_names) {
            outcome
                .boundaries
                .push((f.file.clone(), rule_names, f.def_line, f.end_line));
            continue;
        }
        if !seen.get(e).copied().unwrap_or(true) {
            if let Some(flag) = seen.get_mut(e) {
                *flag = true;
            }
            queue.push_back(e);
            order.push(e);
        }
    }
    while let Some(i) = queue.pop_front() {
        let adjacent = graph.edges.get(i).cloned().unwrap_or_default();
        for j in adjacent {
            if seen.get(j).copied().unwrap_or(true) {
                continue;
            }
            let Some(f) = graph.fns.get(j) else { continue };
            if f.in_test {
                continue;
            }
            if has_boundary_allow(analyses, &graph.file_index, f, rule_names) {
                outcome
                    .boundaries
                    .push((f.file.clone(), rule_names, f.def_line, f.end_line));
                continue;
            }
            if let Some(flag) = seen.get_mut(j) {
                *flag = true;
            }
            if let Some(p) = parent.get_mut(j) {
                *p = i;
            }
            queue.push_back(j);
            order.push(j);
        }
    }
    (parent, order)
}

/// Renders the BFS call chain from an entry point down to `i`.
fn chain(graph: &Graph, parent: &[usize], i: usize) -> String {
    let mut labels: Vec<String> = Vec::new();
    let mut cur = i;
    // The chain is bounded by the graph size; the cap guards cycles.
    for _ in 0..graph.fns.len().saturating_add(1) {
        if let Some(f) = graph.fns.get(cur) {
            labels.push(f.label());
        }
        match parent.get(cur) {
            Some(&p) if p != usize::MAX => cur = p,
            _ => break,
        }
    }
    labels.reverse();
    labels.join(" → ")
}

const PURITY_BOUNDARY: &[&str] = &["transitive-hot-path-purity"];
const DETERMINISM_BOUNDARY: &[&str] = &["transitive-determinism"];
const LOCK_ORDER_BOUNDARY: &[&str] = &["lock-order"];

/// `transitive-hot-path-purity`: no lock, allocation or panic site may be
/// reachable from the serving entry points.
fn transitive_purity(
    graph: &Graph,
    analyses: &[FileAnalysis],
    config: &GraphConfig,
    outcome: &mut GraphOutcome,
) {
    let mut entries: Vec<usize> = Vec::new();
    for entry in &config.purity_entries {
        let found = graph.find_entry(entry);
        if found.is_empty() {
            // A renamed or moved entry point must fail loudly: an empty
            // entry set would make the whole rule vacuously pass.
            let label = match &entry.self_type {
                Some(ty) => format!("{}::{}::{}", entry.crate_name, ty, entry.name),
                None => format!("{}::{}", entry.crate_name, entry.name),
            };
            outcome.findings.push(RawDiag {
                diag: Diagnostic {
                    file: "<graph-config>".to_string(),
                    line: 0,
                    col: 0,
                    rule: "transitive-hot-path-purity",
                    message: format!(
                        "serving entry point `{label}` matches no function; \
                         update the entry list in workspace::graph_config()"
                    ),
                },
                also: &[],
            });
        }
        entries.extend(found);
    }
    let (parent, order) = reach(graph, analyses, &entries, PURITY_BOUNDARY, outcome);
    for i in order {
        let Some(f) = graph.fns.get(i) else { continue };
        for fact in &f.facts {
            let (verb, also): (&str, &'static [&'static str]) = match fact.kind {
                FactKind::Lock => ("locks", &["hot-path-purity"]),
                FactKind::Alloc => ("allocates", &["hot-path-purity"]),
                FactKind::Panic => ("can panic", &["no-panic"]),
                FactKind::Clock | FactKind::Entropy => continue,
            };
            outcome.findings.push(RawDiag {
                diag: Diagnostic {
                    file: f.file.clone(),
                    line: fact.line,
                    col: fact.col,
                    rule: "transitive-hot-path-purity",
                    message: format!(
                        "{} {} and is reachable from a serving entry point; call chain: {}",
                        fact.what,
                        verb,
                        chain(graph, &parent, i)
                    ),
                },
                also,
            });
        }
    }
}

/// `transitive-determinism`: no ambient clock or entropy read may be
/// reachable from the sim-facing crates' public entry points.
fn transitive_determinism(
    graph: &Graph,
    analyses: &[FileAnalysis],
    config: &GraphConfig,
    outcome: &mut GraphOutcome,
) {
    let entries: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.is_pub && !f.in_test && config.determinism_crates.contains(&f.crate_name)
        })
        .map(|(i, _)| i)
        .collect();
    let (parent, order) = reach(graph, analyses, &entries, DETERMINISM_BOUNDARY, outcome);
    for i in order {
        let Some(f) = graph.fns.get(i) else { continue };
        for fact in &f.facts {
            let noun = match fact.kind {
                FactKind::Clock => "reads the ambient wall clock",
                FactKind::Entropy => "draws ambient OS entropy",
                _ => continue,
            };
            outcome.findings.push(RawDiag {
                diag: Diagnostic {
                    file: f.file.clone(),
                    line: fact.line,
                    col: fact.col,
                    rule: "transitive-determinism",
                    message: format!(
                        "{} {} and is reachable from a sim-facing public entry point; call chain: {}",
                        fact.what,
                        noun,
                        chain(graph, &parent, i)
                    ),
                },
                also: &["determinism"],
            });
        }
    }
}

/// One lock currently held during the lock-order replay.
struct Held {
    lock: String,
    bound: bool,
    depth: usize,
    line: usize,
}

/// A witnessed `first → second` acquisition ordering.
#[derive(Clone)]
struct EdgeWitness {
    file: String,
    line: usize,
    col: usize,
    description: String,
}

/// `lock-order`: replay each scoped function's lock events, build the
/// ordered acquisition graph (including lock sets reached through calls),
/// and report every cycle with the conflicting chains.
fn lock_order(
    graph: &Graph,
    analyses: &[FileAnalysis],
    config: &GraphConfig,
    outcome: &mut GraphOutcome,
) {
    let in_scope = |f: &FnRecord| !f.in_test && config.lock_crates.contains(&f.crate_name);
    // Pruned functions (standalone allow(lock-order) over the whole span)
    // contribute neither acquisitions nor edges.
    let mut pruned = vec![false; graph.fns.len()];
    for (i, f) in graph.fns.iter().enumerate() {
        if in_scope(f) && has_boundary_allow(analyses, &graph.file_index, f, LOCK_ORDER_BOUNDARY) {
            if let Some(flag) = pruned.get_mut(i) {
                *flag = true;
            }
            outcome
                .boundaries
                .push((f.file.clone(), LOCK_ORDER_BOUNDARY, f.def_line, f.end_line));
        }
    }

    // Transitive lock sets: fixpoint of direct acquisitions plus callees'.
    let mut lock_sets: Vec<BTreeSet<String>> = graph
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut set = BTreeSet::new();
            if in_scope(f) && !pruned.get(i).copied().unwrap_or(true) {
                for event in &f.lock_events {
                    if let LockEvent::Acquire { lock, .. } = event {
                        set.insert(lock.clone());
                    }
                }
            }
            set
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..graph.fns.len() {
            let scoped = graph
                .fns
                .get(i)
                .map(|f| in_scope(f) && !pruned.get(i).copied().unwrap_or(true))
                .unwrap_or(false);
            if !scoped {
                continue;
            }
            let adjacent = graph.edges.get(i).cloned().unwrap_or_default();
            let mut additions: Vec<String> = Vec::new();
            for j in adjacent {
                if let Some(callee_set) = lock_sets.get(j) {
                    for lock in callee_set {
                        if !lock_sets.get(i).map(|s| s.contains(lock)).unwrap_or(true) {
                            additions.push(lock.clone());
                        }
                    }
                }
            }
            if let Some(set) = lock_sets.get_mut(i) {
                for lock in additions {
                    changed |= set.insert(lock);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Replay events, collecting ordered edges with first witnesses.
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !in_scope(f) || pruned.get(i).copied().unwrap_or(true) {
            continue;
        }
        let mut held: Vec<Held> = Vec::new();
        for event in &f.lock_events {
            match event {
                LockEvent::Acquire {
                    lock,
                    bound,
                    depth,
                    line,
                    col,
                } => {
                    for h in &held {
                        let key = (h.lock.clone(), lock.clone());
                        edges.entry(key).or_insert_with(|| EdgeWitness {
                            file: f.file.clone(),
                            line: *line,
                            col: *col,
                            description: format!(
                                "{} acquires `{}` at {}:{} while holding `{}` (acquired at {}:{})",
                                f.label(),
                                lock,
                                f.file,
                                line,
                                h.lock,
                                f.file,
                                h.line
                            ),
                        });
                    }
                    held.push(Held {
                        lock: lock.clone(),
                        bound: *bound,
                        depth: *depth,
                        line: *line,
                    });
                }
                LockEvent::Call { index, .. } => {
                    if held.is_empty() {
                        continue;
                    }
                    let targets = graph
                        .call_targets
                        .get(i)
                        .and_then(|c| c.get(*index))
                        .cloned()
                        .unwrap_or_default();
                    let call_site = f.calls.get(*index);
                    for t in targets {
                        if pruned.get(t).copied().unwrap_or(true) {
                            continue;
                        }
                        let Some(callee_locks) = lock_sets.get(t) else {
                            continue;
                        };
                        let callee_label =
                            graph.fns.get(t).map(FnRecord::label).unwrap_or_default();
                        for lock in callee_locks {
                            for h in &held {
                                let key = (h.lock.clone(), lock.clone());
                                let (line, col) = call_site
                                    .map(|c| (c.line, c.col))
                                    .unwrap_or((f.def_line, 1));
                                edges.entry(key).or_insert_with(|| EdgeWitness {
                                    file: f.file.clone(),
                                    line,
                                    col,
                                    description: format!(
                                        "{} calls {} at {}:{} while holding `{}` (acquired at {}:{}); the callee's lock set includes `{}`",
                                        f.label(),
                                        callee_label,
                                        f.file,
                                        line,
                                        h.lock,
                                        f.file,
                                        h.line,
                                        lock
                                    ),
                                });
                            }
                        }
                    }
                }
                LockEvent::StatementEnd { depth } => {
                    // Unbound guards die at their own statement's `;`.
                    held.retain(|h| h.bound || h.depth != *depth);
                }
                LockEvent::BlockClose { depth } => {
                    held.retain(|h| h.depth <= *depth);
                }
            }
        }
    }

    // Cycle detection over the lock graph: strongly connected components
    // with more than one node, plus self-loops, are potential deadlocks.
    let nodes: BTreeSet<String> = edges
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    let nodes: Vec<String> = nodes.into_iter().collect();
    let index_of: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        if let (Some(&ia), Some(&ib)) = (index_of.get(a.as_str()), index_of.get(b.as_str())) {
            if let Some(list) = adj.get_mut(ia) {
                list.push(ib);
            }
        }
    }
    for component in strongly_connected(&adj) {
        let is_cycle = component.len() > 1
            || component
                .first()
                .is_some_and(|&n| adj.get(n).map(|a| a.contains(&n)).unwrap_or(false));
        if !is_cycle {
            continue;
        }
        let mut names: Vec<&str> = component
            .iter()
            .filter_map(|&n| nodes.get(n).map(String::as_str))
            .collect();
        names.sort_unstable();
        // Collect the witnesses of every edge inside the component.
        let mut witnesses: Vec<&EdgeWitness> = Vec::new();
        let mut ring = String::new();
        for (key, witness) in &edges {
            let (a, b) = (key.0.as_str(), key.1.as_str());
            if names.contains(&a) && names.contains(&b) {
                witnesses.push(witness);
                if !ring.is_empty() {
                    ring.push_str(", ");
                }
                ring.push_str(&format!("`{a}` → `{b}`"));
            }
        }
        let Some(anchor) = witnesses.first() else {
            continue;
        };
        let detail = witnesses
            .iter()
            .map(|w| w.description.as_str())
            .collect::<Vec<_>>()
            .join("; ");
        outcome.findings.push(RawDiag {
            diag: Diagnostic {
                file: anchor.file.clone(),
                line: anchor.line,
                col: anchor.col,
                rule: "lock-order",
                message: format!(
                    "lock-order cycle among {{{}}} — potential deadlock; conflicting orderings: {}; {}",
                    names
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    ring,
                    detail
                ),
            },
            also: &[],
        });
    }
}

/// Tarjan's strongly-connected components, iteratively, in deterministic
/// node order. Returns each component as a sorted list of node indices.
fn strongly_connected(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next child position).
    for start in 0..n {
        if index.get(start).copied().unwrap_or(0) != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = work.last_mut() {
            if *child == 0 {
                if let (Some(iv), Some(lv)) = (index.get_mut(v), low.get_mut(v)) {
                    *iv = next_index;
                    *lv = next_index;
                }
                next_index += 1;
                stack.push(v);
                if let Some(flag) = on_stack.get_mut(v) {
                    *flag = true;
                }
            }
            let edge = adj.get(v).and_then(|a| a.get(*child)).copied();
            match edge {
                Some(w) => {
                    *child += 1;
                    if index.get(w).copied().unwrap_or(0) == usize::MAX {
                        work.push((w, 0));
                    } else if on_stack.get(w).copied().unwrap_or(false) {
                        let lw = index.get(w).copied().unwrap_or(0);
                        if let Some(lv) = low.get_mut(v) {
                            *lv = (*lv).min(lw);
                        }
                    }
                }
                None => {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        let lv = low.get(v).copied().unwrap_or(0);
                        if let Some(lp) = low.get_mut(parent) {
                            *lp = (*lp).min(lv);
                        }
                    }
                    if low.get(v) == index.get(v) {
                        let mut component: Vec<usize> = Vec::new();
                        while let Some(w) = stack.pop() {
                            if let Some(flag) = on_stack.get_mut(w) {
                                *flag = false;
                            }
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                }
            }
        }
    }
    components
}
