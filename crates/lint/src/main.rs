//! The `sdoh-lint` binary: lint the workspace, print a report, exit
//! nonzero on findings. See the crate docs for the rule catalogue.
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` internal error
//! (unreadable workspace, bad arguments, unwritable output file).

use std::path::PathBuf;
use std::process::ExitCode;

use sdoh_lint::{
    find_workspace_root, lint_workspace_with, render_human, render_json, LintOptions, RuleId,
};

struct Options {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
    rules: Vec<RuleId>,
    callgraph: Option<PathBuf>,
    list_rules: bool,
}

const USAGE: &str = "usage: sdoh-lint [--root <dir>] [--format human|json] [--out <file>] [--rule <name>]... [--emit-callgraph <file>] [--list-rules]\n\
  --root <dir>            workspace root (default: nearest ancestor with [workspace])\n\
  --format human|json     report format on stdout (default: human)\n\
  --out <file>            additionally write the JSON report to <file>\n\
  --rule <name>           run only this rule (repeatable; default: all rules)\n\
  --emit-callgraph <file> write the workspace call graph as JSON to <file>\n\
  --list-rules            print the rule catalogue and exit\n\
\n\
exit codes: 0 clean, 1 diagnostics found, 2 internal error";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: None,
        json: false,
        out: None,
        rules: Vec::new(),
        callgraph: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a value")?;
                options.root = Some(PathBuf::from(value));
            }
            "--format" => match args.next().as_deref() {
                Some("human") => options.json = false,
                Some("json") => options.json = true,
                other => return Err(format!("--format needs `human` or `json`, got {other:?}")),
            },
            "--out" => {
                let value = args.next().ok_or("--out needs a value")?;
                options.out = Some(PathBuf::from(value));
            }
            "--rule" => {
                let value = args.next().ok_or("--rule needs a rule name")?;
                let rule = RuleId::from_name(&value).ok_or_else(|| {
                    format!(
                        "unknown rule `{value}` (known rules: {})",
                        RuleId::ALL.map(|r| r.name()).join(", ")
                    )
                })?;
                options.rules.push(rule);
            }
            "--emit-callgraph" => {
                let value = args.next().ok_or("--emit-callgraph needs a value")?;
                options.callgraph = Some(PathBuf::from(value));
            }
            "--list-rules" => options.list_rules = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn run() -> Result<bool, String> {
    let options = parse_args()?;
    if options.list_rules {
        for rule in RuleId::ALL {
            println!("{:<28} {}", rule.name(), rule.describe());
        }
        return Ok(true);
    }
    let root = match options.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml found above the current directory")?
        }
    };
    let lint_options = LintOptions {
        rule_filter: (!options.rules.is_empty()).then(|| options.rules.clone()),
        emit_callgraph: options.callgraph.is_some(),
    };
    let report = lint_workspace_with(&root, &lint_options)?;
    if options.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    if let Some(out_path) = options.out {
        std::fs::write(&out_path, render_json(&report))
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    }
    if let (Some(path), Some(callgraph)) = (options.callgraph, &report.callgraph) {
        std::fs::write(&path, callgraph)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("sdoh-lint: {message}");
            ExitCode::from(2)
        }
    }
}
