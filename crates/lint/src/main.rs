//! The `sdoh-lint` binary: lint the workspace, print a report, exit
//! nonzero on findings. See the crate docs for the rule catalogue.

use std::path::PathBuf;
use std::process::ExitCode;

use sdoh_lint::{find_workspace_root, lint_workspace, render_human, render_json};

struct Options {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

const USAGE: &str = "usage: sdoh-lint [--root <dir>] [--format human|json] [--out <file>]\n\
  --root <dir>         workspace root (default: nearest ancestor with [workspace])\n\
  --format human|json  report format on stdout (default: human)\n\
  --out <file>         additionally write the JSON report to <file>";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        root: None,
        json: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a value")?;
                options.root = Some(PathBuf::from(value));
            }
            "--format" => match args.next().as_deref() {
                Some("human") => options.json = false,
                Some("json") => options.json = true,
                other => return Err(format!("--format needs `human` or `json`, got {other:?}")),
            },
            "--out" => {
                let value = args.next().ok_or("--out needs a value")?;
                options.out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

fn run() -> Result<bool, String> {
    let options = parse_args()?;
    let root = match options.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml found above the current directory")?
        }
    };
    let report = lint_workspace(&root)?;
    if options.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    if let Some(out_path) = options.out {
        std::fs::write(&out_path, render_json(&report))
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("sdoh-lint: {message}");
            ExitCode::from(2)
        }
    }
}
