//! Fixture corpus for the lint engine: every rule has a bad snippet and an
//! allowlisted twin, and the expected diagnostics are pinned down to the
//! exact `(rule, line, col)`. A drifting lexer or scope computation shows
//! up here as a changed coordinate, not as a silently missed violation.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use sdoh_lint::rules::RuleId;
use sdoh_lint::{
    check_source, check_sources, find_workspace_root, rules_for, vocabulary_from_source,
    Diagnostic, Entry, GraphConfig,
};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_vocab() -> BTreeSet<String> {
    ["sdoh_fixture_known_total".to_string()]
        .into_iter()
        .collect()
}

/// Lint one fixture with every rule enabled and return `(rule, line, col)`
/// triples in the engine's sorted order.
fn lint_fixture(name: &str) -> Vec<(&'static str, usize, usize)> {
    let path = fixture_dir().join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    check_source(name, &source, &RuleId::ALL, &fixture_vocab())
        .into_iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect()
}

/// Lint a set of fixtures as a synthetic multi-crate workspace: each entry
/// pairs the pretend workspace-relative path (which determines the crate)
/// with the fixture file holding the source.
fn lint_graph_fixtures(
    files: &[(&str, &str)],
    enabled: &[RuleId],
    config: &GraphConfig,
) -> Vec<Diagnostic> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(rel, name)| {
            let path = fixture_dir().join(name);
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
            (rel.to_string(), source)
        })
        .collect();
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(rel, source)| (rel.as_str(), source.as_str()))
        .collect();
    check_sources(&refs, enabled, &fixture_vocab(), config)
}

fn triples(diagnostics: &[Diagnostic]) -> Vec<(&'static str, usize, usize)> {
    diagnostics
        .iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect()
}

#[test]
fn no_panic_fixture_flags_each_construct_once() {
    assert_eq!(
        lint_fixture("no_panic.rs"),
        vec![
            ("no-panic", 4, 7),  // v.unwrap()
            ("no-panic", 8, 7),  // v.expect("present")
            ("no-panic", 12, 5), // panic!("boom")
            ("no-panic", 16, 7), // xs[0]
        ],
        "trailing and standalone allows must suppress their sites, and the \
         #[cfg(test)] module must be exempt"
    );
}

#[test]
fn no_narrowing_cast_fixture_exempts_wide_targets() {
    assert_eq!(
        lint_fixture("no_narrowing_cast.rs"),
        vec![("no-narrowing-cast", 4, 7)], // x as u8
        "f64 and u128 targets are exempt, the masked cast is allowlisted"
    );
}

#[test]
fn hot_path_purity_fixture_flags_locks_and_allocation() {
    assert_eq!(
        lint_fixture("hot_path_purity.rs"),
        vec![
            ("hot-path-purity", 4, 12), // mutex.lock()
            ("hot-path-purity", 8, 5),  // Vec::new()
            ("hot-path-purity", 12, 5), // format!
        ],
        "the standalone allow must cover the whole cold-path function"
    );
}

#[test]
fn determinism_fixture_flags_ambient_clocks() {
    assert_eq!(
        lint_fixture("determinism.rs"),
        vec![("determinism", 4, 16), ("determinism", 8, 16)],
        "the allowlisted host-clock boundary must not be flagged"
    );
}

#[test]
fn metrics_vocabulary_fixture_flags_only_unknown_names() {
    assert_eq!(
        lint_fixture("metrics_vocabulary.rs"),
        vec![("metrics-vocabulary", 5, 5)], // "sdoh_made_up_metric_total"
        "vocabulary names and allowlisted scratch names must pass"
    );
}

#[test]
fn unused_allow_is_itself_a_diagnostic() {
    assert_eq!(
        lint_fixture("unused_allow.rs"),
        vec![("unused-allow", 4, 11)],
        "an allow that suppresses nothing must be reported at the directive"
    );
}

#[test]
fn an_allow_for_a_rule_outside_the_enabled_set_is_not_reported_unused() {
    // Regression: under `--rule <name>` filtering, every allow for a rule
    // that was not run used to be reported as unused-allow — a filtered
    // run would flag hundreds of perfectly valid directives. An allow is
    // only audited when its rule was actually enabled.
    let path = fixture_dir().join("unused_allow.rs");
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    let diagnostics = check_source(
        "unused_allow.rs",
        &source,
        &[RuleId::Determinism],
        &fixture_vocab(),
    );
    assert_eq!(
        diagnostics,
        vec![],
        "the stale allow(no-panic) must only be audited when no-panic runs"
    );
}

#[test]
fn standalone_allow_scope_survives_commas_in_generic_return_types() {
    // Regression: `item_end` once treated the depth-0 comma inside
    // `Result<Option<(u32, usize)>, String>` as the end of the allow's
    // scope, stranding the directive as unused and leaving the body's
    // indexing unsuppressed.
    assert_eq!(
        lint_fixture("generic_return_scope.rs"),
        vec![],
        "the allow must scope over the whole declaration despite the comma \
         in its return-type generics"
    );
}

#[test]
fn transitive_purity_fixture_reports_the_full_call_chain() {
    let config = GraphConfig {
        purity_entries: vec![Entry::free("palpha", "serve_loop")],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[("crates/palpha/src/lib.rs", "transitive_purity.rs")],
        &[RuleId::TransitiveHotPathPurity],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![("transitive-hot-path-purity", 13, 18)], // Vec::new in helper
        "the allocation two hops down must be reported at its own site"
    );
    assert!(
        diagnostics[0]
            .message
            .contains("palpha::serve_loop → palpha::step → palpha::helper"),
        "the diagnostic must carry the full call chain, got: {}",
        diagnostics[0].message
    );
}

#[test]
fn transitive_purity_boundary_allow_prunes_and_counts_as_used() {
    let config = GraphConfig {
        purity_entries: vec![Entry::free("palpha", "serve_loop")],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[("crates/palpha/src/lib.rs", "transitive_purity_allowed.rs")],
        &[RuleId::TransitiveHotPathPurity],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![],
        "a standalone allow over the helper must prune the traversal \
         without tripping unused-allow"
    );
}

#[test]
fn cross_crate_edge_resolves_through_the_use_import() {
    let config = GraphConfig {
        purity_entries: vec![Entry::free("xalpha", "serve_loop")],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[
            ("crates/xalpha/src/lib.rs", "cross_crate_entry.rs"),
            ("crates/xbeta/src/lib.rs", "cross_crate_callee.rs"),
        ],
        &[RuleId::TransitiveHotPathPurity],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![("transitive-hot-path-purity", 4, 17)], // format! in render
        "the `use sdoh_xbeta::render` import must resolve the bare call \
         into the sibling crate"
    );
    assert_eq!(diagnostics[0].file, "crates/xbeta/src/lib.rs");
    assert!(
        diagnostics[0]
            .message
            .contains("xalpha::serve_loop → xbeta::render"),
        "the chain must cross the crate boundary, got: {}",
        diagnostics[0].message
    );
}

#[test]
fn lock_cycle_fixture_reports_one_cycle_with_every_ordering() {
    let config = GraphConfig {
        lock_crates: vec!["lockdemo".to_string()],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[("crates/lockdemo/src/lib.rs", "lock_cycle.rs")],
        &[RuleId::LockOrder],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![("lock-order", 10, 27)], // beta acquired while alpha is held
        "a three-lock ring must collapse to one cycle diagnostic"
    );
    let message = &diagnostics[0].message;
    for ordering in ["`alpha` → `beta`", "`beta` → `gamma`", "`gamma` → `alpha`"] {
        assert!(
            message.contains(ordering),
            "cycle message must list the ordering {ordering}, got: {message}"
        );
    }
}

#[test]
fn lock_cycle_boundary_allow_breaks_the_ring() {
    let config = GraphConfig {
        lock_crates: vec!["lockdemo".to_string()],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[("crates/lockdemo/src/lib.rs", "lock_cycle_allowed.rs")],
        &[RuleId::LockOrder],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![],
        "pruning one participant must leave the remaining orderings acyclic"
    );
}

#[test]
fn transitive_determinism_fixture_flags_the_reachable_clock() {
    let config = GraphConfig {
        determinism_crates: vec!["gsim".to_string()],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[("crates/gsim/src/lib.rs", "transitive_determinism.rs")],
        &[RuleId::TransitiveDeterminism],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![("transitive-determinism", 10, 15)], // Instant::now in stamp
        "the clock read below the public API must be reported at its site"
    );
    assert!(
        diagnostics[0].message.contains("gsim::tick → gsim::stamp"),
        "the diagnostic must carry the chain from the public entry, got: {}",
        diagnostics[0].message
    );
}

#[test]
fn transitive_determinism_boundary_allow_covers_the_entry() {
    let config = GraphConfig {
        determinism_crates: vec!["gsim".to_string()],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[(
            "crates/gsim/src/lib.rs",
            "transitive_determinism_allowed.rs",
        )],
        &[RuleId::TransitiveDeterminism],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![],
        "an allow over the public entry must make the whole cone a \
         documented host-clock boundary"
    );
}

#[test]
fn file_local_and_transitive_findings_on_one_line_collapse_to_transitive() {
    let config = GraphConfig {
        purity_entries: vec![Entry::free("dedup", "serve_loop")],
        ..GraphConfig::default()
    };
    let diagnostics = lint_graph_fixtures(
        &[("crates/dedup/src/lib.rs", "dedup.rs")],
        &[RuleId::HotPathPurity, RuleId::TransitiveHotPathPurity],
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![("transitive-hot-path-purity", 10, 18)], // Vec::new in helper
        "the same-line file-local finding must be shadowed by the \
         transitive diagnostic, not reported twice"
    );
    assert!(
        diagnostics[0].message.contains("call chain:"),
        "the surviving diagnostic must be the one with the chain, got: {}",
        diagnostics[0].message
    );
}

#[test]
fn a_configured_entry_matching_no_function_fails_loudly() {
    let config = GraphConfig {
        purity_entries: vec![Entry::free("solo", "missing_entry")],
        ..GraphConfig::default()
    };
    let diagnostics = check_sources(
        &[("crates/solo/src/lib.rs", "pub fn nothing() {}\n")],
        &[RuleId::TransitiveHotPathPurity],
        &fixture_vocab(),
        &config,
    );
    assert_eq!(
        triples(&diagnostics),
        vec![("transitive-hot-path-purity", 0, 0)],
        "a renamed entry point must not make the rule vacuously pass"
    );
    assert_eq!(diagnostics[0].file, "<graph-config>");
    assert!(
        diagnostics[0].message.contains("solo::missing_entry"),
        "the failure must name the stale entry, got: {}",
        diagnostics[0].message
    );
}

#[test]
fn sdoh_lint_is_clean_on_its_own_sources() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let vocab_source = std::fs::read_to_string(root.join(sdoh_lint::workspace::VOCABULARY_PATH))
        .expect("vocabulary module readable");
    let vocab = vocabulary_from_source(&vocab_source);
    assert!(!vocab.is_empty(), "vocabulary must not be empty");

    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("src dir readable") {
        let path = entry.expect("dir entry readable").path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let rel = format!(
            "crates/lint/src/{}",
            path.file_name().expect("file name").to_string_lossy()
        );
        let source = std::fs::read_to_string(&path).expect("source readable");
        let diagnostics = check_source(&rel, &source, &rules_for(&rel), &vocab);
        assert!(
            diagnostics.is_empty(),
            "sdoh-lint must hold itself to its own rules; found in {rel}: {diagnostics:?}"
        );
        checked += 1;
    }
    assert!(
        checked >= 9,
        "expected to self-check every module (including parser and graph), got {checked}"
    );
}
