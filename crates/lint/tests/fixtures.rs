//! Fixture corpus for the lint engine: every rule has a bad snippet and an
//! allowlisted twin, and the expected diagnostics are pinned down to the
//! exact `(rule, line, col)`. A drifting lexer or scope computation shows
//! up here as a changed coordinate, not as a silently missed violation.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use sdoh_lint::rules::RuleId;
use sdoh_lint::{check_source, find_workspace_root, rules_for, vocabulary_from_source};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_vocab() -> BTreeSet<String> {
    ["sdoh_fixture_known_total".to_string()]
        .into_iter()
        .collect()
}

/// Lint one fixture with every rule enabled and return `(rule, line, col)`
/// triples in the engine's sorted order.
fn lint_fixture(name: &str) -> Vec<(&'static str, usize, usize)> {
    let path = fixture_dir().join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    check_source(name, &source, &RuleId::ALL, &fixture_vocab())
        .into_iter()
        .map(|d| (d.rule, d.line, d.col))
        .collect()
}

#[test]
fn no_panic_fixture_flags_each_construct_once() {
    assert_eq!(
        lint_fixture("no_panic.rs"),
        vec![
            ("no-panic", 4, 7),  // v.unwrap()
            ("no-panic", 8, 7),  // v.expect("present")
            ("no-panic", 12, 5), // panic!("boom")
            ("no-panic", 16, 7), // xs[0]
        ],
        "trailing and standalone allows must suppress their sites, and the \
         #[cfg(test)] module must be exempt"
    );
}

#[test]
fn no_narrowing_cast_fixture_exempts_wide_targets() {
    assert_eq!(
        lint_fixture("no_narrowing_cast.rs"),
        vec![("no-narrowing-cast", 4, 7)], // x as u8
        "f64 and u128 targets are exempt, the masked cast is allowlisted"
    );
}

#[test]
fn hot_path_purity_fixture_flags_locks_and_allocation() {
    assert_eq!(
        lint_fixture("hot_path_purity.rs"),
        vec![
            ("hot-path-purity", 4, 12), // mutex.lock()
            ("hot-path-purity", 8, 5),  // Vec::new()
            ("hot-path-purity", 12, 5), // format!
        ],
        "the standalone allow must cover the whole cold-path function"
    );
}

#[test]
fn determinism_fixture_flags_ambient_clocks() {
    assert_eq!(
        lint_fixture("determinism.rs"),
        vec![("determinism", 4, 16), ("determinism", 8, 16)],
        "the allowlisted host-clock boundary must not be flagged"
    );
}

#[test]
fn metrics_vocabulary_fixture_flags_only_unknown_names() {
    assert_eq!(
        lint_fixture("metrics_vocabulary.rs"),
        vec![("metrics-vocabulary", 5, 5)], // "sdoh_made_up_metric_total"
        "vocabulary names and allowlisted scratch names must pass"
    );
}

#[test]
fn unused_allow_is_itself_a_diagnostic() {
    assert_eq!(
        lint_fixture("unused_allow.rs"),
        vec![("unused-allow", 4, 11)],
        "an allow that suppresses nothing must be reported at the directive"
    );
}

#[test]
fn standalone_allow_scope_survives_commas_in_generic_return_types() {
    // Regression: `item_end` once treated the depth-0 comma inside
    // `Result<Option<(u32, usize)>, String>` as the end of the allow's
    // scope, stranding the directive as unused and leaving the body's
    // indexing unsuppressed.
    assert_eq!(
        lint_fixture("generic_return_scope.rs"),
        vec![],
        "the allow must scope over the whole declaration despite the comma \
         in its return-type generics"
    );
}

#[test]
fn sdoh_lint_is_clean_on_its_own_sources() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let vocab_source = std::fs::read_to_string(root.join(sdoh_lint::workspace::VOCABULARY_PATH))
        .expect("vocabulary module readable");
    let vocab = vocabulary_from_source(&vocab_source);
    assert!(!vocab.is_empty(), "vocabulary must not be empty");

    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&src_dir).expect("src dir readable") {
        let path = entry.expect("dir entry readable").path();
        if path.extension().map(|e| e == "rs") != Some(true) {
            continue;
        }
        let rel = format!(
            "crates/lint/src/{}",
            path.file_name().expect("file name").to_string_lossy()
        );
        let source = std::fs::read_to_string(&path).expect("source readable");
        let diagnostics = check_source(&rel, &source, &rules_for(&rel), &vocab);
        assert!(
            diagnostics.is_empty(),
            "sdoh-lint must hold itself to its own rules; found in {rel}: {diagnostics:?}"
        );
        checked += 1;
    }
    assert!(
        checked >= 7,
        "expected to self-check every module, got {checked}"
    );
}
