//! Dedup regression: a file-local and a transitive finding on the same
//! line must collapse to the transitive diagnostic, which carries the
//! call chain.

pub fn serve_loop() {
    helper();
}

fn helper() {
    let buffer = Vec::new();
    drop(buffer);
}
