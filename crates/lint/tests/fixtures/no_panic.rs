//! Fixture: `no-panic` violations and their allowlisted twins.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_index(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn allowed_trailing(v: Option<u32>) -> u32 {
    v.unwrap() // sdoh-lint: allow(no-panic, "the caller checked is_some")
}

// sdoh-lint: allow(no-panic, "every index is below LEN by construction")
pub fn allowed_standalone(xs: &[u32]) -> u32 {
    xs[0] + xs[1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
