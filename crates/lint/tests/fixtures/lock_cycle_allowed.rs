//! Allowed twin: pruning `third` breaks the ring — the remaining two
//! orderings are acyclic, and the boundary directive counts as used.

pub struct State;

impl State {
    pub fn first(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    pub fn second(&self) {
        let b = self.beta.lock();
        let c = self.gamma.lock();
        drop((b, c));
    }

    // sdoh-lint: allow(lock-order, "rescale-only path: runs with the shard table quiesced, never concurrently with first/second")
    pub fn third(&self) {
        let c = self.gamma.lock();
        let a = self.alpha.lock();
        drop((c, a));
    }
}
