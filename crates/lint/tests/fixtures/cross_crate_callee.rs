//! Cross-crate fixture, callee half: the allocation the entry reaches.

pub fn render() {
    let label = format!("shard {}", 7);
    drop(label);
}
