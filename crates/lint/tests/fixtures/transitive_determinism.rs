//! Bad twin: the ambient clock two hops below a public sim-facing API.

use std::time::Instant;

pub fn tick() -> u64 {
    stamp()
}

fn stamp() -> u64 {
    let now = Instant::now();
    now.elapsed().as_secs()
}
