//! Allowed twin: the entry point is a documented host-clock boundary.

use std::time::Instant;

// sdoh-lint: allow(transitive-determinism, "host harness boundary: wall-clock telemetry only, never simulation state")
pub fn tick() -> u64 {
    stamp()
}

fn stamp() -> u64 {
    let now = Instant::now();
    now.elapsed().as_secs()
}
