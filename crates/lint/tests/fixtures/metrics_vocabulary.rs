//! Fixture: `metrics-vocabulary` — names outside the vocabulary are
//! flagged, names inside it (and allowlisted scratch names) are not.

pub fn bad_unknown_name() -> &'static str {
    "sdoh_made_up_metric_total"
}

pub fn good_known_name() -> &'static str {
    "sdoh_fixture_known_total"
}

pub fn allowed_scratch_name() -> &'static str {
    "sdoh_scratch_gauge" // sdoh-lint: allow(metrics-vocabulary, "negative-test name that must stay out of the vocabulary")
}
