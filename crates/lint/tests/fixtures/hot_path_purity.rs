//! Fixture: `hot-path-purity` violations and an allowlisted cold path.

pub fn bad_lock(mutex: &std::sync::Mutex<u32>) -> u32 {
    *mutex.lock().unwrap_or_else(|e| e.into_inner())
}

pub fn bad_alloc() -> Vec<u32> {
    Vec::new()
}

pub fn bad_format(n: u32) -> String {
    format!("query-{n}")
}

// sdoh-lint: allow(hot-path-purity, "cold path: snapshot aggregation runs on the stats thread")
pub fn allowed_cold_path() -> Vec<u32> {
    Vec::new()
}
