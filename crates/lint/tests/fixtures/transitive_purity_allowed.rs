//! Allowed twin: a standalone allow above the helper is a pruning
//! boundary — the traversal stops there and the directive counts as used.

pub fn serve_loop() {
    step();
}

fn step() {
    helper();
}

// sdoh-lint: allow(transitive-hot-path-purity, "cold path: scratch buffer built once per rescale, never per query")
fn helper() {
    let buffer = Vec::new();
    drop(buffer);
}
