//! Three methods acquiring three mutexes in a ring: alpha → beta →
//! gamma → alpha. The cycle is one lock-order diagnostic listing all
//! three conflicting orderings.

pub struct State;

impl State {
    pub fn first(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop((a, b));
    }

    pub fn second(&self) {
        let b = self.beta.lock();
        let c = self.gamma.lock();
        drop((b, c));
    }

    pub fn third(&self) {
        let c = self.gamma.lock();
        let a = self.alpha.lock();
        drop((c, a));
    }
}
