//! Bad twin: an allocation two hops below the serving entry point is a
//! transitive-hot-path-purity diagnostic with the full call chain.

pub fn serve_loop() {
    step();
}

fn step() {
    helper();
}

fn helper() {
    let buffer = Vec::new();
    drop(buffer);
}
