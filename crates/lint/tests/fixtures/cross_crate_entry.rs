//! Cross-crate fixture, caller half: the entry point reaches the callee
//! crate through a `use sdoh_xbeta` import.

use sdoh_xbeta::render;

pub fn serve_loop() {
    render();
}
