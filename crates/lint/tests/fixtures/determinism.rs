//! Fixture: `determinism` violations and an allowlisted boundary.

pub fn bad_wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn bad_system_time() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// sdoh-lint: allow(determinism, "host-clock boundary: seeds the sim clock once at startup")
pub fn allowed_boundary() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
