//! Regression fixture: a standalone allow above a declaration whose
//! return type carries a depth-0 comma inside generics. The scope must
//! extend through the whole function body, not stop at the comma in
//! `Result<Option<(u32, usize)>, String>`.

// sdoh-lint: allow(no-panic, "every index is guarded by the length check on entry")
pub fn decode(data: &[u8]) -> Result<Option<(u32, usize)>, String> {
    if data.len() < 4 {
        return Ok(None);
    }
    let value = u32::from(data[0]) << 24
        | u32::from(data[1]) << 16
        | u32::from(data[2]) << 8
        | u32::from(data[3]);
    Ok(Some((value, 4)))
}
