//! Fixture: `no-narrowing-cast` violations, exemptions and allows.

pub fn bad_narrow(x: u32) -> u8 {
    x as u8
}

pub fn widening_is_exempt(x: u32) -> f64 {
    x as f64
}

pub fn u128_is_exempt(x: u64) -> u128 {
    x as u128
}

pub fn allowed_masked(x: u32) -> u8 {
    (x & 0xFF) as u8 // sdoh-lint: allow(no-narrowing-cast, "masked to 8 bits before the cast")
}
