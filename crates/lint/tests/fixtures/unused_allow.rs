//! Fixture: an allow that suppresses nothing is itself a diagnostic.

pub fn nothing_to_suppress(a: u32, b: u32) -> u32 {
    a + b // sdoh-lint: allow(no-panic, "stale: the unwrap this covered was removed")
}
