//! NTP 64-bit timestamps (RFC 5905 §6).

use std::fmt;
use std::time::Duration;

use sdoh_netsim::SimInstant;
use serde::{Deserialize, Serialize};

/// Offset applied when mapping the simulation epoch onto the NTP era, so
/// that simulated timestamps look like plausible modern NTP values.
const SIM_EPOCH_IN_NTP_SECONDS: u64 = 3_900_000_000;

/// A 64-bit NTP timestamp: 32 bits of seconds since 1900-01-01 and 32 bits
/// of binary fraction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NtpTimestamp(pub u64);

impl NtpTimestamp {
    /// The zero timestamp, used in packets for "unknown".
    pub const ZERO: NtpTimestamp = NtpTimestamp(0);

    /// Builds a timestamp from whole seconds and a fraction in `[0, 1)`.
    pub fn from_parts(seconds: u32, fraction: u32) -> Self {
        NtpTimestamp((u64::from(seconds) << 32) | u64::from(fraction))
    }

    /// The whole-seconds part.
    pub fn seconds(self) -> u32 {
        (self.0 >> 32) as u32 // sdoh-lint: allow(no-narrowing-cast, "the 32-bit shift leaves exactly the seconds word")
    }

    /// The fractional part.
    pub fn fraction(self) -> u32 {
        self.0 as u32 // sdoh-lint: allow(no-narrowing-cast, "intentionally truncates to the low fraction word of the fixed-point format")
    }

    /// Converts simulation time plus a floating-point offset (in seconds)
    /// into an NTP timestamp.
    pub fn from_sim_time(instant: SimInstant, offset_seconds: f64) -> Self {
        let sim_seconds = instant.as_nanos() as f64 / 1e9;
        let total = SIM_EPOCH_IN_NTP_SECONDS as f64 + sim_seconds + offset_seconds;
        NtpTimestamp::from_seconds_f64(total)
    }

    /// Builds a timestamp from an absolute number of NTP seconds.
    pub fn from_seconds_f64(seconds: f64) -> Self {
        let clamped = seconds.max(0.0);
        let whole = clamped.floor();
        let fraction = ((clamped - whole) * 4_294_967_296.0) as u64; // sdoh-lint: allow(no-narrowing-cast, "float-to-int as-casts saturate and map NaN to zero")
        NtpTimestamp(((whole as u64) << 32) | (fraction & 0xFFFF_FFFF)) // sdoh-lint: allow(no-narrowing-cast, "float-to-int as-casts saturate and map NaN to zero")
    }

    /// The timestamp as absolute NTP seconds.
    pub fn as_seconds_f64(self) -> f64 {
        self.seconds() as f64 + self.fraction() as f64 / 4_294_967_296.0
    }

    /// Signed difference `self - other` in seconds.
    pub fn diff_seconds(self, other: NtpTimestamp) -> f64 {
        self.as_seconds_f64() - other.as_seconds_f64()
    }

    /// Adds a (possibly negative) number of seconds.
    pub fn add_seconds(self, seconds: f64) -> NtpTimestamp {
        NtpTimestamp::from_seconds_f64(self.as_seconds_f64() + seconds)
    }

    /// Adds a duration.
    pub fn add_duration(self, duration: Duration) -> NtpTimestamp {
        self.add_seconds(duration.as_secs_f64())
    }
}

impl fmt::Display for NtpTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_seconds_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_roundtrip() {
        let ts = NtpTimestamp::from_parts(1234, 0x8000_0000);
        assert_eq!(ts.seconds(), 1234);
        assert_eq!(ts.fraction(), 0x8000_0000);
        assert!((ts.as_seconds_f64() - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn seconds_f64_roundtrip() {
        for value in [0.0, 1.25, 3_900_000_123.456, 4_000_000_000.999] {
            let ts = NtpTimestamp::from_seconds_f64(value);
            assert!((ts.as_seconds_f64() - value).abs() < 1e-6, "value {value}");
        }
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(NtpTimestamp::from_seconds_f64(-5.0), NtpTimestamp::ZERO);
    }

    #[test]
    fn sim_time_mapping_preserves_offsets() {
        let t0 = SimInstant::from_nanos(0);
        let t1 = SimInstant::from_nanos(2_500_000_000);
        let a = NtpTimestamp::from_sim_time(t0, 0.0);
        let b = NtpTimestamp::from_sim_time(t1, 0.0);
        assert!((b.diff_seconds(a) - 2.5).abs() < 1e-6);

        let shifted = NtpTimestamp::from_sim_time(t0, 100.0);
        assert!((shifted.diff_seconds(a) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_helpers() {
        let ts = NtpTimestamp::from_seconds_f64(1000.0);
        assert!((ts.add_seconds(-1.5).as_seconds_f64() - 998.5).abs() < 1e-6);
        assert!(
            (ts.add_duration(Duration::from_millis(250)).as_seconds_f64() - 1000.25).abs() < 1e-6
        );
        assert_eq!(ts.to_string(), "1000.000000");
    }
}
