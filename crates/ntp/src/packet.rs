//! The 48-octet NTP packet format (RFC 5905 §7.3).

use serde::{Deserialize, Serialize};

use crate::error::{NtpError, NtpResult};
use crate::timestamp::NtpTimestamp;

/// Length of a basic NTP packet without extensions.
pub const PACKET_LEN: usize = 48;

/// NTP association modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NtpMode {
    /// Client request.
    Client,
    /// Server response.
    Server,
    /// Symmetric active (unused here, parsed for completeness).
    SymmetricActive,
    /// Broadcast (unused here, parsed for completeness).
    Broadcast,
    /// Any other mode value.
    Other(u8),
}

impl NtpMode {
    /// Numeric mode value.
    pub fn code(self) -> u8 {
        match self {
            NtpMode::SymmetricActive => 1,
            NtpMode::Client => 3,
            NtpMode::Server => 4,
            NtpMode::Broadcast => 5,
            NtpMode::Other(v) => v & 0x7,
        }
    }
}

impl From<u8> for NtpMode {
    fn from(v: u8) -> Self {
        match v & 0x7 {
            1 => NtpMode::SymmetricActive,
            3 => NtpMode::Client,
            4 => NtpMode::Server,
            5 => NtpMode::Broadcast,
            other => NtpMode::Other(other),
        }
    }
}

/// A parsed NTP packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NtpPacket {
    /// Leap indicator (0 = no warning, 3 = unsynchronised).
    pub leap_indicator: u8,
    /// Protocol version (4).
    pub version: u8,
    /// Association mode.
    pub mode: NtpMode,
    /// Stratum of the sender (1 = primary reference).
    pub stratum: u8,
    /// Poll interval exponent.
    pub poll: i8,
    /// Clock precision exponent.
    pub precision: i8,
    /// Round-trip delay to the reference clock, in NTP short format.
    pub root_delay: u32,
    /// Dispersion to the reference clock, in NTP short format.
    pub root_dispersion: u32,
    /// Reference identifier.
    pub reference_id: u32,
    /// Time the system clock was last set.
    pub reference_timestamp: NtpTimestamp,
    /// Client transmit time copied back by the server (T1).
    pub origin_timestamp: NtpTimestamp,
    /// Time the request arrived at the server (T2).
    pub receive_timestamp: NtpTimestamp,
    /// Time the response left the server (T3).
    pub transmit_timestamp: NtpTimestamp,
}

impl NtpPacket {
    /// Builds a client request transmitted at `transmit_time` (T1).
    pub fn client_request(transmit_time: NtpTimestamp) -> Self {
        NtpPacket {
            leap_indicator: 0,
            version: 4,
            mode: NtpMode::Client,
            stratum: 0,
            poll: 4,
            precision: -20,
            root_delay: 0,
            root_dispersion: 0,
            reference_id: 0,
            reference_timestamp: NtpTimestamp::ZERO,
            origin_timestamp: NtpTimestamp::ZERO,
            receive_timestamp: NtpTimestamp::ZERO,
            transmit_timestamp: transmit_time,
        }
    }

    /// Builds the server response for `request`.
    pub fn server_response(
        request: &NtpPacket,
        stratum: u8,
        receive_time: NtpTimestamp,
        transmit_time: NtpTimestamp,
    ) -> Self {
        NtpPacket {
            leap_indicator: 0,
            version: 4,
            mode: NtpMode::Server,
            stratum,
            poll: request.poll,
            precision: -23,
            root_delay: 0,
            root_dispersion: 0,
            reference_id: u32::from_be_bytes(*b"SIM\0"),
            reference_timestamp: receive_time,
            origin_timestamp: request.transmit_timestamp,
            receive_timestamp: receive_time,
            transmit_timestamp: transmit_time,
        }
    }

    /// Encodes the packet into its 48-octet wire representation.
    // sdoh-lint: allow(no-narrowing-cast, "two's-complement reinterpretation of the signed poll/precision fields is the NTP wire format")
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PACKET_LEN);
        out.push((self.leap_indicator & 0x3) << 6 | (self.version & 0x7) << 3 | self.mode.code());
        out.push(self.stratum);
        out.push(self.poll as u8);
        out.push(self.precision as u8);
        out.extend_from_slice(&self.root_delay.to_be_bytes());
        out.extend_from_slice(&self.root_dispersion.to_be_bytes());
        out.extend_from_slice(&self.reference_id.to_be_bytes());
        out.extend_from_slice(&self.reference_timestamp.0.to_be_bytes());
        out.extend_from_slice(&self.origin_timestamp.0.to_be_bytes());
        out.extend_from_slice(&self.receive_timestamp.0.to_be_bytes());
        out.extend_from_slice(&self.transmit_timestamp.0.to_be_bytes());
        out
    }

    /// Decodes a packet from wire format.
    ///
    /// # Errors
    ///
    /// Returns [`NtpError::MalformedPacket`] when the input is shorter than
    /// 48 octets.
    // sdoh-lint: allow(no-panic, "every offset is below PACKET_LEN, which is checked on entry")
    // sdoh-lint: allow(no-narrowing-cast, "two's-complement reinterpretation of the signed poll/precision fields is the NTP wire format")
    pub fn decode(data: &[u8]) -> NtpResult<Self> {
        if data.len() < PACKET_LEN {
            return Err(NtpError::MalformedPacket("packet shorter than 48 octets"));
        }
        let u32_at =
            |i: usize| u32::from_be_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        let u64_at = |i: usize| {
            u64::from_be_bytes([
                data[i],
                data[i + 1],
                data[i + 2],
                data[i + 3],
                data[i + 4],
                data[i + 5],
                data[i + 6],
                data[i + 7],
            ])
        };
        Ok(NtpPacket {
            leap_indicator: data[0] >> 6,
            version: (data[0] >> 3) & 0x7,
            mode: NtpMode::from(data[0]),
            stratum: data[1],
            poll: data[2] as i8,
            precision: data[3] as i8,
            root_delay: u32_at(4),
            root_dispersion: u32_at(8),
            reference_id: u32_at(12),
            reference_timestamp: NtpTimestamp(u64_at(16)),
            origin_timestamp: NtpTimestamp(u64_at(24)),
            receive_timestamp: NtpTimestamp(u64_at(32)),
            transmit_timestamp: NtpTimestamp(u64_at(40)),
        })
    }
}

/// A time sample computed from one request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NtpSample {
    /// Clock offset `theta` in seconds (positive = local clock is behind).
    pub offset: f64,
    /// Round-trip delay `delta` in seconds.
    pub delay: f64,
    /// Stratum reported by the server.
    pub stratum: u8,
}

impl NtpSample {
    /// Computes offset and delay from the four timestamps of an exchange
    /// (RFC 5905 §8): `T1` client transmit, `T2` server receive, `T3` server
    /// transmit, `T4` client receive.
    pub fn from_timestamps(
        t1: NtpTimestamp,
        t2: NtpTimestamp,
        t3: NtpTimestamp,
        t4: NtpTimestamp,
        stratum: u8,
    ) -> Self {
        let offset = (t2.diff_seconds(t1) + t3.diff_seconds(t4)) / 2.0;
        let delay = t4.diff_seconds(t1) - t3.diff_seconds(t2);
        NtpSample {
            offset,
            delay,
            stratum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrip() {
        let request = NtpPacket::client_request(NtpTimestamp::from_seconds_f64(3_900_000_000.5));
        let wire = request.encode();
        assert_eq!(wire.len(), PACKET_LEN);
        let decoded = NtpPacket::decode(&wire).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(decoded.mode, NtpMode::Client);
        assert_eq!(decoded.version, 4);
    }

    #[test]
    fn server_response_copies_origin() {
        let t1 = NtpTimestamp::from_seconds_f64(100.0);
        let request = NtpPacket::client_request(t1);
        let response = NtpPacket::server_response(
            &request,
            2,
            NtpTimestamp::from_seconds_f64(100.01),
            NtpTimestamp::from_seconds_f64(100.02),
        );
        assert_eq!(response.origin_timestamp, t1);
        assert_eq!(response.mode, NtpMode::Server);
        assert_eq!(response.stratum, 2);
        let decoded = NtpPacket::decode(&response.encode()).unwrap();
        assert_eq!(decoded, response);
    }

    #[test]
    fn short_packet_rejected() {
        assert!(NtpPacket::decode(&[0u8; 20]).is_err());
    }

    #[test]
    fn mode_codes_roundtrip() {
        for mode in [
            NtpMode::Client,
            NtpMode::Server,
            NtpMode::SymmetricActive,
            NtpMode::Broadcast,
        ] {
            assert_eq!(NtpMode::from(mode.code()), mode);
        }
        assert_eq!(NtpMode::from(7u8), NtpMode::Other(7));
    }

    #[test]
    fn offset_and_delay_computation() {
        // Local clock is 10 s behind true time, 50 ms symmetric path delay.
        let t1 = NtpTimestamp::from_seconds_f64(1000.0); // client clock
        let t2 = NtpTimestamp::from_seconds_f64(1010.025); // server (true + 10s) at arrival
        let t3 = NtpTimestamp::from_seconds_f64(1010.030); // server just before send
        let t4 = NtpTimestamp::from_seconds_f64(1000.055); // client clock at receive
        let sample = NtpSample::from_timestamps(t1, t2, t3, t4, 2);
        assert!(
            (sample.offset - 10.0).abs() < 1e-3,
            "offset {}",
            sample.offset
        );
        assert!(
            (sample.delay - 0.050).abs() < 1e-3,
            "delay {}",
            sample.delay
        );
    }

    #[test]
    fn zero_delay_symmetric_offset() {
        let t = NtpTimestamp::from_seconds_f64(500.0);
        let sample = NtpSample::from_timestamps(t, t, t, t, 1);
        assert_eq!(sample.offset, 0.0);
        assert_eq!(sample.delay, 0.0);
    }
}
