//! Simulated NTP servers: benign time sources and malicious time shifters.

use std::time::Duration;

use sdoh_netsim::{ChannelKind, Ctx, Service, ServiceResponse, SimAddr, SimClock, SimRng};
use serde::{Deserialize, Serialize};

use crate::packet::{NtpMode, NtpPacket};
use crate::timestamp::NtpTimestamp;

/// Behaviour of a simulated NTP server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NtpServerConfig {
    /// Constant offset the server adds to true time. Zero for a benign
    /// server; a large value for an attacker trying to shift clients.
    pub time_shift: f64,
    /// Bound of the uniform per-response jitter in seconds (models the
    /// server's own synchronisation error).
    pub jitter: f64,
    /// Stratum advertised by the server.
    pub stratum: u8,
    /// When `true` the server never answers (crashed / firewalled).
    pub silent: bool,
}

impl Default for NtpServerConfig {
    fn default() -> Self {
        NtpServerConfig {
            time_shift: 0.0,
            jitter: 0.001,
            stratum: 2,
            silent: false,
        }
    }
}

impl NtpServerConfig {
    /// A well-behaved server with millisecond-level jitter.
    pub fn benign() -> Self {
        NtpServerConfig::default()
    }

    /// A malicious server that shifts reported time by `shift` seconds.
    pub fn malicious(shift: f64) -> Self {
        NtpServerConfig {
            time_shift: shift,
            ..NtpServerConfig::default()
        }
    }

    /// A server that never responds.
    pub fn silent() -> Self {
        NtpServerConfig {
            silent: true,
            ..NtpServerConfig::default()
        }
    }

    /// Returns `true` when this server reports honest time (within jitter).
    pub fn is_benign(&self) -> bool {
        self.time_shift.abs() < 1e-9 && !self.silent
    }
}

/// A simulated NTP server service.
#[derive(Debug)]
pub struct NtpServerService {
    config: NtpServerConfig,
    clock: SimClock,
    rng: SimRng,
    requests_served: u64,
}

impl NtpServerService {
    /// Creates a server with the given behaviour, reading true time from
    /// `clock` and drawing jitter from `seed`.
    pub fn new(config: NtpServerConfig, clock: SimClock, seed: u64) -> Self {
        NtpServerService {
            config,
            clock,
            rng: SimRng::seed_from_u64(seed),
            requests_served: 0,
        }
    }

    /// Number of requests this server has answered.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// The server's configured behaviour.
    pub fn config(&self) -> NtpServerConfig {
        self.config
    }

    fn reported_now(&mut self) -> NtpTimestamp {
        let jitter = if self.config.jitter > 0.0 {
            self.rng.range_f64(-self.config.jitter, self.config.jitter)
        } else {
            0.0
        };
        NtpTimestamp::from_sim_time(self.clock.now(), self.config.time_shift + jitter)
    }
}

impl Service for NtpServerService {
    fn handle(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _from: SimAddr,
        _channel: ChannelKind,
        payload: &[u8],
    ) -> ServiceResponse {
        if self.config.silent {
            return ServiceResponse::NoReply;
        }
        let request = match NtpPacket::decode(payload) {
            Ok(packet) if packet.mode == NtpMode::Client => packet,
            _ => return ServiceResponse::NoReply,
        };
        self.requests_served += 1;
        let receive_time = self.reported_now();
        // Server-side processing takes a few microseconds of reported time.
        let transmit_time = receive_time.add_duration(Duration::from_micros(20));
        let response =
            NtpPacket::server_response(&request, self.config.stratum, receive_time, transmit_time);
        ServiceResponse::Reply(response.encode())
    }

    fn name(&self) -> &str {
        "ntp-server"
    }
}

/// Builds a pool of NTP server services and registers them on the network.
///
/// `addresses[i]` gets a malicious server (shifting time by
/// `malicious_shift`) when `i < malicious_count`, and a benign server
/// otherwise. Returns the number of servers registered.
pub fn register_pool(
    net: &sdoh_netsim::SimNet,
    addresses: &[SimAddr],
    malicious_count: usize,
    malicious_shift: f64,
    seed: u64,
) -> usize {
    for (i, &addr) in addresses.iter().enumerate() {
        let config = if i < malicious_count {
            NtpServerConfig::malicious(malicious_shift)
        } else {
            NtpServerConfig::benign()
        };
        net.register(
            addr,
            NtpServerService::new(config, net.clock(), seed.wrapping_add(i as u64)), // sdoh-lint: allow(no-narrowing-cast, "usize to u64 never loses value on supported targets")
        );
    }
    addresses.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdoh_netsim::SimNet;

    #[test]
    fn config_constructors() {
        assert!(NtpServerConfig::benign().is_benign());
        assert!(!NtpServerConfig::malicious(100.0).is_benign());
        assert!(!NtpServerConfig::silent().is_benign());
        assert_eq!(NtpServerConfig::malicious(5.0).time_shift, 5.0);
    }

    #[test]
    fn answers_client_requests() {
        let net = SimNet::new(3);
        let addr = SimAddr::v4(203, 0, 113, 1, 123);
        net.register(
            addr,
            NtpServerService::new(NtpServerConfig::benign(), net.clock(), 1),
        );
        let request = NtpPacket::client_request(NtpTimestamp::from_seconds_f64(3_900_000_000.0));
        let reply = net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 123),
                addr,
                ChannelKind::Plain,
                &request.encode(),
                Duration::from_secs(1),
            )
            .unwrap();
        let response = NtpPacket::decode(&reply).unwrap();
        assert_eq!(response.mode, NtpMode::Server);
        assert_eq!(response.origin_timestamp, request.transmit_timestamp);
        assert!(response.transmit_timestamp >= response.receive_timestamp);
    }

    #[test]
    fn silent_server_does_not_answer() {
        let net = SimNet::new(4);
        let addr = SimAddr::v4(203, 0, 113, 2, 123);
        net.register(
            addr,
            NtpServerService::new(NtpServerConfig::silent(), net.clock(), 1),
        );
        let request = NtpPacket::client_request(NtpTimestamp::ZERO);
        assert!(net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 123),
                addr,
                ChannelKind::Plain,
                &request.encode(),
                Duration::from_millis(200),
            )
            .is_err());
    }

    #[test]
    fn garbage_requests_are_ignored() {
        let net = SimNet::new(5);
        let addr = SimAddr::v4(203, 0, 113, 3, 123);
        net.register(
            addr,
            NtpServerService::new(NtpServerConfig::benign(), net.clock(), 1),
        );
        assert!(net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 123),
                addr,
                ChannelKind::Plain,
                b"not an ntp packet",
                Duration::from_millis(200),
            )
            .is_err());
    }

    #[test]
    fn malicious_server_shifts_reported_time() {
        let net = SimNet::new(6);
        let shift = 400.0;
        let addr = SimAddr::v4(203, 0, 113, 4, 123);
        net.register(
            addr,
            NtpServerService::new(NtpServerConfig::malicious(shift), net.clock(), 1),
        );
        let t1 = NtpTimestamp::from_sim_time(net.now(), 0.0);
        let request = NtpPacket::client_request(t1);
        let reply = net
            .transact(
                SimAddr::v4(10, 0, 0, 1, 123),
                addr,
                ChannelKind::Plain,
                &request.encode(),
                Duration::from_secs(1),
            )
            .unwrap();
        let response = NtpPacket::decode(&reply).unwrap();
        let reported = response.receive_timestamp.diff_seconds(t1);
        assert!(reported > shift - 1.0, "reported time shifted by ~{shift}s");
    }

    #[test]
    fn register_pool_splits_benign_and_malicious() {
        let net = SimNet::new(7);
        let addrs: Vec<SimAddr> = (1..=10u8)
            .map(|i| SimAddr::v4(203, 0, 113, i, 123))
            .collect();
        let count = register_pool(&net, &addrs, 3, 1000.0, 99);
        assert_eq!(count, 10);
        for addr in &addrs {
            assert!(net.is_registered(*addr));
        }
    }
}
