//! The application host's local clock: simulation time plus an adjustable
//! offset that NTP/Chronos discipline.

use sdoh_netsim::SimClock;

use crate::timestamp::NtpTimestamp;

/// A disciplined local clock.
///
/// "True time" is the simulation clock; the local clock reads true time
/// plus `offset_seconds`. NTP and Chronos adjust the offset; the residual
/// absolute offset after an attack is the headline metric of the Chronos
/// experiments.
#[derive(Debug, Clone)]
pub struct LocalClock {
    sim: SimClock,
    offset_seconds: f64,
    adjustments: u64,
}

impl LocalClock {
    /// Creates a clock that currently reads true time plus
    /// `initial_offset_seconds`.
    pub fn new(sim: SimClock, initial_offset_seconds: f64) -> Self {
        LocalClock {
            sim,
            offset_seconds: initial_offset_seconds,
            adjustments: 0,
        }
    }

    /// The current local reading as an NTP timestamp.
    pub fn now(&self) -> NtpTimestamp {
        NtpTimestamp::from_sim_time(self.sim.now(), self.offset_seconds)
    }

    /// The current reading of true (simulation) time as an NTP timestamp.
    pub fn true_now(&self) -> NtpTimestamp {
        NtpTimestamp::from_sim_time(self.sim.now(), 0.0)
    }

    /// The clock's offset from true time in seconds (positive = fast).
    pub fn offset_from_true(&self) -> f64 {
        self.offset_seconds
    }

    /// Applies a correction of `delta` seconds (what an NTP client does with
    /// the measured offset).
    pub fn adjust(&mut self, delta: f64) {
        self.offset_seconds += delta;
        self.adjustments += 1;
    }

    /// Number of adjustments applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn reads_track_sim_time() {
        let sim = SimClock::new();
        let clock = LocalClock::new(sim.clone(), 0.0);
        let a = clock.now();
        sim.advance(Duration::from_secs(5));
        let b = clock.now();
        assert!((b.diff_seconds(a) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn offset_shifts_reads() {
        let sim = SimClock::new();
        let fast = LocalClock::new(sim.clone(), 2.5);
        let exact = LocalClock::new(sim, 0.0);
        assert!((fast.now().diff_seconds(exact.now()) - 2.5).abs() < 1e-6);
        assert_eq!(fast.offset_from_true(), 2.5);
        assert!((fast.true_now().diff_seconds(exact.now())).abs() < 1e-9);
    }

    #[test]
    fn adjust_accumulates() {
        let sim = SimClock::new();
        let mut clock = LocalClock::new(sim, 10.0);
        clock.adjust(-10.0);
        assert!(clock.offset_from_true().abs() < 1e-9);
        clock.adjust(0.25);
        assert!((clock.offset_from_true() - 0.25).abs() < 1e-9);
        assert_eq!(clock.adjustments(), 2);
    }
}
