//! Error types for the NTP and Chronos components.

use std::error::Error;
use std::fmt;

use sdoh_netsim::NetError;

/// Errors produced while sampling time or running Chronos.
#[derive(Debug, Clone, PartialEq)]
pub enum NtpError {
    /// The transport failed (timeout, unreachable endpoint).
    Network(NetError),
    /// A packet could not be parsed.
    MalformedPacket(&'static str),
    /// The response did not correspond to the request (origin timestamp
    /// mismatch).
    Mismatched,
    /// The server answered with stratum 0 — a Kiss-o'-Death packet telling
    /// the client to back off (RFC 5905 §7.4), never a usable time source.
    KissOfDeath,
    /// The server's leap indicator is 3: its own clock is unsynchronised
    /// (RFC 5905 §7.3, Figure 9) and its timestamps are meaningless.
    Unsynchronised,
    /// The server's transmit timestamp is zero — it never actually supplied
    /// a time (RFC 5905 sanity check 1).
    ZeroTransmitTimestamp,
    /// The computed round-trip delay is negative — the server's receive and
    /// transmit timestamps are inconsistent with the observed round trip,
    /// so the offset computed from them cannot be trusted.
    NegativeDelay,
    /// The server pool is empty.
    EmptyPool,
    /// Too few servers responded to form a sample set.
    NotEnoughSamples {
        /// Samples obtained.
        got: usize,
        /// Samples required.
        needed: usize,
    },
    /// Chronos could not find an agreeing majority even in panic mode.
    NoAgreement,
    /// The configuration is internally inconsistent (e.g. trimming more
    /// samples than are taken).
    InvalidConfig(String),
}

impl fmt::Display for NtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtpError::Network(e) => write!(f, "network error: {e}"),
            NtpError::MalformedPacket(what) => write!(f, "malformed ntp packet: {what}"),
            NtpError::Mismatched => write!(f, "response does not match request"),
            NtpError::KissOfDeath => write!(f, "server sent a kiss-o'-death (stratum 0)"),
            NtpError::Unsynchronised => {
                write!(f, "server clock is unsynchronised (leap indicator 3)")
            }
            NtpError::ZeroTransmitTimestamp => {
                write!(f, "server response carries a zero transmit timestamp")
            }
            NtpError::NegativeDelay => {
                write!(f, "computed round-trip delay is negative")
            }
            NtpError::EmptyPool => write!(f, "the server pool is empty"),
            NtpError::NotEnoughSamples { got, needed } => {
                write!(f, "only {got} of {needed} required samples obtained")
            }
            NtpError::NoAgreement => write!(f, "no agreeing set of time samples found"),
            NtpError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NtpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NtpError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for NtpError {
    fn from(e: NetError) -> Self {
        NtpError::Network(e)
    }
}

/// Result alias used throughout the crate.
pub type NtpResult<T> = Result<T, NtpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let cases = [
            NtpError::Network(NetError::Timeout),
            NtpError::MalformedPacket("short"),
            NtpError::Mismatched,
            NtpError::KissOfDeath,
            NtpError::Unsynchronised,
            NtpError::ZeroTransmitTimestamp,
            NtpError::NegativeDelay,
            NtpError::EmptyPool,
            NtpError::NotEnoughSamples { got: 2, needed: 5 },
            NtpError::NoAgreement,
            NtpError::InvalidConfig("2d >= m".into()),
        ];
        for c in &cases {
            assert!(!c.to_string().is_empty());
        }
        assert!(cases[0].source().is_some());
        assert!(cases[2].source().is_none());
        let converted: NtpError = NetError::Timeout.into();
        assert_eq!(converted, cases[0]);
    }
}
