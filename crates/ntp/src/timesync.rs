//! End-to-end secure time synchronization: wiring consensus-generated
//! server pools into the Chronos client.
//!
//! The paper's point is that NTP is only as secure as the pool of servers
//! obtained through DNS: Chronos tolerates a bad *minority* inside its
//! pool, but a pool whose majority was poisoned at the DNS layer captures
//! even Chronos. This module closes the loop between the two halves of the
//! workspace:
//!
//! * an [`NtpPoolSource`] abstracts *where* the pool comes from — the
//!   single plain-DNS resolver of the baseline
//!   ([`SingleResolverPool`]), a direct distributed-consensus generation
//!   ([`GeneratorPool`]), or the caching consensus front end the serving
//!   subsystem exposes ([`ConsensusFrontEnd`]);
//! * [`SecureTimeClient`] owns one such source plus a [`ChronosClient`]:
//!   every [`SecureTimeClient::sync`] re-pulls the pool when its TTL window
//!   has elapsed (stale serves carry TTL zero, so the next sync re-pulls
//!   immediately after a refresh) and then drives one Chronos update over
//!   the current pool.
//!
//! The result is the paper's headline defense as an executable object: the
//! same Chronos client is hijacked when its pool arrives through one
//! spoofable Do53 leg, and keeps the clock within a second when the pool
//! arrives through the distributed-DoH consensus pipeline.

use std::net::IpAddr;
use std::sync::Arc;

use parking_lot::Mutex;

use sdoh_core::{AddressFamily, CachingPoolResolver, ResolvedPool, SecurePoolGenerator};
use sdoh_dns_server::{DnsClient, Exchanger};
use sdoh_dns_wire::{Name, Rcode, Ttl};
use sdoh_netsim::{SimAddr, SimInstant, SimNet};

use crate::chronos::{ChronosClient, ChronosOutcome};
use crate::clock::LocalClock;
use crate::error::NtpError;

/// Errors of the secure time-sync pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeSyncError {
    /// Fetching the server pool failed (transport error, SERVFAIL, failed
    /// generation).
    PoolFetch(String),
    /// The pool source answered, but with no addresses — the DoS outcome
    /// of an empty-answer compromise.
    EmptyPool,
    /// The NTP/Chronos update over the fetched pool failed.
    Ntp(NtpError),
}

impl std::fmt::Display for TimeSyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeSyncError::PoolFetch(msg) => write!(f, "pool fetch failed: {msg}"),
            TimeSyncError::EmptyPool => write!(f, "the pool source returned no addresses"),
            TimeSyncError::Ntp(e) => write!(f, "time update failed: {e}"),
        }
    }
}

impl std::error::Error for TimeSyncError {}

impl From<NtpError> for TimeSyncError {
    fn from(e: NtpError) -> Self {
        TimeSyncError::Ntp(e)
    }
}

/// Where a time client obtains its NTP server pool from.
///
/// Implementations cover the paper's three configurations: one plain-DNS
/// resolver, a direct distributed-consensus generation, and the caching
/// consensus front end.
pub trait NtpPoolSource {
    /// Fetches the current pool for `domain` with its remaining validity
    /// (a zero TTL means "usable for this sync only").
    ///
    /// # Errors
    ///
    /// Returns [`TimeSyncError::PoolFetch`] when the source cannot produce
    /// a pool at all.
    fn fetch_pool(
        &mut self,
        exchanger: &mut dyn Exchanger,
        domain: &Name,
    ) -> Result<ResolvedPool, TimeSyncError>;

    /// Human-readable name used in experiment tables and diagnostics.
    fn source_name(&self) -> &str;
}

/// The baseline pool source: one plain-DNS lookup through a single
/// recursive resolver — the spoofable Do53 leg of the paper's attacks.
#[derive(Debug, Clone)]
pub struct SingleResolverPool {
    client: DnsClient,
}

impl SingleResolverPool {
    /// Creates a source querying `resolver` over plain DNS.
    pub fn new(resolver: SimAddr) -> Self {
        SingleResolverPool {
            client: DnsClient::new(resolver).recursion_desired(true),
        }
    }
}

impl NtpPoolSource for SingleResolverPool {
    fn fetch_pool(
        &mut self,
        exchanger: &mut dyn Exchanger,
        domain: &Name,
    ) -> Result<ResolvedPool, TimeSyncError> {
        let response = self
            .client
            .query(exchanger, domain, sdoh_dns_wire::RrType::A)
            .map_err(|e| TimeSyncError::PoolFetch(e.to_string()))?;
        if response.header.rcode != Rcode::NoError {
            return Err(TimeSyncError::PoolFetch(format!(
                "resolver answered {:?}",
                response.header.rcode
            )));
        }
        Ok(ResolvedPool::from_answer(&response))
    }

    fn source_name(&self) -> &str {
        "single-resolver"
    }
}

/// A pool source running one full distributed-consensus generation per
/// fetch — the paper's client-side pipeline without a caching layer.
pub struct GeneratorPool {
    generator: SecurePoolGenerator,
    ttl: Ttl,
}

impl GeneratorPool {
    /// Creates a source around `generator`; each fetched pool is declared
    /// valid for `ttl`.
    pub fn new(generator: SecurePoolGenerator, ttl: Ttl) -> Self {
        GeneratorPool { generator, ttl }
    }
}

impl NtpPoolSource for GeneratorPool {
    fn fetch_pool(
        &mut self,
        exchanger: &mut dyn Exchanger,
        domain: &Name,
    ) -> Result<ResolvedPool, TimeSyncError> {
        let report = self
            .generator
            .generate(exchanger, domain)
            .map_err(|e| TimeSyncError::PoolFetch(e.to_string()))?;
        Ok(ResolvedPool {
            addresses: report.pool.addresses(),
            ttl: self.ttl,
        })
    }

    fn source_name(&self) -> &str {
        "distributed-consensus"
    }
}

impl std::fmt::Debug for GeneratorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneratorPool")
            .field("ttl", &self.ttl)
            .finish()
    }
}

/// The serving-subsystem pool source: the shared caching consensus front
/// end ([`CachingPoolResolver`]) of the serve layer, consumed in process
/// through its `Arc<Mutex<_>>` handle — the same handle the scenario layer
/// registers behind a Do53 service and the threaded runtime moves into its
/// workers.
///
/// Fetches go through [`CachingPoolResolver::resolve_pool`], so the client
/// observes exactly what a DNS client would: fresh hits with decremented
/// TTLs, stale serves with TTL zero (plus a queued background refresh), and
/// on-demand generations on a cold cache.
#[derive(Debug, Clone)]
pub struct ConsensusFrontEnd {
    resolver: Arc<Mutex<CachingPoolResolver>>,
}

impl ConsensusFrontEnd {
    /// Wraps a shared caching front-end handle.
    pub fn new(resolver: Arc<Mutex<CachingPoolResolver>>) -> Self {
        ConsensusFrontEnd { resolver }
    }

    /// The shared resolver handle (metrics inspection, refresh pumping).
    pub fn resolver(&self) -> Arc<Mutex<CachingPoolResolver>> {
        Arc::clone(&self.resolver)
    }
}

impl NtpPoolSource for ConsensusFrontEnd {
    fn fetch_pool(
        &mut self,
        exchanger: &mut dyn Exchanger,
        domain: &Name,
    ) -> Result<ResolvedPool, TimeSyncError> {
        self.resolver
            .lock()
            .resolve_pool(exchanger, domain, AddressFamily::V4)
            .map_err(|e| TimeSyncError::PoolFetch(e.to_string()))
    }

    fn source_name(&self) -> &str {
        "cached-consensus"
    }
}

/// The outcome of one [`SecureTimeClient::sync`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSyncOutcome {
    /// The Chronos update that was applied.
    pub chronos: ChronosOutcome,
    /// Whether this sync re-pulled the pool (first sync, or the previous
    /// pool's TTL window had elapsed).
    pub pool_refreshed: bool,
    /// Size of the pool the update ran over.
    pub pool_size: usize,
}

/// A time-sync client that obtains its NTP server pool through a secure
/// pool source and disciplines a clock with Chronos over it.
///
/// The pool is cached client-side for exactly the TTL window its source
/// granted: a sync within the window reuses it, the first sync after the
/// window re-pulls it ("fresh pool per TTL window"). Sources that serve
/// stale pools hand out TTL zero, making the very next sync re-pull — the
/// client never outlives its source's own freshness rules.
pub struct SecureTimeClient {
    source: Box<dyn NtpPoolSource>,
    domain: Name,
    chronos: ChronosClient,
    pool: Vec<IpAddr>,
    pool_expires: Option<SimInstant>,
    pool_refreshes: u64,
    metrics: Option<TimeSyncCounters>,
}

/// The export counters of one [`SecureTimeClient`], registered via
/// [`SecureTimeClient::register_metrics`].
struct TimeSyncCounters {
    syncs: sdoh_metrics::Counter,
    failures: sdoh_metrics::Counter,
    refreshes: sdoh_metrics::Counter,
}

impl SecureTimeClient {
    /// Creates a client syncing against the pool served for `domain` by
    /// `source`.
    pub fn new(source: Box<dyn NtpPoolSource>, domain: Name, chronos: ChronosClient) -> Self {
        SecureTimeClient {
            source,
            domain,
            chronos,
            pool: Vec::new(),
            pool_expires: None,
            pool_refreshes: 0,
            metrics: None,
        }
    }

    /// Registers this client's counters into `registry`, labelled by the
    /// configured pool source: successful syncs, failed syncs (pool fetch,
    /// empty pool or Chronos rejection) and pool re-pulls. Call once per
    /// client; a second registration for the same source name panics (the
    /// registry rejects duplicate series).
    pub fn register_metrics(&mut self, registry: &sdoh_metrics::Registry) {
        let labels = [("source", self.source.source_name())];
        let counter = |(name, help): (&str, &str)| registry.counter_with(name, help, &labels);
        self.metrics = Some(TimeSyncCounters {
            syncs: counter(sdoh_core::METRIC_TIMESYNC_SYNCS),
            failures: counter(sdoh_core::METRIC_TIMESYNC_FAILURES),
            refreshes: counter(sdoh_core::METRIC_TIMESYNC_POOL_REFRESHES),
        });
    }

    /// The pool the next in-window sync would use (empty before the first
    /// sync).
    pub fn pool(&self) -> &[IpAddr] {
        &self.pool
    }

    /// The domain the pool is obtained for.
    pub fn domain(&self) -> &Name {
        &self.domain
    }

    /// When the current pool's TTL window ends (`None` before the first
    /// fetch).
    pub fn pool_expires_at(&self) -> Option<SimInstant> {
        self.pool_expires
    }

    /// How many times the pool has been (re-)pulled from the source.
    pub fn pool_refreshes(&self) -> u64 {
        self.pool_refreshes
    }

    /// The name of the configured pool source.
    pub fn source_name(&self) -> &str {
        self.source.source_name()
    }

    /// Performs one synchronization: re-pulls the pool if its TTL window
    /// has elapsed, then drives one Chronos update over it, adjusting
    /// `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSyncError::PoolFetch`] / [`TimeSyncError::EmptyPool`]
    /// when no usable pool can be obtained — the clock is left untouched —
    /// and [`TimeSyncError::Ntp`] when Chronos rejects every sampling round
    /// over the fetched pool.
    pub fn sync(
        &mut self,
        net: &SimNet,
        exchanger: &mut dyn Exchanger,
        clock: &mut LocalClock,
    ) -> Result<TimeSyncOutcome, TimeSyncError> {
        let outcome = self.sync_inner(net, exchanger, clock);
        if let Some(metrics) = &self.metrics {
            match &outcome {
                Ok(result) => {
                    metrics.syncs.inc();
                    if result.pool_refreshed {
                        metrics.refreshes.inc();
                    }
                }
                Err(_) => metrics.failures.inc(),
            }
        }
        outcome
    }

    fn sync_inner(
        &mut self,
        net: &SimNet,
        exchanger: &mut dyn Exchanger,
        clock: &mut LocalClock,
    ) -> Result<TimeSyncOutcome, TimeSyncError> {
        let now = exchanger.now();
        let expired = self.pool_expires.is_none_or(|expires| now >= expires);
        let pool_refreshed = self.pool.is_empty() || expired;
        if pool_refreshed {
            let timed = self.source.fetch_pool(exchanger, &self.domain)?;
            if timed.addresses.is_empty() {
                return Err(TimeSyncError::EmptyPool);
            }
            self.pool = timed.addresses;
            self.pool_expires = Some(now.saturating_add(timed.ttl.as_duration()));
            self.pool_refreshes += 1;
        }
        let chronos = self.chronos.update(net, clock, &self.pool)?;
        Ok(TimeSyncOutcome {
            chronos,
            pool_refreshed,
            pool_size: self.pool.len(),
        })
    }
}

impl std::fmt::Debug for SecureTimeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureTimeClient")
            .field("source", &self.source.source_name())
            .field("domain", &self.domain)
            .field("pool_size", &self.pool.len())
            .field("pool_expires", &self.pool_expires)
            .field("pool_refreshes", &self.pool_refreshes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chronos::ChronosConfig;
    use crate::client::NtpClient;
    use crate::server::register_pool;
    use sdoh_core::{AddressSource, CacheConfig, PoolConfig, SecurePoolGenerator, StaticSource};
    use sdoh_dns_server::ClientExchanger;
    use sdoh_netsim::LinkConfig;
    use std::time::Duration;

    fn ntp_fleet(net: &SimNet, count: u8, malicious: usize, shift: f64) -> Vec<IpAddr> {
        let addrs: Vec<SimAddr> = (1..=count)
            .map(|i| SimAddr::v4(203, 0, 113, i, 123))
            .collect();
        register_pool(net, &addrs, malicious, shift, 99);
        addrs.iter().map(|a| a.ip).collect()
    }

    fn frontend_over(ips: &[IpAddr], ttl_secs: u32) -> Arc<Mutex<CachingPoolResolver>> {
        let sources: Vec<Box<dyn AddressSource>> = (1..=3)
            .map(|i| {
                Box::new(StaticSource::answering(format!("r{i}"), ips.to_vec()))
                    as Box<dyn AddressSource>
            })
            .collect();
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        Arc::new(Mutex::new(CachingPoolResolver::new(
            generator,
            CacheConfig::default()
                .with_ttl(Ttl::from_secs(ttl_secs))
                .with_stale_window(Duration::from_secs(30)),
        )))
    }

    fn chronos(seed: u64) -> ChronosClient {
        ChronosClient::new(
            ChronosConfig::default(),
            NtpClient::new(SimAddr::v4(10, 0, 0, 1, 123)).timeout(Duration::from_millis(500)),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn syncs_through_the_consensus_front_end_and_honours_ttl_windows() {
        let net = SimNet::new(400);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let ips = ntp_fleet(&net, 15, 0, 0.0);
        let frontend = frontend_over(&ips, 60);
        let mut client = SecureTimeClient::new(
            Box::new(ConsensusFrontEnd::new(Arc::clone(&frontend))),
            "pool.ntpns.org".parse().unwrap(),
            chronos(400),
        );
        assert_eq!(client.source_name(), "cached-consensus");
        assert!(client.pool().is_empty());

        let mut clock = LocalClock::new(net.clock(), -30.0);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let first = client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(first.pool_refreshed);
        assert_eq!(first.pool_size, 45, "3 resolvers x 15 addresses");
        assert!(
            clock.offset_from_true().abs() < 0.1,
            "clock disciplined: {}",
            clock.offset_from_true()
        );
        assert_eq!(client.pool_refreshes(), 1);

        // Within the TTL window the pool is reused without touching the
        // front end again.
        let generations_before = frontend.lock().metrics().generations;
        net.clock().advance(Duration::from_secs(20));
        let second = client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(!second.pool_refreshed);
        assert_eq!(client.pool_refreshes(), 1);
        assert_eq!(frontend.lock().metrics().generations, generations_before);

        // Past the window the pool is re-pulled (a cache hit server-side if
        // the entry is still fresh there, a regeneration otherwise).
        net.clock().advance(Duration::from_secs(60));
        let third = client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(third.pool_refreshed);
        assert_eq!(client.pool_refreshes(), 2);
        assert!(clock.offset_from_true().abs() < 0.1);
    }

    #[test]
    fn stepped_and_drifting_clocks_stay_disciplined_across_syncs() {
        let net = SimNet::new(405);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let ips = ntp_fleet(&net, 15, 0, 0.0);
        let frontend = frontend_over(&ips, 60);
        let mut client = SecureTimeClient::new(
            Box::new(ConsensusFrontEnd::new(Arc::clone(&frontend))),
            "pool.ntpns.org".parse().unwrap(),
            chronos(405),
        );
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(clock.offset_from_true().abs() < 0.1);

        // A sim-time step past the TTL window (the whole world jumps; the
        // local offset is stored separately and is unaffected) forces the
        // next sync to re-pull the pool.
        net.clock().step(Duration::from_secs(120));
        assert_eq!(net.clock().steps(), 1);
        let refreshed = client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(refreshed.pool_refreshed, "TTL expired across the step");
        assert!(clock.offset_from_true().abs() < 0.1);

        // An operator-style step of the *local* clock is pulled back by the
        // next Chronos sync.
        clock.adjust(45.0);
        assert!(clock.offset_from_true() > 44.0);
        client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(
            clock.offset_from_true().abs() < 0.1,
            "step corrected: {}",
            clock.offset_from_true()
        );

        // Injected drift stretches advanced intervals; syncing afterwards
        // still converges because offsets are measured, not assumed.
        net.clock().set_drift(5e-4);
        net.clock().advance(Duration::from_secs(120));
        net.clock().set_drift(0.0);
        let after_drift = client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(after_drift.pool_refreshed);
        assert!(clock.offset_from_true().abs() < 0.1);
    }

    #[test]
    fn stale_serves_grant_a_zero_window_and_repull_next_sync() {
        let net = SimNet::new(401);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let ips = ntp_fleet(&net, 15, 0, 0.0);
        let frontend = frontend_over(&ips, 10);
        let mut client = SecureTimeClient::new(
            Box::new(ConsensusFrontEnd::new(Arc::clone(&frontend))),
            "pool.ntpns.org".parse().unwrap(),
            chronos(401),
        );
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        client.sync(&net, &mut exchanger, &mut clock).unwrap();

        // Enter the stale window: the fetch is served stale with TTL 0, so
        // the pool expires immediately and the next sync re-pulls again.
        net.clock().advance(Duration::from_secs(15));
        let stale = client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(stale.pool_refreshed);
        // A zero-TTL pool expires at its fetch instant (the subsequent
        // Chronos exchanges have since advanced virtual time past it).
        assert!(client.pool_expires_at().unwrap() <= net.now());
        assert_eq!(frontend.lock().metrics().stale_serves, 1);
        let again = client.sync(&net, &mut exchanger, &mut clock).unwrap();
        assert!(again.pool_refreshed, "zero TTL means no reuse window");
    }

    #[test]
    fn single_resolver_source_reads_answer_ttls() {
        let net = SimNet::new(402);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        // A static-zone authority standing in for the recursive resolver.
        let resolver_addr = SimAddr::v4(10, 0, 0, 53, 53);
        let mut zone = sdoh_dns_server::Zone::new("ntpns.org".parse().unwrap());
        let ips = ntp_fleet(&net, 12, 0, 0.0);
        for ip in &ips {
            zone.add_record(sdoh_dns_wire::Record::address(
                "pool.ntpns.org".parse().unwrap(),
                300,
                *ip,
            ));
        }
        let mut catalog = sdoh_dns_server::Catalog::new();
        catalog.add_zone(zone);
        net.register(
            resolver_addr,
            sdoh_dns_server::Do53Service::new(sdoh_dns_server::Authority::new(catalog)),
        );

        let mut source = SingleResolverPool::new(resolver_addr);
        assert_eq!(source.source_name(), "single-resolver");
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let pool = source
            .fetch_pool(&mut exchanger, &"pool.ntpns.org".parse().unwrap())
            .unwrap();
        assert_eq!(pool.addresses.len(), 12);
        assert_eq!(pool.ttl, Ttl::from_secs(300));

        let missing = source
            .fetch_pool(&mut exchanger, &"missing.ntpns.org".parse().unwrap())
            .unwrap_err();
        assert!(matches!(missing, TimeSyncError::PoolFetch(_)));
    }

    #[test]
    fn empty_pools_fail_the_sync_without_touching_the_clock() {
        let net = SimNet::new(403);
        struct EmptySource;
        impl NtpPoolSource for EmptySource {
            fn fetch_pool(
                &mut self,
                _exchanger: &mut dyn Exchanger,
                _domain: &Name,
            ) -> Result<ResolvedPool, TimeSyncError> {
                Ok(ResolvedPool {
                    addresses: Vec::new(),
                    ttl: Ttl::from_secs(60),
                })
            }
            fn source_name(&self) -> &str {
                "empty"
            }
        }
        let mut client = SecureTimeClient::new(
            Box::new(EmptySource),
            "pool.ntpns.org".parse().unwrap(),
            chronos(403),
        );
        let mut clock = LocalClock::new(net.clock(), 5.0);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let err = client.sync(&net, &mut exchanger, &mut clock).unwrap_err();
        assert_eq!(err, TimeSyncError::EmptyPool);
        assert_eq!(clock.offset_from_true(), 5.0, "clock untouched");
        assert!(format!("{client:?}").contains("SecureTimeClient"));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn registered_counters_track_syncs_failures_and_refreshes() {
        let net = SimNet::new(406);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let ips = ntp_fleet(&net, 15, 0, 0.0);
        let frontend = frontend_over(&ips, 60);
        let registry = sdoh_metrics::Registry::new();
        let mut client = SecureTimeClient::new(
            Box::new(ConsensusFrontEnd::new(Arc::clone(&frontend))),
            "pool.ntpns.org".parse().unwrap(),
            chronos(406),
        );
        client.register_metrics(&registry);
        assert!(registry.lint().is_empty(), "every counter carries help");

        let mut clock = LocalClock::new(net.clock(), -10.0);
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        client.sync(&net, &mut exchanger, &mut clock).unwrap();
        net.clock().advance(Duration::from_secs(20));
        client.sync(&net, &mut exchanger, &mut clock).unwrap(); // in-window: no re-pull

        // Sum across the per-source label sets of one family.
        let value = |name: &str| {
            let samples: Vec<_> = registry
                .gather()
                .into_iter()
                .filter(|s| s.name == name)
                .collect();
            assert!(!samples.is_empty(), "{name} not exported");
            samples
                .into_iter()
                .map(|s| match s.value {
                    sdoh_metrics::SampleValue::Counter(v) => v,
                    other => panic!("{name} not a counter: {other:?}"),
                })
                .sum::<u64>()
        };
        assert_eq!(value("sdoh_timesync_syncs_total"), 2);
        assert_eq!(value("sdoh_timesync_pool_refreshes_total"), 1);
        assert_eq!(value("sdoh_timesync_failures_total"), 0);
        assert_eq!(
            client.pool_refreshes(),
            value("sdoh_timesync_pool_refreshes_total"),
            "exported counter matches the client's own accounting"
        );

        // A client over a source that always fails bumps only failures.
        struct EmptySource;
        impl NtpPoolSource for EmptySource {
            fn fetch_pool(
                &mut self,
                _exchanger: &mut dyn Exchanger,
                _domain: &Name,
            ) -> Result<ResolvedPool, TimeSyncError> {
                Ok(ResolvedPool {
                    addresses: Vec::new(),
                    ttl: Ttl::from_secs(60),
                })
            }
            fn source_name(&self) -> &str {
                "always-empty"
            }
        }
        let mut failing = SecureTimeClient::new(
            Box::new(EmptySource),
            "pool.ntpns.org".parse().unwrap(),
            chronos(407),
        );
        failing.register_metrics(&registry);
        failing.sync(&net, &mut exchanger, &mut clock).unwrap_err();
        assert_eq!(value("sdoh_timesync_failures_total"), 1);
        assert_eq!(value("sdoh_timesync_syncs_total"), 2, "successes unchanged");
    }

    #[test]
    fn generator_source_runs_a_generation_per_fetch() {
        let net = SimNet::new(404);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let ips = ntp_fleet(&net, 15, 0, 0.0);
        let sources: Vec<Box<dyn AddressSource>> = (1..=3)
            .map(|i| {
                Box::new(StaticSource::answering(format!("r{i}"), ips.clone()))
                    as Box<dyn AddressSource>
            })
            .collect();
        let generator = SecurePoolGenerator::new(PoolConfig::algorithm1(), sources).unwrap();
        let mut source = GeneratorPool::new(generator, Ttl::from_secs(120));
        assert_eq!(source.source_name(), "distributed-consensus");
        let mut exchanger = ClientExchanger::new(&net, SimAddr::v4(10, 0, 0, 1, 40000));
        let pool = source
            .fetch_pool(&mut exchanger, &"pool.ntpns.org".parse().unwrap())
            .unwrap();
        assert_eq!(pool.addresses.len(), 45);
        assert_eq!(pool.ttl, Ttl::from_secs(120));
        assert!(format!("{source:?}").contains("GeneratorPool"));
    }
}
