//! The basic NTP client: one request/response exchange per server, plus the
//! plain-SNTP baseline that trusts whatever single server it queried.

use std::net::IpAddr;
use std::time::Duration;

use sdoh_netsim::{ChannelKind, SimAddr, SimNet};

use crate::clock::LocalClock;
use crate::error::{NtpError, NtpResult};
use crate::packet::{NtpMode, NtpPacket, NtpSample};

/// An NTP client bound to an application host address.
#[derive(Debug, Clone)]
pub struct NtpClient {
    source: SimAddr,
    timeout: Duration,
}

impl NtpClient {
    /// Creates a client sending from `source`.
    pub fn new(source: SimAddr) -> Self {
        NtpClient {
            source,
            timeout: Duration::from_secs(1),
        }
    }

    /// Sets the per-query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Queries a single server and computes the time sample relative to the
    /// given local clock.
    ///
    /// # Errors
    ///
    /// Returns transport errors, [`NtpError::MalformedPacket`] for
    /// undecodable responses and [`NtpError::Mismatched`] when the response
    /// does not echo the request's transmit timestamp.
    pub fn sample(&self, net: &SimNet, clock: &LocalClock, server: IpAddr) -> NtpResult<NtpSample> {
        let server_addr = SimAddr::new(server, sdoh_netsim::ports::NTP);
        let t1 = clock.now();
        let request = NtpPacket::client_request(t1);
        let reply = net.transact(
            self.source,
            server_addr,
            ChannelKind::Plain,
            &request.encode(),
            self.timeout,
        )?;
        let t4 = clock.now();
        let response = NtpPacket::decode(&reply)?;
        if response.mode != NtpMode::Server {
            return Err(NtpError::MalformedPacket("response is not in server mode"));
        }
        if response.origin_timestamp != t1 {
            return Err(NtpError::Mismatched);
        }
        Ok(NtpSample::from_timestamps(
            t1,
            response.receive_timestamp,
            response.transmit_timestamp,
            t4,
            response.stratum,
        ))
    }

    /// Samples every server in `pool`, returning the successful samples in
    /// pool order (failed servers are skipped).
    pub fn sample_pool(
        &self,
        net: &SimNet,
        clock: &LocalClock,
        pool: &[IpAddr],
    ) -> Vec<(IpAddr, NtpSample)> {
        pool.iter()
            .filter_map(|&server| self.sample(net, clock, server).ok().map(|s| (server, s)))
            .collect()
    }

    /// The plain-SNTP baseline: query the first responsive server in the
    /// pool and apply its offset verbatim. This is the behaviour the paper's
    /// attacks exploit when the pool itself is poisoned.
    ///
    /// Returns the applied offset.
    ///
    /// # Errors
    ///
    /// Returns [`NtpError::EmptyPool`] when no server in the pool responds.
    pub fn synchronize_simple(
        &self,
        net: &SimNet,
        clock: &mut LocalClock,
        pool: &[IpAddr],
    ) -> NtpResult<f64> {
        for &server in pool {
            if let Ok(sample) = self.sample(net, clock, server) {
                clock.adjust(sample.offset);
                return Ok(sample.offset);
            }
        }
        Err(NtpError::EmptyPool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{register_pool, NtpServerConfig, NtpServerService};
    use sdoh_netsim::LinkConfig;

    fn host() -> SimAddr {
        SimAddr::v4(10, 0, 0, 1, 123)
    }

    fn pool_addrs(n: u8) -> Vec<SimAddr> {
        (1..=n).map(|i| SimAddr::v4(203, 0, 113, i, 123)).collect()
    }

    #[test]
    fn sample_measures_offset_close_to_truth() {
        let net = SimNet::new(31);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(10)));
        let addrs = pool_addrs(1);
        register_pool(&net, &addrs, 0, 0.0, 5);
        // Local clock is 30 seconds slow.
        let clock = LocalClock::new(net.clock(), -30.0);
        let client = NtpClient::new(host());
        let sample = client.sample(&net, &clock, addrs[0].ip).unwrap();
        assert!(
            (sample.offset - 30.0).abs() < 0.1,
            "measured offset {} should be ~30s",
            sample.offset
        );
        assert!(sample.delay >= 0.0);
    }

    #[test]
    fn malicious_server_produces_shifted_sample() {
        let net = SimNet::new(32);
        let addrs = pool_addrs(1);
        register_pool(&net, &addrs, 1, 500.0, 5);
        let clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host());
        let sample = client.sample(&net, &clock, addrs[0].ip).unwrap();
        assert!(sample.offset > 490.0);
    }

    #[test]
    fn sample_pool_skips_dead_servers() {
        let net = SimNet::new(33);
        let addrs = pool_addrs(4);
        register_pool(&net, &addrs[..3], 0, 0.0, 5);
        net.register(
            addrs[3],
            NtpServerService::new(NtpServerConfig::silent(), net.clock(), 6),
        );
        let clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host()).timeout(Duration::from_millis(200));
        let pool: Vec<IpAddr> = addrs.iter().map(|a| a.ip).collect();
        let samples = client.sample_pool(&net, &clock, &pool);
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn simple_sync_trusts_first_server() {
        let net = SimNet::new(34);
        let addrs = pool_addrs(3);
        // First server in the pool is malicious: plain SNTP gets hijacked.
        register_pool(&net, &addrs, 1, 1000.0, 5);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host());
        let pool: Vec<IpAddr> = addrs.iter().map(|a| a.ip).collect();
        let applied = client.synchronize_simple(&net, &mut clock, &pool).unwrap();
        assert!(applied > 990.0);
        assert!(clock.offset_from_true() > 990.0);
    }

    #[test]
    fn empty_pool_is_an_error() {
        let net = SimNet::new(35);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host()).timeout(Duration::from_millis(100));
        assert_eq!(
            client.synchronize_simple(&net, &mut clock, &[]),
            Err(NtpError::EmptyPool)
        );
        let dead: Vec<IpAddr> = vec!["192.0.2.200".parse().unwrap()];
        assert_eq!(
            client.synchronize_simple(&net, &mut clock, &dead),
            Err(NtpError::EmptyPool)
        );
    }
}
