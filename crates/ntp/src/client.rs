//! The basic NTP client: one request/response exchange per server, plus the
//! plain-SNTP baseline that trusts whatever single server it queried.

use std::net::IpAddr;
use std::time::Duration;

use sdoh_netsim::{ChannelKind, SimAddr, SimNet};

use crate::clock::LocalClock;
use crate::error::{NtpError, NtpResult};
use crate::packet::{NtpMode, NtpPacket, NtpSample};
use crate::timestamp::NtpTimestamp;

/// An NTP client bound to an application host address.
#[derive(Debug, Clone)]
pub struct NtpClient {
    source: SimAddr,
    timeout: Duration,
}

impl NtpClient {
    /// Creates a client sending from `source`.
    pub fn new(source: SimAddr) -> Self {
        NtpClient {
            source,
            timeout: Duration::from_secs(1),
        }
    }

    /// Sets the per-query timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Queries a single server and computes the time sample relative to the
    /// given local clock.
    ///
    /// The response runs through the RFC 5905 sanity checks before a sample
    /// is derived from it: Kiss-o'-Death packets (stratum 0), unsynchronised
    /// servers (leap indicator 3), zero transmit timestamps and negative
    /// round-trip delays are all rejected instead of being folded into the
    /// clock discipline.
    ///
    /// # Errors
    ///
    /// Returns transport errors, [`NtpError::MalformedPacket`] for
    /// undecodable responses, [`NtpError::Mismatched`] when the response
    /// does not echo the request's transmit timestamp, and
    /// [`NtpError::KissOfDeath`] / [`NtpError::Unsynchronised`] /
    /// [`NtpError::ZeroTransmitTimestamp`] / [`NtpError::NegativeDelay`]
    /// for responses failing the corresponding sanity check.
    pub fn sample(&self, net: &SimNet, clock: &LocalClock, server: IpAddr) -> NtpResult<NtpSample> {
        let server_addr = SimAddr::new(server, sdoh_netsim::ports::NTP);
        let t1 = clock.now();
        let request = NtpPacket::client_request(t1);
        let reply = net.transact(
            self.source,
            server_addr,
            ChannelKind::Plain,
            &request.encode(),
            self.timeout,
        )?;
        let t4 = clock.now();
        let response = NtpPacket::decode(&reply)?;
        if response.mode != NtpMode::Server {
            return Err(NtpError::MalformedPacket("response is not in server mode"));
        }
        if response.origin_timestamp != t1 {
            return Err(NtpError::Mismatched);
        }
        if response.stratum == 0 {
            return Err(NtpError::KissOfDeath);
        }
        if response.leap_indicator == 3 {
            return Err(NtpError::Unsynchronised);
        }
        if response.transmit_timestamp == NtpTimestamp::ZERO {
            return Err(NtpError::ZeroTransmitTimestamp);
        }
        let sample = NtpSample::from_timestamps(
            t1,
            response.receive_timestamp,
            response.transmit_timestamp,
            t4,
            response.stratum,
        );
        if sample.delay < 0.0 {
            return Err(NtpError::NegativeDelay);
        }
        Ok(sample)
    }

    /// Samples every server in `pool`, returning the successful samples in
    /// pool order (failed servers are skipped).
    pub fn sample_pool(
        &self,
        net: &SimNet,
        clock: &LocalClock,
        pool: &[IpAddr],
    ) -> Vec<(IpAddr, NtpSample)> {
        pool.iter()
            .filter_map(|&server| self.sample(net, clock, server).ok().map(|s| (server, s)))
            .collect()
    }

    /// The plain-SNTP baseline: query the first responsive server in the
    /// pool and apply its offset verbatim. This is the behaviour the paper's
    /// attacks exploit when the pool itself is poisoned.
    ///
    /// Returns the applied offset.
    ///
    /// # Errors
    ///
    /// Returns [`NtpError::EmptyPool`] when no server in the pool responds.
    pub fn synchronize_simple(
        &self,
        net: &SimNet,
        clock: &mut LocalClock,
        pool: &[IpAddr],
    ) -> NtpResult<f64> {
        for &server in pool {
            if let Ok(sample) = self.sample(net, clock, server) {
                clock.adjust(sample.offset);
                return Ok(sample.offset);
            }
        }
        Err(NtpError::EmptyPool)
    }

    /// The full-pool NTP baseline: sample **every** server in the pool and
    /// apply the plain average of all obtained offsets — no trimming, no
    /// agreement check. More robust than [`NtpClient::synchronize_simple`]
    /// against a single bad server, but still captured outright by a pool
    /// whose majority was poisoned at the DNS layer.
    ///
    /// Returns the applied offset and the number of samples averaged.
    ///
    /// # Errors
    ///
    /// Returns [`NtpError::EmptyPool`] when no server in the pool responds.
    pub fn synchronize_pool_average(
        &self,
        net: &SimNet,
        clock: &mut LocalClock,
        pool: &[IpAddr],
    ) -> NtpResult<(f64, usize)> {
        let samples = self.sample_pool(net, clock, pool);
        if samples.is_empty() {
            return Err(NtpError::EmptyPool);
        }
        let offset = samples.iter().map(|(_, s)| s.offset).sum::<f64>() / samples.len() as f64;
        clock.adjust(offset);
        Ok((offset, samples.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{register_pool, NtpServerConfig, NtpServerService};
    use sdoh_netsim::{Ctx, LinkConfig, Service, ServiceResponse, SimClock};

    fn host() -> SimAddr {
        SimAddr::v4(10, 0, 0, 1, 123)
    }

    /// How a protocol-violating test server mangles its responses.
    #[derive(Clone, Copy)]
    enum Rig {
        KissOfDeath,
        Unsynchronised,
        ZeroTransmit,
        NegativeDelay,
    }

    /// A server that answers correctly except for one deliberate RFC 5905
    /// violation.
    struct RiggedServer {
        clock: SimClock,
        rig: Rig,
    }

    impl Service for RiggedServer {
        fn handle(
            &mut self,
            _ctx: &mut Ctx<'_>,
            _from: SimAddr,
            _channel: sdoh_netsim::ChannelKind,
            payload: &[u8],
        ) -> ServiceResponse {
            let request = match NtpPacket::decode(payload) {
                Ok(packet) => packet,
                Err(_) => return ServiceResponse::NoReply,
            };
            let now = NtpTimestamp::from_sim_time(self.clock.now(), 0.0);
            let mut response = NtpPacket::server_response(&request, 2, now, now);
            match self.rig {
                Rig::KissOfDeath => response.stratum = 0,
                Rig::Unsynchronised => response.leap_indicator = 3,
                Rig::ZeroTransmit => response.transmit_timestamp = NtpTimestamp::ZERO,
                Rig::NegativeDelay => {
                    // Claim ten seconds of server-side processing: the
                    // reported (t3 - t2) exceeds the actual round trip, so
                    // the computed delay goes negative.
                    response.receive_timestamp = now;
                    response.transmit_timestamp =
                        now.add_duration(std::time::Duration::from_secs(10));
                }
            }
            ServiceResponse::Reply(response.encode())
        }

        fn name(&self) -> &str {
            "rigged-ntp-server"
        }
    }

    fn rigged_sample(rig: Rig, seed: u64) -> NtpError {
        let net = SimNet::new(seed);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let addr = SimAddr::v4(203, 0, 113, 77, 123);
        net.register(
            addr,
            RiggedServer {
                clock: net.clock(),
                rig,
            },
        );
        let clock = LocalClock::new(net.clock(), 0.0);
        NtpClient::new(host())
            .sample(&net, &clock, addr.ip)
            .unwrap_err()
    }

    #[test]
    fn kiss_of_death_is_rejected() {
        assert_eq!(rigged_sample(Rig::KissOfDeath, 41), NtpError::KissOfDeath);
    }

    #[test]
    fn unsynchronised_server_is_rejected() {
        assert_eq!(
            rigged_sample(Rig::Unsynchronised, 42),
            NtpError::Unsynchronised
        );
    }

    #[test]
    fn zero_transmit_timestamp_is_rejected() {
        assert_eq!(
            rigged_sample(Rig::ZeroTransmit, 43),
            NtpError::ZeroTransmitTimestamp
        );
    }

    #[test]
    fn negative_round_trip_delay_is_rejected() {
        assert_eq!(
            rigged_sample(Rig::NegativeDelay, 44),
            NtpError::NegativeDelay
        );
    }

    #[test]
    fn sanity_rejected_servers_are_skipped_by_sample_pool() {
        let net = SimNet::new(45);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let good = SimAddr::v4(203, 0, 113, 1, 123);
        let bad = SimAddr::v4(203, 0, 113, 2, 123);
        register_pool(&net, &[good], 0, 0.0, 5);
        net.register(
            bad,
            RiggedServer {
                clock: net.clock(),
                rig: Rig::KissOfDeath,
            },
        );
        let clock = LocalClock::new(net.clock(), 0.0);
        let samples = NtpClient::new(host()).sample_pool(&net, &clock, &[bad.ip, good.ip]);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].0, good.ip);
    }

    #[test]
    fn pool_average_blends_all_responders() {
        let net = SimNet::new(46);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(5)));
        let addrs = pool_addrs(4);
        // One of four servers is malicious: the plain average moves by about
        // a quarter of the shift — better than simple SNTP, worse than
        // Chronos.
        register_pool(&net, &addrs, 1, 100.0, 6);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let pool: Vec<IpAddr> = addrs.iter().map(|a| a.ip).collect();
        let (offset, used) = NtpClient::new(host())
            .synchronize_pool_average(&net, &mut clock, &pool)
            .unwrap();
        assert_eq!(used, 4);
        assert!(
            (offset - 25.0).abs() < 1.0,
            "average of one 100 s outlier over four samples: {offset}"
        );
        let mut dead_clock = LocalClock::new(net.clock(), 0.0);
        assert_eq!(
            NtpClient::new(host())
                .timeout(Duration::from_millis(100))
                .synchronize_pool_average(&net, &mut dead_clock, &[]),
            Err(NtpError::EmptyPool)
        );
    }

    fn pool_addrs(n: u8) -> Vec<SimAddr> {
        (1..=n).map(|i| SimAddr::v4(203, 0, 113, i, 123)).collect()
    }

    #[test]
    fn sample_measures_offset_close_to_truth() {
        let net = SimNet::new(31);
        net.set_default_link(LinkConfig::with_latency(Duration::from_millis(10)));
        let addrs = pool_addrs(1);
        register_pool(&net, &addrs, 0, 0.0, 5);
        // Local clock is 30 seconds slow.
        let clock = LocalClock::new(net.clock(), -30.0);
        let client = NtpClient::new(host());
        let sample = client.sample(&net, &clock, addrs[0].ip).unwrap();
        assert!(
            (sample.offset - 30.0).abs() < 0.1,
            "measured offset {} should be ~30s",
            sample.offset
        );
        assert!(sample.delay >= 0.0);
    }

    #[test]
    fn malicious_server_produces_shifted_sample() {
        let net = SimNet::new(32);
        let addrs = pool_addrs(1);
        register_pool(&net, &addrs, 1, 500.0, 5);
        let clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host());
        let sample = client.sample(&net, &clock, addrs[0].ip).unwrap();
        assert!(sample.offset > 490.0);
    }

    #[test]
    fn sample_pool_skips_dead_servers() {
        let net = SimNet::new(33);
        let addrs = pool_addrs(4);
        register_pool(&net, &addrs[..3], 0, 0.0, 5);
        net.register(
            addrs[3],
            NtpServerService::new(NtpServerConfig::silent(), net.clock(), 6),
        );
        let clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host()).timeout(Duration::from_millis(200));
        let pool: Vec<IpAddr> = addrs.iter().map(|a| a.ip).collect();
        let samples = client.sample_pool(&net, &clock, &pool);
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn simple_sync_trusts_first_server() {
        let net = SimNet::new(34);
        let addrs = pool_addrs(3);
        // First server in the pool is malicious: plain SNTP gets hijacked.
        register_pool(&net, &addrs, 1, 1000.0, 5);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host());
        let pool: Vec<IpAddr> = addrs.iter().map(|a| a.ip).collect();
        let applied = client.synchronize_simple(&net, &mut clock, &pool).unwrap();
        assert!(applied > 990.0);
        assert!(clock.offset_from_true() > 990.0);
    }

    #[test]
    fn empty_pool_is_an_error() {
        let net = SimNet::new(35);
        let mut clock = LocalClock::new(net.clock(), 0.0);
        let client = NtpClient::new(host()).timeout(Duration::from_millis(100));
        assert_eq!(
            client.synchronize_simple(&net, &mut clock, &[]),
            Err(NtpError::EmptyPool)
        );
        let dead: Vec<IpAddr> = vec!["192.0.2.200".parse().unwrap()];
        assert_eq!(
            client.synchronize_simple(&net, &mut clock, &dead),
            Err(NtpError::EmptyPool)
        );
    }
}
